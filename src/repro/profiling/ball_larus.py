"""Ball–Larus path numbering (Ball & Larus, MICRO 1996).

The CFG of a routine is turned into a DAG by replacing each back edge
``u -> v`` with two *fake* edges: ``ENTRY -> v`` and ``u -> EXIT``.  A
virtual EXIT node also absorbs all return blocks, so routines with several
``ret`` s are handled uniformly.  ``NumPaths`` is computed bottom-up over the
DAG and edge increments are assigned so that summing the increments along
any entry-to-exit DAG path produces a *unique, compact* path id in
``[0, NumPaths(ENTRY))``.

The numbering object supports the three operations the rest of the stack
needs:

* instrumentation semantics for the profiler (:meth:`edge_value`,
  :meth:`is_back_edge`, fake-edge values),
* decoding a path id back to its basic-block sequence (:meth:`decode`),
* encoding a block sequence to its id (:meth:`encode`, the test inverse).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.cfg import CFG
from ..analysis.dominators import DominatorTree
from ..analysis.loops import back_edges
from ..ir.block import BasicBlock
from ..ir.function import Function

#: Virtual sink absorbing all returns and back-edge sources.
EXIT = "<BL-EXIT>"
#: Virtual source for fake edges into loop headers.
ENTRY = "<BL-ENTRY>"
# Compare sentinels with ==, never `is`: a numbering that round-trips
# through pickle (the artifact cache) carries copies of these strings.


class PathNumberingError(Exception):
    """Raised on malformed decode/encode requests."""


class BallLarusNumbering:
    """Edge-increment assignment for one function."""

    def __init__(self, fn: Function):
        self.function = fn
        self.cfg = CFG(fn)
        dom = DominatorTree.compute(self.cfg)
        self.back_edge_set = set(back_edges(self.cfg, dom))

        # DAG successor lists.  Order matters (it fixes the numbering):
        # real successor order first, then fake edges in insertion order.
        self._dag_succs: Dict[object, List[object]] = {ENTRY: [], EXIT: []}
        for block in self.cfg.blocks:
            self._dag_succs[block] = []
        self._dag_succs[ENTRY].append(self.cfg.entry)

        #: value of fake edge ENTRY -> header, keyed by header
        self._fake_entry_targets: List[BasicBlock] = []
        #: back-edge sources with a fake edge to EXIT
        self._fake_exit_sources: List[BasicBlock] = []

        for block in self.cfg.blocks:
            for succ in self.cfg.succs(block):
                if (block, succ) in self.back_edge_set:
                    if succ not in self._fake_entry_targets:
                        self._fake_entry_targets.append(succ)
                        self._dag_succs[ENTRY].append(succ)
                    if block not in self._fake_exit_sources:
                        self._fake_exit_sources.append(block)
                        self._dag_succs[block].append(EXIT)
                else:
                    self._dag_succs[block].append(succ)
            if not self.cfg.succs(block):  # return block
                self._dag_succs[block].append(EXIT)

        self.num_paths_from: Dict[object, int] = {}
        self.edge_values: Dict[Tuple[object, object], int] = {}
        self._assign_values()
        #: total number of static acyclic paths in the routine
        self.total_paths = self.num_paths_from[ENTRY]

    # -- numbering ------------------------------------------------------------

    def _topo_order(self) -> List[object]:
        """Topological order of the DAG (ENTRY first)."""
        indeg: Dict[object, int] = {n: 0 for n in self._dag_succs}
        for node, succs in self._dag_succs.items():
            for s in succs:
                indeg[s] += 1
        order: List[object] = []
        work = [n for n, d in indeg.items() if d == 0]
        while work:
            node = work.pop()
            order.append(node)
            for s in self._dag_succs[node]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    work.append(s)
        if len(order) != len(self._dag_succs):
            raise PathNumberingError(
                "CFG of %s is irreducible for BL numbering" % self.function.name
            )
        return order

    def _assign_values(self) -> None:
        order = self._topo_order()
        for node in reversed(order):
            succs = self._dag_succs[node]
            if node == EXIT or not succs:
                self.num_paths_from[node] = 1
                continue
            total = 0
            for s in succs:
                self.edge_values[(node, s)] = total
                total += self.num_paths_from[s]
            self.num_paths_from[node] = total

    # -- instrumentation queries -----------------------------------------------

    def is_back_edge(self, src: BasicBlock, dst: BasicBlock) -> bool:
        return (src, dst) in self.back_edge_set

    def edge_value(self, src: object, dst: object) -> int:
        """Increment of a DAG edge (real edge, or fake via ENTRY/EXIT)."""
        try:
            return self.edge_values[(src, dst)]
        except KeyError:
            raise PathNumberingError(
                "no DAG edge %s -> %s"
                % (getattr(src, "name", src), getattr(dst, "name", dst))
            ) from None

    def back_edge_counter_value(self, src: BasicBlock) -> int:
        """Increment applied when a back edge fires: value of ``src -> EXIT``."""
        return self.edge_value(src, EXIT)

    def back_edge_reset_value(self, dst: BasicBlock) -> int:
        """Path-register reset when a back edge lands on header ``dst``:
        value of ``ENTRY -> dst``."""
        return self.edge_value(ENTRY, dst)

    def exit_value(self, ret_block: BasicBlock) -> int:
        """Increment applied when returning from ``ret_block``."""
        return self.edge_value(ret_block, EXIT)

    # -- encode / decode ----------------------------------------------------------

    def decode(self, path_id: int) -> List[BasicBlock]:
        """Recover the basic-block sequence of ``path_id``.

        The sequence starts at the function entry or at a loop header
        (fake-entry paths) and ends at a return block or a back-edge source.
        """
        if not (0 <= path_id < self.total_paths):
            raise PathNumberingError(
                "path id %d out of range [0, %d)" % (path_id, self.total_paths)
            )
        blocks: List[BasicBlock] = []
        node: object = ENTRY
        remaining = path_id
        while node != EXIT:
            succs = self._dag_succs[node]
            chosen = None
            chosen_val = -1
            for s in succs:
                v = self.edge_values[(node, s)]
                if v <= remaining and v > chosen_val:
                    chosen, chosen_val = s, v
            if chosen is None:  # pragma: no cover - numbering guarantees a hit
                raise PathNumberingError("decode stuck at %r" % node)
            remaining -= chosen_val
            node = chosen
            if node != EXIT:
                blocks.append(node)
        if remaining != 0:  # pragma: no cover - numbering guarantees exactness
            raise PathNumberingError("decode residue %d" % remaining)
        return blocks

    def encode(self, blocks: Sequence[BasicBlock]) -> int:
        """Inverse of :meth:`decode` (used by property tests)."""
        if not blocks:
            raise PathNumberingError("cannot encode an empty path")
        path_id = 0
        prev: object = ENTRY
        for block in blocks:
            path_id += self.edge_value(prev, block)
            prev = block
        path_id += self.edge_value(prev, EXIT)
        return path_id

    def path_instruction_count(self, path_id: int, include_phis: bool = False) -> int:
        """Static instruction count along a path (φs excluded by default)."""
        blocks = self.decode(path_id)
        total = 0
        for b in blocks:
            for inst in b.instructions:
                if inst.opcode == "phi" and not include_phis:
                    continue
                total += 1
        return total

    def __repr__(self) -> str:
        return "<BallLarusNumbering %s: %d static paths>" % (
            self.function.name,
            self.total_paths,
        )
