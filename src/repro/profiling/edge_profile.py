"""Edge profiles and branch-bias statistics.

Edge profiles are what Superblock/Hyperblock construction (the paper's
baselines) consume, and what Fig. 4's branch-bias distribution is computed
from.  They are deliberately *local*: each edge/branch is counted
independently, which is exactly the blind spot the paper's Fig. 3 exploits.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..interp.events import Tracer
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import CondBranch


@dataclass
class EdgeProfile:
    """Edge execution counts plus per-branch taken/not-taken counts."""

    function: Function
    edge_counts: Counter = field(default_factory=Counter)
    block_counts: Counter = field(default_factory=Counter)
    branch_taken: Counter = field(default_factory=Counter)
    branch_not_taken: Counter = field(default_factory=Counter)

    def edge_count(self, src: BasicBlock, dst: BasicBlock) -> int:
        return self.edge_counts[(src, dst)]

    def branch_bias(self, block: BasicBlock) -> Optional[float]:
        """Bias of the branch ending ``block``: max(taken, not-taken) share.

        Returns None for blocks without an executed conditional branch.
        """
        t = self.branch_taken[block]
        n = self.branch_not_taken[block]
        if t + n == 0:
            return None
        return max(t, n) / (t + n)

    def branch_biases(self) -> List[Tuple[BasicBlock, float]]:
        """(block, bias) for every executed conditional branch."""
        out = []
        for block in self.function.blocks:
            if isinstance(block.terminator, CondBranch):
                bias = self.branch_bias(block)
                if bias is not None:
                    out.append((block, bias))
        return out

    def bias_distribution(self, thresholds=(0.5, 0.6, 0.7, 0.8, 0.9, 1.0)) -> Dict[str, float]:
        """Fraction of branches whose bias falls in each bucket (Fig. 4)."""
        biases = [b for _, b in self.branch_biases()]
        if not biases:
            return {}
        buckets: Dict[str, float] = {}
        lo = 0.0
        for hi in thresholds:
            label = "%.0f-%.0f%%" % (lo * 100, hi * 100)
            buckets[label] = sum(1 for b in biases if lo < b <= hi) / len(biases)
            lo = hi
        return buckets

    def fraction_unbiased(self, cutoff: float = 0.8) -> float:
        """Fraction of branches with bias below ``cutoff`` (Fig. 4 headline)."""
        biases = [b for _, b in self.branch_biases()]
        if not biases:
            return 0.0
        return sum(1 for b in biases if b < cutoff) / len(biases)

    def hottest_successor(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Most frequent successor edge out of ``block``."""
        best, best_count = None, 0
        for succ in block.successors:
            c = self.edge_counts[(block, succ)]
            if c > best_count:
                best, best_count = succ, c
        return best


class EdgeProfiler(Tracer):
    """Tracer that accumulates :class:`EdgeProfile` s."""

    def __init__(self, functions: Optional[List[Function]] = None):
        self.filter = set(functions) if functions is not None else None
        self.profiles: Dict[Function, EdgeProfile] = {}

    def profile_for(self, fn: Function) -> EdgeProfile:
        profile = self.profiles.get(fn)
        if profile is None:
            profile = EdgeProfile(fn)
            self.profiles[fn] = profile
        return profile

    def on_block(self, fn: Function, block: BasicBlock, prev: Optional[BasicBlock]) -> None:
        if self.filter is not None and fn not in self.filter:
            return
        profile = self.profile_for(fn)
        profile.block_counts[block] += 1
        if prev is not None:
            profile.edge_counts[(prev, block)] += 1

    def on_branch(self, fn: Function, block: BasicBlock, taken: bool) -> None:
        if self.filter is not None and fn not in self.filter:
            return
        profile = self.profile_for(fn)
        if taken:
            profile.branch_taken[block] += 1
        else:
            profile.branch_not_taken[block] += 1
