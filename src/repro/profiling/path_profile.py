"""Runtime path-profile collection over the interpreter's trace stream.

:class:`PathProfiler` implements Ball–Larus instrumentation semantics as a
tracer: a path register ``r`` per activation, incremented with edge values,
flushed to the profile when a back edge fires or the function returns.  It
simultaneously records the *path trace* — the sequence of completed path ids
— which §IV.A's target-expansion analysis consumes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..interp.events import Tracer
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..obs import counter as _obs_counter, enabled as _obs_enabled
from .ball_larus import BallLarusNumbering


@dataclass
class PathProfile:
    """Per-function dynamic path profile."""

    function: Function
    numbering: BallLarusNumbering
    counts: Counter = field(default_factory=Counter)
    trace: List[int] = field(default_factory=list)
    # decode memo: region discovery decodes the same hot ids repeatedly, so
    # cache the block sequences; excluded from equality/pickle identity.
    _decoded: Dict[int, List[BasicBlock]] = field(
        default_factory=dict, compare=False, repr=False
    )

    @property
    def executed_paths(self) -> int:
        """Number of distinct paths observed (Table II:C1)."""
        return len(self.counts)

    @property
    def total_executions(self) -> int:
        return sum(self.counts.values())

    def top_paths(self, n: int) -> List[Tuple[int, int]]:
        """The ``n`` most frequent (path_id, count) pairs."""
        return self.counts.most_common(n)

    def decode(self, path_id: int) -> List[BasicBlock]:
        blocks = self._decoded.get(path_id)
        if blocks is None:
            blocks = self.numbering.decode(path_id)
            self._decoded[path_id] = blocks
            if _obs_enabled():
                _obs_counter("profile.decode.misses", 1,
                             help="Ball-Larus path decodes that walked the DAG",
                             function=self.function.name)
        elif _obs_enabled():
            _obs_counter("profile.decode.hits", 1,
                         help="Ball-Larus path decodes served by the memo",
                         function=self.function.name)
        return blocks


class PathProfiler(Tracer):
    """Collects Ball–Larus path profiles for selected functions.

    Activations are kept on a stack so traced functions may call each other
    (or themselves) while each activation maintains its own path register.
    """

    def __init__(self, functions: Optional[List[Function]] = None):
        self.filter = set(functions) if functions is not None else None
        self.profiles: Dict[Function, PathProfile] = {}
        # activation stack entries: [function, register, last_block] or None
        # for untraced activations
        self._stack: List[Optional[list]] = []

    # -- profile access -----------------------------------------------------------

    def profile_for(self, fn: Function) -> PathProfile:
        profile = self.profiles.get(fn)
        if profile is None:
            profile = PathProfile(fn, BallLarusNumbering(fn))
            self.profiles[fn] = profile
        return profile

    # -- tracer hooks ---------------------------------------------------------------

    def on_function_entry(self, fn: Function) -> None:
        if self.filter is not None and fn not in self.filter:
            self._stack.append(None)
            return
        self.profile_for(fn)
        self._stack.append([fn, 0, None])

    def on_block(self, fn: Function, block: BasicBlock, prev: Optional[BasicBlock]) -> None:
        if not self._stack:
            return
        frame = self._stack[-1]
        if frame is None:
            return
        profile = self.profiles[frame[0]]
        numbering = profile.numbering
        if prev is None:
            frame[1] = 0
        elif numbering.is_back_edge(prev, block):
            path_id = frame[1] + numbering.back_edge_counter_value(prev)
            profile.counts[path_id] += 1
            profile.trace.append(path_id)
            frame[1] = numbering.back_edge_reset_value(block)
        else:
            frame[1] += numbering.edge_value(prev, block)
        frame[2] = block

    def on_function_exit(self, fn: Function) -> None:
        if not self._stack:
            return
        frame = self._stack.pop()
        if frame is None:
            return
        profile = self.profiles[frame[0]]
        last_block = frame[2]
        if last_block is not None:
            path_id = frame[1] + profile.numbering.exit_value(last_block)
            profile.counts[path_id] += 1
            profile.trace.append(path_id)


def profile_paths(module, fn_name: str, args, interpreter_cls=None, **interp_kwargs):
    """Convenience: run ``fn_name(args)`` once and return its PathProfile."""
    from ..interp.interpreter import Interpreter

    cls = interpreter_cls or Interpreter
    fn = module.get_function(fn_name)
    profiler = PathProfiler([fn])
    interp = cls(module, tracer=profiler, **interp_kwargs)
    interp.run(fn, args)
    return profiler.profiles[fn]


__all__ = ["PathProfile", "PathProfiler", "profile_paths"]
