"""Path-trace analysis for BL-path target expansion (paper §IV.A, Table III).

During profiling we record the *sequence* of completed path ids.  The
successor histogram of that sequence tells us, for each path, which path
tends to execute next — the signal used to chain paths across loop back
edges and enlarge the offload unit.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SuccessorStats:
    """Successor histogram of a single path id."""

    path_id: int
    total: int
    best_successor: Optional[int]
    best_count: int

    @property
    def bias(self) -> float:
        """Probability that ``best_successor`` follows ``path_id``."""
        return self.best_count / self.total if self.total else 0.0

    @property
    def repeats_itself(self) -> bool:
        return self.best_successor == self.path_id


class PathTraceAnalysis:
    """Successor structure of a path-id trace."""

    def __init__(self, trace: Sequence[int]):
        self.trace = list(trace)
        self._succ: Dict[int, Counter] = defaultdict(Counter)
        for cur, nxt in zip(self.trace, self.trace[1:]):
            self._succ[cur][nxt] += 1

    def successor_stats(self, path_id: int) -> SuccessorStats:
        hist = self._succ.get(path_id, Counter())
        total = sum(hist.values())
        if total == 0:
            return SuccessorStats(path_id, 0, None, 0)
        best, count = hist.most_common(1)[0]
        return SuccessorStats(path_id, total, best, count)

    def successors_of(self, path_id: int) -> List[Tuple[int, int]]:
        return self._succ.get(path_id, Counter()).most_common()

    def sequence_bias_bucket(self, path_id: int) -> str:
        """Table III bucket of the path's successor bias."""
        bias = self.successor_stats(path_id).bias
        if bias >= 0.9:
            return "90-100%"
        if bias >= 0.7:
            return "70-90%"
        return "<70%"

    def repetition_run_lengths(self, path_id: int) -> List[int]:
        """Lengths of consecutive runs of ``path_id`` in the trace."""
        runs: List[int] = []
        run = 0
        for pid in self.trace:
            if pid == path_id:
                run += 1
            elif run:
                runs.append(run)
                run = 0
        if run:
            runs.append(run)
        return runs

    def average_run_length(self, path_id: int) -> float:
        runs = self.repetition_run_lengths(path_id)
        return sum(runs) / len(runs) if runs else 0.0
