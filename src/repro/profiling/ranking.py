"""Path ranking by the paper's path-weight metric (§III.A).

``Pwt(p) = freq(p) × ops(p)`` — every instruction carries the same weight
because front-end energy per instruction is roughly constant; maximising
Pwt maximises the fetch/decode energy elided by offload.  ``Fwt`` is the sum
of all Pwt in the function, so ``Pwt/Fwt`` is exactly the fraction of the
function's dynamic instructions covered by the path.

A latency-weighted variant is provided for performance-oriented ranking
(and for the §III.A sampling-vs-frequency comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..ir.block import BasicBlock
from .path_profile import PathProfile


def count_ops(blocks: Sequence[BasicBlock], include_phis: bool = False) -> int:
    """Operation count of a block sequence (φs excluded by default)."""
    total = 0
    for b in blocks:
        for inst in b.instructions:
            if inst.opcode == "phi" and not include_phis:
                continue
            total += 1
    return total


def latency_weight(blocks: Sequence[BasicBlock]) -> int:
    """Latency-weighted size of a block sequence."""
    total = 0
    for b in blocks:
        for inst in b.instructions:
            if inst.opcode == "phi":
                continue
            total += max(1, inst.latency)
    return total


@dataclass
class RankedPath:
    """One profiled path with its rank metrics."""

    path_id: int
    blocks: List[BasicBlock]
    freq: int
    ops: int
    weight: int  # Pwt = freq * ops
    coverage: float  # Pwt / Fwt

    @property
    def entry_block(self) -> BasicBlock:
        return self.blocks[0]

    @property
    def exit_block(self) -> BasicBlock:
        return self.blocks[-1]

    @property
    def branch_count(self) -> int:
        """Conditional branches traversed by the path (Table II:C4)."""
        return sum(
            1 for b in self.blocks if b.terminator is not None
            and b.terminator.opcode == "condbr"
        )

    @property
    def memory_op_count(self) -> int:
        """Memory operations along the path (Table II:C7)."""
        return sum(1 for b in self.blocks for i in b.instructions if i.is_memory)

    def __repr__(self) -> str:
        return "<RankedPath id=%d freq=%d ops=%d cov=%.1f%%>" % (
            self.path_id,
            self.freq,
            self.ops,
            self.coverage * 100,
        )


def rank_paths(
    profile: PathProfile,
    weight_fn: Optional[Callable[[Sequence[BasicBlock]], int]] = None,
    limit: Optional[int] = None,
) -> List[RankedPath]:
    """All executed paths of ``profile``, ranked by descending Pwt.

    ``weight_fn`` maps the block sequence to an operation weight; the
    default is :func:`count_ops` (the paper's energy-oriented metric).
    """
    wf = weight_fn or count_ops
    raw = []
    fwt = 0
    for path_id, freq in profile.counts.items():
        blocks = profile.decode(path_id)
        ops = wf(blocks)
        pwt = freq * ops
        fwt += pwt
        raw.append((path_id, blocks, freq, ops, pwt))
    raw.sort(key=lambda t: (-t[4], t[0]))
    if limit is not None:
        ranked_raw = raw[:limit]
    else:
        ranked_raw = raw
    result = [
        RankedPath(
            path_id=pid,
            blocks=blocks,
            freq=freq,
            ops=ops,
            weight=pwt,
            coverage=(pwt / fwt) if fwt else 0.0,
        )
        for pid, blocks, freq, ops, pwt in ranked_raw
    ]
    return result


def function_weight(profile: PathProfile) -> int:
    """Fwt: the sum of all path weights in the function."""
    return sum(
        freq * count_ops(profile.decode(pid))
        for pid, freq in profile.counts.items()
    )


def top_k_coverage(profile: PathProfile, k: int = 5) -> List[float]:
    """Coverage fractions of the top-``k`` paths (Fig. 6 stacks)."""
    return [p.coverage for p in rank_paths(profile, limit=k)]


def path_overlap_count(
    ranked: Sequence[RankedPath], top_n: int = 5
) -> float:
    """Table II:C8 — geomean, over the blocks of the top-``top_n`` paths, of
    how many executed paths contain each block.

    A value of ``k`` means a typical hot-path block is shared by ``k``
    executed paths, which is the reuse argument motivating Braids.
    """
    import math

    top = ranked[:top_n]
    if not top:
        return 0.0
    membership: dict = {}
    for p in ranked:
        for b in set(p.blocks):
            membership[b] = membership.get(b, 0) + 1
    hot_blocks = {b for p in top for b in p.blocks}
    counts = [membership[b] for b in hot_blocks]
    if not counts:
        return 0.0
    log_sum = sum(math.log(c) for c in counts)
    return math.exp(log_sum / len(counts))
