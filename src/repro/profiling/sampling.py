"""Time-proportional sampling profiler (paper §III.A sanity check).

The paper compares its frequency-based path weight against a pprof-style
sampling profile (1500 samples/s): sampling attributes weight in proportion
to *time*, while Pwt attributes it in proportion to *instruction count*.
We reproduce the comparison by replaying the path trace with per-op
latencies and sampling at a fixed virtual-time period.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from .path_profile import PathProfile
from .ranking import latency_weight, rank_paths


@dataclass
class SamplingComparison:
    """Frequency-based vs sampling-based relative weight of the top path."""

    function: str
    frequency_weight: float  # Pwt / Fwt of the top path
    sampling_weight: float  # Psamples / Fsamples of the same path

    @property
    def relative_change(self) -> float:
        """(sampling - frequency) / frequency; paper saw -15%..+10%."""
        if self.frequency_weight == 0:
            return 0.0
        return (self.sampling_weight - self.frequency_weight) / self.frequency_weight


def sample_path_profile(
    profile: PathProfile, sample_period: int = 97
) -> Counter:
    """Sample the path trace every ``sample_period`` virtual cycles.

    Each path execution advances virtual time by its latency-weighted size;
    any sample tick landing inside that span is attributed to the path.
    A prime default period avoids resonance with loop periods.
    """
    samples: Counter = Counter()
    latency_cache: Dict[int, int] = {}
    now = 0
    next_sample = sample_period
    for pid in profile.trace:
        span = latency_cache.get(pid)
        if span is None:
            span = max(1, latency_weight(profile.decode(pid)))
            latency_cache[pid] = span
        end = now + span
        while next_sample <= end:
            samples[pid] += 1
            next_sample += sample_period
        now = end
    return samples


def compare_frequency_vs_sampling(
    profile: PathProfile, sample_period: int = 97
) -> SamplingComparison:
    """Reproduce the §III.A relative-weight comparison for the top path."""
    ranked = rank_paths(profile, limit=1)
    if not ranked:
        return SamplingComparison(profile.function.name, 0.0, 0.0)
    top = ranked[0]
    samples = sample_path_profile(profile, sample_period)
    total_samples = sum(samples.values())
    sampling_weight = (
        samples[top.path_id] / total_samples if total_samples else 0.0
    )
    return SamplingComparison(
        function=profile.function.name,
        frequency_weight=top.coverage,
        sampling_weight=sampling_weight,
    )
