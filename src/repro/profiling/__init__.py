"""Dynamic profiling: Ball–Larus path profiles, edge profiles, path traces,
path ranking, and the sampling-profiler comparison."""

from .ball_larus import (
    BallLarusNumbering,
    ENTRY,
    EXIT,
    PathNumberingError,
)
from .path_profile import PathProfile, PathProfiler, profile_paths
from .edge_profile import EdgeProfile, EdgeProfiler
from .ranking import (
    RankedPath,
    count_ops,
    function_weight,
    latency_weight,
    path_overlap_count,
    rank_paths,
    top_k_coverage,
)
from .path_trace import PathTraceAnalysis, SuccessorStats
from .sampling import (
    SamplingComparison,
    compare_frequency_vs_sampling,
    sample_path_profile,
)

__all__ = [
    "BallLarusNumbering",
    "ENTRY",
    "EXIT",
    "EdgeProfile",
    "EdgeProfiler",
    "PathNumberingError",
    "PathProfile",
    "PathProfiler",
    "PathTraceAnalysis",
    "RankedPath",
    "SamplingComparison",
    "SuccessorStats",
    "compare_frequency_vs_sampling",
    "count_ops",
    "function_weight",
    "latency_weight",
    "path_overlap_count",
    "profile_paths",
    "rank_paths",
    "sample_path_profile",
    "top_k_coverage",
]
