"""Record-derived (semantic) metric publication.

The determinism contract — cached, parallel and serial runs of the same
suite report identical semantic counters — is only achievable if the
semantic numbers come from the pipeline's *result records* rather than
from live execution: a cache-served evaluation never runs the interpreter
or the simulator, but it carries the exact same
:class:`~repro.pipeline.WorkloadEvaluation` record a cold run produced.
This module is the single place those records are flattened into the
registry; everything it publishes is marked ``semantic=True``.

Access is duck-typed on purpose: importing :mod:`repro.pipeline` here
would create an import cycle (pipeline → obs → pipeline).
"""

from __future__ import annotations

from . import counter, enabled, gauge, registry
from .ledger import HOST_STRATEGY

#: (strategy label, attribute on WorkloadEvaluation) pairs
_STRATEGIES = (
    ("path-oracle", "path_oracle"),
    ("path-history", "path_history"),
    ("braid", "braid"),
)

#: ledger publication switch — only exercised by the overhead benchmark
#: (benchmarks/bench_ledger_overhead.py); production code leaves it on
_LEDGER_ENABLED = True


def set_ledger_publication(value: bool) -> bool:
    """Toggle attribution-ledger publication; returns the previous state."""
    global _LEDGER_ENABLED
    old = _LEDGER_ENABLED
    _LEDGER_ENABLED = bool(value)
    return old


def ledger_publication_enabled() -> bool:
    return _LEDGER_ENABLED


def _publish_ledger(workload: str, strategy_region: str, outcome,
                    publish_baseline: bool) -> None:
    """Charge one outcome's attribution into the registry ledger.

    The per-class dicts ride on the :class:`OffloadOutcome` record, so a
    cache-served evaluation publishes the exact floats a cold run
    produced — the same record-derived determinism contract as the
    semantic counters above.  The baseline decomposition is identical
    for every strategy (same path-cost table), so it is charged once per
    workload under the reserved ``host`` strategy.
    """
    attribution = getattr(outcome, "attribution", None)
    if not attribution:
        return
    led = registry().ledger
    led.add_attribution(workload, outcome.strategy, strategy_region,
                        attribution)
    if publish_baseline:
        base = getattr(outcome, "baseline_attribution", None)
        if base:
            led.add_attribution(workload, HOST_STRATEGY, HOST_STRATEGY, base)


def _publish_outcome(workload: str, strategy: str, outcome) -> None:
    counter("sim.cycles", outcome.needle_cycles, semantic=True,
            help="simulated cycles under Needle offload",
            workload=workload, strategy=strategy)
    counter("sim.baseline_cycles", outcome.baseline_cycles, semantic=True,
            help="simulated host-only cycles",
            workload=workload, strategy=strategy)
    counter("sim.energy_pj", outcome.needle_energy_pj, semantic=True,
            help="simulated energy under Needle offload (pJ)",
            workload=workload, strategy=strategy)
    counter("sim.baseline_energy_pj", outcome.baseline_energy_pj,
            semantic=True, help="simulated host-only energy (pJ)",
            workload=workload, strategy=strategy)
    counter("sim.frame_invocations", outcome.invocations, semantic=True,
            help="frame invocations attempted",
            workload=workload, strategy=strategy)
    counter("sim.frame_guard_failures", outcome.failures, semantic=True,
            help="frame invocations aborted by a guard (Fig. 10 discussion)",
            workload=workload, strategy=strategy)
    for port, attr in (("host", "host_mem_levels"),
                       ("accel", "accel_mem_levels")):
        for level, n in sorted(getattr(outcome, attr, {}).items()):
            counter("sim.mem_accesses", n, semantic=True,
                    help="memory accesses served per hierarchy level",
                    workload=workload, strategy=strategy,
                    port=port, level=level)


def _publish_frame(workload: str, region: str, frame_summary) -> None:
    gauge("frames.ops", frame_summary.op_count, semantic=True,
          help="operations in the software frame",
          workload=workload, region=region)
    gauge("frames.guards", frame_summary.guard_count, semantic=True,
          help="guard ops protecting the speculative frame",
          workload=workload, region=region)
    gauge("frames.psis", frame_summary.psi_count, semantic=True,
          help="psi-selects merging braid arms",
          workload=workload, region=region)
    gauge("frames.live_values",
          frame_summary.live_in_count + frame_summary.live_out_count,
          semantic=True, help="live-in + live-out transfer values",
          workload=workload, region=region)
    gauge("frames.stores", frame_summary.store_count, semantic=True,
          help="undo-logged stores in the frame",
          workload=workload, region=region)


def publish_workload_evaluation(evaluation) -> None:
    """Flatten one ``WorkloadEvaluation`` into semantic metric series.

    Called exactly once per evaluation record *production* (computed,
    or loaded from the artifact cache) in whichever process produced it;
    parallel workers publish into their scoped registry and the parent
    merges, so the totals match a serial run by construction.
    """
    if not enabled():
        return
    summary = evaluation.summary
    w = summary.name
    counter("pipeline.workloads_evaluated", 1, semantic=True,
            help="workload evaluations produced", suite=summary.suite)
    counter("interp.instructions_retired", summary.dynamic_instructions,
            semantic=True,
            help="dynamic instructions retired by the profiling run",
            workload=w)
    counter("interp.memory_trace_events", summary.memory_events,
            semantic=True,
            help="load/store events in the recorded memory trace",
            workload=w)
    counter("profile.path_executions", summary.total_executions,
            semantic=True, help="Ball-Larus path executions recorded",
            workload=w)
    counter("profile.paths_recorded", summary.executed_paths, semantic=True,
            help="distinct Ball-Larus paths observed (Table II:C1)",
            workload=w)
    gauge("profile.top_path_coverage", summary.top_path_coverage,
          semantic=True, help="coverage of the hottest path", workload=w)
    gauge("regions.braid_coverage", summary.braid_coverage, semantic=True,
          help="coverage of the top braid", workload=w)
    gauge("regions.braid_paths", summary.braid_n_paths, semantic=True,
          help="paths merged into the top braid", workload=w)

    baseline_pending = _LEDGER_ENABLED
    for strategy, attr in _STRATEGIES:
        outcome = getattr(evaluation, attr)
        if outcome is not None:
            _publish_outcome(w, strategy, outcome)
            if _LEDGER_ENABLED:
                region = "braid" if strategy == "braid" else "bl-path"
                _publish_ledger(w, region, outcome, baseline_pending)
                if getattr(outcome, "attribution", None):
                    baseline_pending = False

    if summary.path_frame is not None:
        _publish_frame(w, "bl-path", summary.path_frame)
    if summary.braid_frame is not None:
        _publish_frame(w, "braid", summary.braid_frame)

    sched = evaluation.braid_schedule
    if sched is not None:
        gauge("cgra.schedule_cycles", sched.cycles, semantic=True,
              help="CGRA schedule makespan for the braid frame", workload=w)
        gauge("cgra.initiation_interval", sched.initiation_interval,
              semantic=True, help="pipelined initiation interval",
              workload=w)
        gauge("cgra.fu_utilization", sched.fu_utilization, semantic=True,
              help="functional-unit utilisation of the mapped frame",
              workload=w)
        gauge("cgra.ilp", sched.ilp, semantic=True,
              help="ops per schedule cycle", workload=w)

    hls = evaluation.hls
    if hls is not None:
        gauge("hls.alm_fraction", hls.alm_fraction, semantic=True,
              help="Cyclone V ALM fraction consumed (§VI)", workload=w)


__all__ = [
    "ledger_publication_enabled",
    "publish_workload_evaluation",
    "set_ledger_publication",
]
