"""`repro top`: a one-screen live view of a running sweep.

Reads the progress model either from a live endpoint
(``http://host:port`` started with ``--serve-metrics``) or from the
``progress.json`` file written by ``--progress-out``, and repaints a
compact status screen on an interval — done/queued/running counts, a
progress bar with ETA, per-worker status with stall markers, and cache
hit rates.  Stops by itself once the run reaches a terminal state.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

#: states after which the sweep will publish no further progress
TERMINAL_STATES = frozenset(("finished", "drained", "aborted"))


class ProgressUnavailable(RuntimeError):
    """The progress source could not be read (yet)."""


def normalize_source(source: str) -> str:
    """Map CLI shorthand onto a concrete progress source.

    ``9100`` and ``host:9100`` become live-endpoint URLs (loopback when
    no host is given); http(s) URLs and file paths pass through.
    """
    text = str(source).strip()
    if text.startswith(("http://", "https://")):
        return text.rstrip("/")
    if text.isdigit():
        return "http://127.0.0.1:%d" % int(text)
    host, sep, port = text.rpartition(":")
    if sep and host and port.isdigit() and "/" not in host:
        return "http://%s:%s" % (host, port)
    return text  # a progress.json path


def fetch_progress(source: str, timeout: float = 2.0) -> dict:
    """Fetch one progress snapshot from a URL or file source."""
    normalized = normalize_source(source)
    if normalized.startswith(("http://", "https://")):
        url = normalized + "/progress"
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ProgressUnavailable(
                "cannot reach live endpoint %s (%s)" % (url, exc)) from None
    try:
        with open(normalized, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise ProgressUnavailable(
            "cannot read progress file %s (%s)"
            % (normalized, exc.strerror or exc)) from None
    except ValueError as exc:
        raise ProgressUnavailable(
            "progress file %s is not valid JSON (%s)"
            % (normalized, exc)) from None


def _format_duration(seconds) -> str:
    if seconds is None:
        return "--"
    seconds = max(int(seconds), 0)
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return "%dh%02dm%02ds" % (hours, minutes, secs)
    if minutes:
        return "%dm%02ds" % (minutes, secs)
    return "%ds" % secs


def _bar(done: int, total: int, width: int = 32) -> str:
    if total <= 0:
        return "-" * width
    filled = int(round(width * min(done / total, 1.0)))
    return "#" * filled + "-" * (width - filled)


def render_top(progress: dict) -> str:
    """Render one progress snapshot as a fixed-width text screen."""
    lines = []
    run_id = progress.get("run_id") or "(unjournaled)"
    state = progress.get("state", "unknown")
    stage = progress.get("stage", "")
    total = int(progress.get("total") or 0)
    done = int(progress.get("done") or 0)
    queued = int(progress.get("queued") or 0)
    running = progress.get("running") or []
    quarantined = progress.get("quarantined") or []
    header = "repro top — run %s [%s]" % (run_id, state)
    if stage:
        header += " stage=%s" % stage
    lines.append(header)
    lines.append("=" * max(len(header), 44))

    pct = (100.0 * done / total) if total else 0.0
    lines.append("  [%s] %d/%d (%.0f%%)"
                 % (_bar(done, total), done, total, pct))
    lines.append(
        "  elapsed %-9s eta %-9s rate %s/s"
        % (_format_duration(progress.get("elapsed_seconds")),
           _format_duration(progress.get("eta_seconds")),
           ("%.2f" % progress["rate_per_second"])
           if progress.get("rate_per_second") else "--"))
    lines.append(
        "  running %-4d queued %-4d quarantined %-4d retries %-4d stalls %d"
        % (len(running), queued, len(quarantined),
           int(progress.get("retries") or 0),
           int(progress.get("stalls") or 0)))
    resumed = int(progress.get("resumed") or 0)
    if resumed:
        lines.append("  resumed from journal: %d workload%s"
                     % (resumed, "s" if resumed != 1 else ""))
    cache = progress.get("cache") or {}
    if (cache.get("hits") or 0) + (cache.get("misses") or 0):
        rate = cache.get("hit_rate")
        lines.append("  cache   hits %-5d misses %-5d hit-rate %s"
                     % (cache.get("hits", 0), cache.get("misses", 0),
                        ("%.0f%%" % (100 * rate)) if rate is not None
                        else "--"))

    if running:
        lines.append("")
        lines.append("  %-24s %-10s %-8s %-9s %s"
                     % ("TASK", "WORKER", "PHASE", "ELAPSED", "ATTEMPT"))
        for entry in running:
            lines.append("  %-24s %-10s %-8s %-9s %s"
                         % (entry.get("task", "?")[:24],
                            entry.get("worker", "-")[:10],
                            entry.get("phase", "-")[:8],
                            _format_duration(entry.get("elapsed")),
                            entry.get("attempt", 1)))

    workers = progress.get("workers") or []
    if workers:
        lines.append("")
        lines.append("  %-12s %-24s %-8s %-9s %s"
                     % ("WORKER", "TASK", "PHASE", "IDLE", "STATUS"))
        for state_row in workers:
            status = "STALLED" if state_row.get("stalled") else "ok"
            lines.append("  %-12s %-24s %-8s %-9s %s"
                         % (state_row.get("worker", "?")[:12],
                            (state_row.get("task") or "-")[:24],
                            state_row.get("phase", "-")[:8],
                            _format_duration(state_row.get("idle_for")),
                            status))

    if quarantined:
        lines.append("")
        lines.append("  quarantined: " + ", ".join(quarantined[:8])
                     + (" …" if len(quarantined) > 8 else ""))
    return "\n".join(lines)


def run_top(source: str, interval: float = 1.0, once: bool = False,
            stream=None, clear: bool = True) -> int:
    """The `repro top` loop; returns a process exit code.

    Repaints until the source reports a terminal state (or forever for
    a file source that never finishes — ^C exits).  ``once`` renders a
    single frame, which is also what CI smoke tests use.
    """
    out = stream if stream is not None else sys.stdout
    misses = 0
    while True:
        try:
            progress = fetch_progress(source)
            misses = 0
        except ProgressUnavailable as exc:
            misses += 1
            if once or misses >= 5:
                print("repro top: %s" % exc, file=sys.stderr)
                return 1
            time.sleep(interval)
            continue
        if clear and getattr(out, "isatty", lambda: False)():
            out.write("\x1b[2J\x1b[H")
        out.write(render_top(progress) + "\n")
        out.flush()
        if once or progress.get("state") in TERMINAL_STATES:
            return 0
        time.sleep(interval)


__all__ = [
    "ProgressUnavailable",
    "TERMINAL_STATES",
    "fetch_progress",
    "normalize_source",
    "render_top",
    "run_top",
]
