"""Driver-side live-progress aggregation over the event bus.

:class:`ProgressModel` folds the typed event stream from
:mod:`repro.obs.events` into a small JSON-able progress model —
done/running/queued/quarantined counts, per-worker status with stall
flags, cache hit rates, throughput and an EWMA-smoothed ETA.
:class:`LiveAggregator` subscribes a model to a bus and snapshots it
atomically to ``progress.json`` (write-to-temp + ``os.replace``, so a
concurrent ``repro top`` never reads a torn file).

:class:`TelemetrySession` is the one-stop context manager the pipeline
enters around a sweep when any live-telemetry option is set: it builds
the bus, attaches the JSONL sink, wires the aggregator, optionally
starts the HTTP endpoint and the in-terminal ``--live`` renderer, and
tears everything down — publishing the terminal ``run_finished`` event
with the right status — on every exit path including drain.

Everything here is wall-clock-only bookkeeping.  Nothing in this module
feeds back into evaluation records, semantic metrics or the ledger;
byte-identity of semantic output with telemetry on vs off is enforced
by tests on every pool backend.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from typing import Optional

from . import events as ev

log = logging.getLogger(__name__)

#: EWMA smoothing factor for the per-task completion rate (higher =
#: snappier ETA, lower = steadier; 0.3 tracks mid-sweep speedups within
#: a few completions without whipsawing on one outlier)
EWMA_ALPHA = 0.3

#: minimum seconds between progress-file rewrites (forced writes on
#: run_finished bypass the throttle)
DEFAULT_WRITE_INTERVAL = 0.5


class ProgressModel:
    """Fold of the event stream into current sweep status.

    Thread-safe: the bus delivers events from whatever thread publishes
    them, and HTTP/`--live` readers snapshot concurrently.
    """

    def __init__(self, clock=time.time):
        self._lock = threading.Lock()
        self._clock = clock
        self.run_id = ""
        self.stage = ""
        self.state = "idle"  # idle -> running -> finished|drained|aborted
        self.total = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done = 0
        self.resumed = 0
        self.failed = 0
        self.quarantined = 0
        self.retries = 0
        self.stalls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.last_seq = -1
        self._queued = set()
        self._running = {}     # key -> {worker, attempt, phase, started}
        self._quarantined = set()
        self._workers = {}     # worker -> {task, phase, last_seen, stalled}
        self._ewma_rate = None  # tasks/second, EWMA-smoothed
        self._last_done_ts = None

    # -- folding -------------------------------------------------------------

    def apply(self, event: ev.Event) -> None:
        with self._lock:
            self.last_seq = event.seq
            handler = getattr(self, "_on_" + event.kind, None)
            if handler is not None:
                handler(event)

    def _on_run_started(self, event: ev.Event) -> None:
        self.run_id = event.data.get("run_id", event.key) or self.run_id
        self.stage = event.data.get("stage", self.stage)
        self.total = int(event.data.get("total", self.total))
        self.state = "running"
        self.started_at = event.ts

    def _on_run_resumed(self, event: ev.Event) -> None:
        # a resumed workload is finished work inherited from the prior
        # run: counted as done (the acceptance criterion: cumulative
        # progress, not just this process's share) but kept out of the
        # ETA rate estimate, which should reflect live throughput only
        key = event.key
        self._queued.discard(key)
        self._running.pop(key, None)
        self.done += 1
        self.resumed += 1

    def _on_task_scheduled(self, event: ev.Event) -> None:
        key = event.key
        if key not in self._running and key not in self._quarantined:
            self._queued.add(key)

    def _on_task_started(self, event: ev.Event) -> None:
        key = event.key
        self._queued.discard(key)
        self._running[key] = {
            "worker": event.data.get("worker", ""),
            "attempt": int(event.data.get("attempt", 1)),
            "phase": event.data.get("phase", "run"),
            "started": event.ts,
        }
        worker = event.data.get("worker")
        if worker:
            self._workers[worker] = {
                "task": key,
                "phase": event.data.get("phase", "run"),
                "last_seen": event.ts,
                "stalled": False,
            }

    def _on_task_finished(self, event: ev.Event) -> None:
        key = event.key
        self._queued.discard(key)
        entry = self._running.pop(key, None)
        self.done += 1
        if not event.data.get("ok", True):
            self.failed += 1
        if entry and entry.get("worker"):
            state = self._workers.get(entry["worker"])
            if state is not None and state.get("task") == key:
                state.update(task="", phase="idle", last_seen=event.ts,
                             stalled=False)
        # EWMA over inter-completion gaps -> live tasks/second
        now = event.ts
        if self._last_done_ts is not None:
            gap = max(now - self._last_done_ts, 1e-9)
            rate = 1.0 / gap
            if self._ewma_rate is None:
                self._ewma_rate = rate
            else:
                self._ewma_rate += EWMA_ALPHA * (rate - self._ewma_rate)
        self._last_done_ts = now

    def _on_retry(self, event: ev.Event) -> None:
        self.retries += 1
        key = event.key
        self._running.pop(key, None)
        self._queued.add(key)

    def _on_quarantined(self, event: ev.Event) -> None:
        key = event.key
        self._queued.discard(key)
        self._running.pop(key, None)
        self._quarantined.add(key)
        self.quarantined = len(self._quarantined)

    def _on_worker_heartbeat(self, event: ev.Event) -> None:
        worker = event.data.get("worker", event.key)
        if not worker:
            return
        self._workers[worker] = {
            "task": event.data.get("task", ""),
            "phase": event.data.get("phase", "run"),
            "last_seen": event.ts,
            "stalled": False,
        }
        task = event.data.get("task")
        entry = self._running.get(task)
        if entry is not None:
            entry["phase"] = event.data.get("phase", entry["phase"])
            entry["worker"] = worker

    def _on_worker_stalled(self, event: ev.Event) -> None:
        self.stalls += 1
        worker = event.data.get("worker", event.key)
        state = self._workers.get(worker)
        if state is not None:
            state["stalled"] = True

    def _on_cache_hit(self, event: ev.Event) -> None:
        self.cache_hits += 1

    def _on_cache_miss(self, event: ev.Event) -> None:
        self.cache_misses += 1

    def _on_run_finished(self, event: ev.Event) -> None:
        self.state = event.data.get("status", "finished")
        self.finished_at = event.ts
        self._running.clear()
        self._queued.clear()
        for state in self._workers.values():
            state.update(task="", phase="done")

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-able view of the model, lists sorted for stability."""
        with self._lock:
            now = self._clock()
            elapsed = (now - self.started_at) if self.started_at else 0.0
            if self.finished_at and self.started_at:
                elapsed = self.finished_at - self.started_at
            remaining = max(self.total - self.done - self.quarantined, 0)
            eta = None
            if (self.state == "running" and remaining > 0
                    and self._ewma_rate and self._ewma_rate > 0):
                eta = remaining / self._ewma_rate
            lookups = self.cache_hits + self.cache_misses
            running = [
                dict(sorted(entry.items()), task=key,
                     elapsed=round(max(now - entry["started"], 0.0), 3))
                for key, entry in sorted(self._running.items())
            ]
            workers = [
                dict(sorted(state.items()), worker=name,
                     idle_for=round(max(now - state["last_seen"], 0.0), 3))
                for name, state in sorted(self._workers.items())
            ]
            return {
                "run_id": self.run_id,
                "stage": self.stage,
                "state": self.state,
                "total": self.total,
                "done": self.done,
                "resumed": self.resumed,
                "failed": self.failed,
                "queued": len(self._queued),
                "running": running,
                "quarantined": sorted(self._quarantined),
                "retries": self.retries,
                "stalls": self.stalls,
                "workers": workers,
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "hit_rate": (self.cache_hits / lookups) if lookups else None,
                },
                "elapsed_seconds": round(elapsed, 3),
                "eta_seconds": round(eta, 3) if eta is not None else None,
                "rate_per_second": (round(self._ewma_rate, 6)
                                    if self._ewma_rate else None),
                "last_seq": self.last_seq,
                "generated_at": now,
            }


def write_progress(path: str, snapshot: dict) -> None:
    """Atomically replace ``path`` with ``snapshot`` as JSON.

    Temp-file + ``os.replace`` in the destination directory, so readers
    (``repro top``, the HTTP endpoint's file fallback) always see a
    complete document.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(directory, ".%s.tmp.%d" % (os.path.basename(path),
                                                  os.getpid()))
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, sort_keys=True, indent=2)
        handle.write("\n")
    os.replace(tmp, path)


class LiveAggregator:
    """Subscribe a :class:`ProgressModel` to a bus; persist snapshots.

    Progress-file writes are throttled to ``write_interval`` seconds so
    a chatty sweep does not turn into an fsync storm; terminal events
    force a final write.
    """

    def __init__(self, bus: ev.EventBus, progress_path: Optional[str] = None,
                 write_interval: float = DEFAULT_WRITE_INTERVAL):
        self.model = ProgressModel()
        self.progress_path = progress_path
        self.write_interval = write_interval
        self._bus = bus
        self._last_write = 0.0
        self._write_lock = threading.Lock()
        bus.subscribe(self._on_event)

    def _on_event(self, event: ev.Event) -> None:
        self.model.apply(event)
        if self.progress_path is None:
            return
        force = event.kind in (ev.RUN_FINISHED, ev.RUN_STARTED)
        now = time.monotonic()
        with self._write_lock:
            if not force and now - self._last_write < self.write_interval:
                return
            self._last_write = now
        self.flush()

    def flush(self) -> None:
        """Write the current snapshot out (no throttle)."""
        if self.progress_path is None:
            return
        try:
            write_progress(self.progress_path, self.model.snapshot())
        except OSError as exc:
            # progress persistence is best-effort; never fail the sweep
            log.warning("could not write progress file %s: %s",
                        self.progress_path, exc)

    def close(self) -> None:
        self._bus.unsubscribe(self._on_event)
        self.flush()


class _LiveRenderer:
    """Background thread repainting ``repro top``'s view on stderr."""

    def __init__(self, model: ProgressModel, interval: float = 1.0,
                 stream=None):
        import sys
        self._model = model
        self._interval = interval
        self._stream = stream if stream is not None else sys.stderr
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-live-render",
                                        daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _paint(self) -> None:
        from .top import render_top
        try:
            text = render_top(self._model.snapshot())
            if getattr(self._stream, "isatty", lambda: False)():
                self._stream.write("\x1b[2J\x1b[H")
            self._stream.write(text + "\n")
            self._stream.flush()
        except (OSError, ValueError):
            pass

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self._paint()

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._paint()  # leave the final state on screen


class TelemetrySession:
    """Everything live telemetry needs for one sweep, as a context.

    Owns the bus (installed as process-ambient on entry), the JSONL
    events sink, the aggregator + progress file, the optional HTTP
    endpoint and the optional terminal renderer.  On exit it publishes
    ``run_finished`` with a status derived from how the sweep ended —
    ``finished`` on clean return, ``drained`` on a graceful-shutdown
    interrupt (SweepDrained subclasses KeyboardInterrupt), ``aborted``
    on any other exception — then tears everything down in reverse
    order.
    """

    def __init__(self, run_id: str = "", progress_out: Optional[str] = None,
                 events_out: Optional[str] = None,
                 serve_metrics: Optional[str] = None,
                 live: bool = False, capacity: int = ev.DEFAULT_CAPACITY):
        self.run_id = run_id
        self.bus = ev.EventBus(capacity=capacity, run_id=run_id)
        if events_out:
            self.bus.attach_jsonl(events_out)
        self.aggregator = LiveAggregator(self.bus, progress_path=progress_out)
        self.server = None
        self._serve_metrics = serve_metrics
        self._live = live
        self._renderer = None
        self._previous_bus = None
        self._entered = False

    @classmethod
    def from_options(cls, options, run_id: str = "") -> "TelemetrySession":
        """Build a session from a :class:`repro.options.PipelineOptions`."""
        return cls(
            run_id=run_id or (options.run_id or ""),
            progress_out=options.progress_out,
            events_out=options.events_out,
            serve_metrics=options.serve_metrics,
            live=options.live,
        )

    # -- context -------------------------------------------------------------

    def __enter__(self) -> "TelemetrySession":
        self._previous_bus = ev.install(self.bus)
        if self._serve_metrics:
            from .http import MetricsServer, parse_serve_address
            host, port = parse_serve_address(self._serve_metrics)
            try:
                self.server = MetricsServer(host, port,
                                            progress=self.aggregator.model)
                self.server.start()
                log.info("serving live metrics on http://%s:%d",
                         self.server.host, self.server.port)
            except OSError as exc:
                self.server = None
                log.warning("could not start metrics endpoint on %s:%s: %s",
                            host, port, exc)
        if self._live:
            self._renderer = _LiveRenderer(self.aggregator.model)
            self._renderer.start()
        self._entered = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            status = "finished"
        elif issubclass(exc_type, KeyboardInterrupt):
            # covers SweepDrained (graceful drain) without importing the
            # resilience layer from obs
            status = "drained"
        else:
            status = "aborted"
        try:
            self.bus.publish(ev.RUN_FINISHED, self.run_id, status=status)
        except Exception:
            pass
        self.close()
        return False

    def close(self) -> None:
        if self._renderer is not None:
            self._renderer.close()
            self._renderer = None
        if self.server is not None:
            self.server.close()
            self.server = None
        self.aggregator.close()
        if self._entered:
            ev.uninstall(self._previous_bus)
            self._entered = False
        self.bus.close()


__all__ = [
    "DEFAULT_WRITE_INTERVAL",
    "EWMA_ALPHA",
    "LiveAggregator",
    "ProgressModel",
    "TelemetrySession",
    "write_progress",
]
