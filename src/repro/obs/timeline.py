"""Chrome trace-event export: wall-clock spans + simulated-cycle tracks.

Two very different clocks end up in one trace file:

* the **wall-clock span tree** the obs layer already records
  (:mod:`repro.obs.spans`) — pipeline stages as they actually ran, pool
  workers included;
* **simulated-cycle timelines** produced by the offload simulator
  (:meth:`~repro.sim.offload.OffloadSimulator.invocation_timeline`) —
  frame invocation runs, aborts and host fallbacks as duration events on
  one track per (workload, strategy).

Both are emitted in the Chrome trace-event JSON format (an object with a
``traceEvents`` array of "X" complete events), which Perfetto and
``chrome://tracing`` load directly.  The two clocks live on separate
trace *processes* so the UI never conflates microseconds with cycles:
``pid`` :data:`WALL_PID` carries spans with real microsecond timestamps,
``pid`` :data:`SIM_PID` carries simulated tracks with *cycles* in the
microsecond field (1 cycle renders as 1 µs).

Everything here is deterministic: tracks are assigned ``tid``\\ s in
sorted-name order and events are emitted in ascending-timestamp order
per track, so two runs that simulate the same work serialize the same
bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .spans import SpanNode

#: trace process carrying real wall-clock spans (timestamps in µs)
WALL_PID = 1
#: trace process carrying simulated timelines (timestamps in cycles)
SIM_PID = 2


@dataclass
class TimelineEvent:
    """One duration event on a simulated-cycle track."""

    name: str  # "reconfig" | "frame" | "abort" | "host"
    start_cycle: float
    duration_cycles: float
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end_cycle(self) -> float:
        return self.start_cycle + self.duration_cycles

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_cycle": self.start_cycle,
            "duration_cycles": self.duration_cycles,
            "args": dict(self.args),
        }


def _meta(pid: int, tid: int, name: str, kind: str) -> dict:
    """A trace-event metadata record naming a process or thread."""
    return {
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _span_events(
    roots: Sequence[SpanNode], pid: int = WALL_PID
) -> List[dict]:
    """Flatten a span forest into "X" events (one tid per root tree).

    Timestamps are rebased to the earliest recorded span start so the
    trace opens at t=0; spans recorded before the ``start`` field existed
    (all zero) still render, just collapsed at the origin.
    """
    events: List[dict] = []
    if not roots:
        return events
    t0 = min(root.start for root in roots)
    for tid, root in enumerate(roots, start=1):
        events.append(_meta(pid, tid, "span:%s" % root.name, "thread_name"))
        stack = [root]
        while stack:
            node = stack.pop()
            events.append({
                "name": node.name,
                "cat": "span",
                "ph": "X",
                "ts": (node.start - t0) * 1e6,
                "dur": node.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": dict(node.labels),
            })
            # reversed → children pop in recorded order
            stack.extend(reversed(node.children))
    # stable output order: per tid, ascending start (children follow
    # parents at equal ts because sort is stable)
    events.sort(key=lambda e: (e["tid"], 0 if e["ph"] == "M" else 1,
                               e.get("ts", 0.0)))
    return events


def _sim_events(
    tracks: Mapping[str, Sequence[TimelineEvent]], pid: int = SIM_PID
) -> List[dict]:
    """One trace thread per simulated track, in sorted-name order."""
    events: List[dict] = []
    for tid, track in enumerate(sorted(tracks), start=1):
        events.append(_meta(pid, tid, track, "thread_name"))
        for ev in sorted(tracks[track], key=lambda e: e.start_cycle):
            events.append({
                "name": ev.name,
                "cat": "sim",
                "ph": "X",
                "ts": float(ev.start_cycle),
                "dur": float(ev.duration_cycles),
                "pid": pid,
                "tid": tid,
                "args": dict(ev.args),
            })
    return events


def chrome_trace(
    span_roots: Optional[Sequence[SpanNode]] = None,
    sim_tracks: Optional[Mapping[str, Sequence[TimelineEvent]]] = None,
) -> dict:
    """Build the Chrome trace-event JSON object.

    ``span_roots``  wall-clock span forest (e.g. ``registry.span_roots``);
    ``sim_tracks``  {"workload/strategy": [TimelineEvent, ...]} simulated
                    timelines.  Either side may be omitted.
    """
    events: List[dict] = []
    if span_roots:
        events.append(_meta(WALL_PID, 0, "wall-clock spans", "process_name"))
        events.extend(_span_events(span_roots))
    if sim_tracks:
        events.append(_meta(SIM_PID, 0, "simulated cycles", "process_name"))
        events.extend(_sim_events(sim_tracks))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro-needle",
            "sim_time_unit": "cycles (rendered as microseconds)",
        },
    }


def render_chrome(
    span_roots: Optional[Sequence[SpanNode]] = None,
    sim_tracks: Optional[Mapping[str, Sequence[TimelineEvent]]] = None,
) -> str:
    """Chrome trace JSON text (deterministic key order)."""
    return json.dumps(
        chrome_trace(span_roots, sim_tracks), indent=2, sort_keys=True
    )


def write_chrome_trace(
    path: str,
    span_roots: Optional[Sequence[SpanNode]] = None,
    sim_tracks: Optional[Mapping[str, Sequence[TimelineEvent]]] = None,
) -> None:
    """Write the trace to ``path`` (open it at https://ui.perfetto.dev)."""
    with open(path, "w") as fh:
        fh.write(render_chrome(span_roots, sim_tracks))
        fh.write("\n")


__all__ = [
    "SIM_PID",
    "TimelineEvent",
    "WALL_PID",
    "chrome_trace",
    "render_chrome",
    "write_chrome_trace",
]
