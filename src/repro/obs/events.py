"""Typed, bounded in-process event bus: the live layer under `repro.obs`.

Every other observability surface in this repo — metric registries, the
attribution ledger, Chrome-trace timelines — is an *end-of-run
snapshot*.  The event bus is the complement: a stream of small, typed
lifecycle events (`run_started`, `task_scheduled`, `worker_heartbeat`,
…) published while a sweep runs, consumed by the live progress
aggregator (:mod:`repro.obs.live`), the opt-in HTTP endpoint
(:mod:`repro.obs.http`) and an optional JSONL sink on disk.

Design constraints, in order:

* **Must not perturb semantic output.**  Publishing is wall-clock-only
  bookkeeping; nothing downstream of the bus feeds back into
  evaluation records, semantic metrics or the ledger.  The tests
  enforce byte-identity with the bus on and off, on every pool backend.
* **Cheap when off.**  The module-level :func:`publish` helper is the
  instrumentation surface; with no bus installed it is one attribute
  read and one ``None`` test — the same no-op discipline as
  :func:`repro.obs.counter`.
* **Bounded.**  The in-memory ring keeps the last ``capacity`` events;
  a mis-sized consumer can never balloon driver memory.  The JSONL sink
  (when attached) receives *every* event, so the on-disk log is the
  complete, gapless record even after the ring wraps.
* **Typed.**  :func:`EventBus.publish` rejects unknown kinds loudly —
  the schema below is the contract `progress.json` and `repro top`
  build on, not a free-form logging channel.

Sequence numbers are monotonic and gapless per bus (hence per run):
consumers can detect loss, and the JSONL log replays in exact
publication order.
"""

from __future__ import annotations

import collections
import io
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

# -- the event vocabulary ----------------------------------------------------

RUN_STARTED = "run_started"
RUN_RESUMED = "run_resumed"
RUN_FINISHED = "run_finished"
TASK_SCHEDULED = "task_scheduled"
TASK_STARTED = "task_started"
TASK_FINISHED = "task_finished"
RETRY = "retry"
QUARANTINED = "quarantined"
WORKER_HEARTBEAT = "worker_heartbeat"
WORKER_STALLED = "worker_stalled"
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
JOURNAL_RECORD = "journal_record"

#: the closed event-kind vocabulary; :meth:`EventBus.publish` rejects
#: anything else (the bus is a typed schema, not a logging channel)
KINDS = frozenset((
    RUN_STARTED,
    RUN_RESUMED,
    RUN_FINISHED,
    TASK_SCHEDULED,
    TASK_STARTED,
    TASK_FINISHED,
    RETRY,
    QUARANTINED,
    WORKER_HEARTBEAT,
    WORKER_STALLED,
    CACHE_HIT,
    CACHE_MISS,
    JOURNAL_RECORD,
))

#: default ring capacity; the JSONL sink is unbounded regardless
DEFAULT_CAPACITY = 4096


class UnknownEventKind(ValueError):
    """An event was published with a kind outside :data:`KINDS`."""


@dataclass(frozen=True)
class Event:
    """One bus event: who (``key``), what (``kind``), when (``ts``).

    ``seq`` is the bus-local monotonic sequence number (gapless per
    run); ``ts`` is a wall-clock Unix timestamp — events are
    operational data and never feed semantic output, so wall time is
    fine here.  ``data`` carries kind-specific details and must stay
    JSON-serialisable.
    """

    seq: int
    ts: float
    kind: str
    key: str = ""
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "key": self.key,
            "data": dict(self.data),
        }

    def to_json(self) -> str:
        """One deterministic JSONL line (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        return cls(
            seq=int(payload["seq"]),
            ts=float(payload["ts"]),
            kind=str(payload["kind"]),
            key=str(payload.get("key", "")),
            data=dict(payload.get("data") or {}),
        )

    @classmethod
    def from_json(cls, line: str) -> "Event":
        return cls.from_dict(json.loads(line))


class EventBus:
    """Thread-safe bounded event stream with subscribers and a JSONL sink.

    Publication order is total: the lock serialises ``seq`` assignment,
    ring append, sink write and subscriber callbacks, so every consumer
    observes the same gapless sequence.  Subscribers must therefore be
    fast and must never publish back into the bus (that would deadlock
    by design — the aggregator folds, it does not speak).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, run_id: str = "",
                 clock: Callable[[], float] = time.time):
        self.run_id = run_id
        self.capacity = max(1, int(capacity))
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._ring: collections.deque = collections.deque(maxlen=self.capacity)
        self._subscribers: List[Callable[[Event], None]] = []
        self._sink: Optional[io.TextIOBase] = None
        self._sink_owned = False
        #: total events ever published (>= len(ring) once the ring wraps)
        self.published = 0

    # -- sink ----------------------------------------------------------------

    def attach_jsonl(self, target) -> None:
        """Stream every event to ``target`` — a path (opened for append)
        or an already-open text file object — one JSON line per event."""
        with self._lock:
            if isinstance(target, str):
                self._sink = open(target, "a", encoding="utf-8")
                self._sink_owned = True
            else:
                self._sink = target
                self._sink_owned = False

    # -- subscribers ---------------------------------------------------------

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    # -- publication ---------------------------------------------------------

    def publish(self, kind: str, key: str = "", /, **data) -> Event:
        """Append one event; returns it (with its assigned ``seq``).

        ``kind`` and ``key`` are positional-only so payload fields may
        themselves be named ``kind`` or ``key`` (retry/quarantine events
        carry the failure kind; cache events may describe cache keys).
        """
        if kind not in KINDS:
            raise UnknownEventKind(
                "unknown event kind %r (known: %s)"
                % (kind, ", ".join(sorted(KINDS))))
        with self._lock:
            event = Event(
                seq=next(self._seq),
                ts=self._clock(),
                kind=kind,
                key=key,
                data=data,
            )
            self._ring.append(event)
            self.published += 1
            if self._sink is not None:
                try:
                    self._sink.write(event.to_json() + "\n")
                    self._sink.flush()
                except (OSError, ValueError):
                    # a dead sink must never take the sweep down; drop
                    # it and keep the in-memory stream alive
                    self._sink = None
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(event)
            except Exception:
                # live telemetry is best-effort by contract: a broken
                # consumer loses its own view, never the run
                pass
        return event

    # -- reading -------------------------------------------------------------

    def events(self, since: Optional[int] = None) -> List[Event]:
        """Snapshot of the retained ring, optionally only ``seq > since``."""
        with self._lock:
            if since is None:
                return list(self._ring)
            return [e for e in self._ring if e.seq > since]

    def last_seq(self) -> int:
        """Highest sequence number published so far (-1 when empty)."""
        with self._lock:
            return self._ring[-1].seq if self._ring else -1

    def close(self) -> None:
        with self._lock:
            sink, self._sink = self._sink, None
            owned, self._sink_owned = self._sink_owned, False
        if sink is not None and owned:
            try:
                sink.close()
            except OSError:
                pass


# -- ambient bus -------------------------------------------------------------

_ACTIVE: Optional[EventBus] = None


def install(bus: EventBus) -> Optional[EventBus]:
    """Make ``bus`` the process-ambient bus; returns the previous one."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, bus
    return previous


def uninstall(previous: Optional[EventBus] = None) -> None:
    """Clear (or restore) the ambient bus."""
    global _ACTIVE
    _ACTIVE = previous


def active() -> Optional[EventBus]:
    """The ambient bus, or ``None`` when live telemetry is off."""
    return _ACTIVE


def publish(kind: str, key: str = "", /, **data) -> Optional[Event]:
    """Publish to the ambient bus; a cheap no-op when none is installed.

    This is the helper instrumentation sites call — one global read and
    one ``None`` test on the disabled path, mirroring the
    :func:`repro.obs.counter` cost discipline.
    """
    bus = _ACTIVE
    if bus is None:
        return None
    return bus.publish(kind, key, **data)


__all__ = [
    "CACHE_HIT",
    "CACHE_MISS",
    "DEFAULT_CAPACITY",
    "Event",
    "EventBus",
    "JOURNAL_RECORD",
    "KINDS",
    "QUARANTINED",
    "RETRY",
    "RUN_FINISHED",
    "RUN_RESUMED",
    "RUN_STARTED",
    "TASK_FINISHED",
    "TASK_SCHEDULED",
    "TASK_STARTED",
    "UnknownEventKind",
    "WORKER_HEARTBEAT",
    "WORKER_STALLED",
    "active",
    "install",
    "publish",
    "uninstall",
]
