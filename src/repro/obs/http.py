"""Opt-in background HTTP endpoint for live metrics and progress.

A stdlib-only (``http.server``) daemon-threaded server started by
``--serve-metrics [HOST:]PORT`` and owned by
:class:`repro.obs.live.TelemetrySession`.  Three routes:

* ``/metrics``  — the existing Prometheus exporter over the ambient
  metrics registry (deterministically sorted; see
  :func:`repro.obs.export.render_prometheus`);
* ``/progress`` — the live :class:`~repro.obs.live.ProgressModel`
  snapshot as JSON;
* ``/healthz``  — liveness probe, always ``ok``.

Security posture: binds ``127.0.0.1`` unless the user spells out a host
explicitly — the endpoint exposes workload names and machine progress,
so it is loopback-only by default.  The server is read-only and carries
no authentication; anyone who can reach the port can scrape it.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

log = logging.getLogger(__name__)

#: loopback unless the user explicitly binds wider
DEFAULT_HOST = "127.0.0.1"


def parse_serve_address(spec: str, default_host: str = DEFAULT_HOST
                        ) -> Tuple[str, int]:
    """Parse ``--serve-metrics``'s ``[HOST:]PORT`` argument.

    ``"9100"`` → ``("127.0.0.1", 9100)``; ``"0.0.0.0:9100"`` →
    ``("0.0.0.0", 9100)``.  Port 0 is allowed (ephemeral; tests use it)
    — the bound port is reported on :attr:`MetricsServer.port`.
    """
    spec = str(spec).strip()
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = default_host, spec
    host = host.strip() or default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            "invalid --serve-metrics address %r (expected [HOST:]PORT)"
            % spec) from None
    if not 0 <= port <= 65535:
        raise ValueError("port %d out of range in --serve-metrics %r"
                         % (port, spec))
    return host, port


class _Handler(BaseHTTPRequestHandler):
    # set per-server via the factory in MetricsServer
    progress_model = None

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                self._send(200, "text/plain; charset=utf-8", b"ok\n")
            elif path == "/metrics":
                self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                           self._render_metrics())
            elif path in ("/progress", "/progress.json"):
                self._send(200, "application/json; charset=utf-8",
                           self._render_progress())
            else:
                self._send(404, "text/plain; charset=utf-8", b"not found\n")
        except BrokenPipeError:
            pass
        except Exception as exc:  # the endpoint must never kill the sweep
            log.debug("metrics endpoint error on %s: %s", path, exc)
            try:
                self._send(500, "text/plain; charset=utf-8",
                           b"internal error\n")
            except OSError:
                pass

    def _render_metrics(self) -> bytes:
        from .export import render_prometheus
        # the driver mutates the registry concurrently; a snapshot taken
        # mid-update can be retried once before giving up
        for attempt in (0, 1):
            try:
                return render_prometheus(None).encode("utf-8")
            except RuntimeError:
                if attempt:
                    raise
        raise RuntimeError("unreachable")

    def _render_progress(self) -> bytes:
        model = self.progress_model
        snapshot = model.snapshot() if model is not None else {}
        return (json.dumps(snapshot, sort_keys=True, indent=2) + "\n"
                ).encode("utf-8")

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        log.debug("metrics endpoint: " + format, *args)


class MetricsServer:
    """Daemon-threaded HTTP server for ``/metrics`` + ``/progress``.

    ``progress`` is the live :class:`~repro.obs.live.ProgressModel` (or
    anything with a ``snapshot() -> dict``).  ``start()`` binds and
    spawns the serving thread; ``close()`` shuts it down and joins —
    called by :class:`~repro.obs.live.TelemetrySession` on every sweep
    exit path, including drain.
    """

    def __init__(self, host: str = DEFAULT_HOST, port: int = 0,
                 progress=None):
        handler = type("_BoundHandler", (_Handler,),
                       {"progress_model": progress})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-metrics-http",
                                        kwargs={"poll_interval": 0.25},
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


__all__ = ["DEFAULT_HOST", "MetricsServer", "parse_serve_address"]
