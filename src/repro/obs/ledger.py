"""Deterministic cycle/energy attribution ledger.

Needle's evaluation (§VI) is an *attribution* story: the Fig. 9/10
speedup and energy claims decompose into where simulated cycles and
picojoules go — frame compute vs. guard overhead vs. ψ-merges vs. live
value transfer vs. abort/rollback vs. host fallback vs. the memory
hierarchy.  The :class:`AttributionLedger` records exactly that
decomposition along four fixed axes::

    (workload, strategy, region kind, charge class) -> (cycles, energy pJ)

Charge classes are a closed contract (:data:`CHARGE_CLASSES`): the
offload simulator produces a per-outcome attribution dict whose classes
partition the outcome's total cycles/energy, the OOO core's per-path
event census and the energy model's component breakdown supply the
splits, and the simulator's reported totals are *defined as* the
canonical fold of the class totals (:func:`fold_attribution`) — so the
ledger conserves by construction: summing a workload/strategy's ledger
cycles in sorted-class order reproduces ``needle_cycles`` bit for bit.

Determinism follows the obs semantic-metrics contract: attribution is
carried on the flat :class:`~repro.sim.offload.OffloadOutcome` records
and published once per record *production* (computed or cache-served),
so serial, ``jobs=N`` and cache-served runs build byte-identical
ledgers.  Worker processes fill private ledgers that snapshot/merge
across the pool exactly like metric registries (entries add).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: one-time CGRA reconfiguration (cycles only)
CHARGE_RECONFIG = "reconfig"
#: successful frame execution: makespans + pipelined IIs, minus the
#: guard/ψ shares; energy is FU+network+latch minus the guard/ψ FU share
CHARGE_FRAME_COMPUTE = "frame.compute"
#: guard share of frame execution (guard-op fraction of the schedule)
CHARGE_FRAME_GUARD = "frame.guard"
#: ψ-merge share of frame execution (braid arms merging, §V)
CHARGE_FRAME_PSI = "frame.psi"
#: accelerator-side memory energy (frames stream through the banked L2)
CHARGE_FRAME_MEM = "frame.mem"
#: live-value transfer + invocation overhead
CHARGE_TRANSFER = "transfer"
#: wasted frame execution on a guard failure
CHARGE_ABORT_FRAME = "abort.frame"
#: undo-log rollback after a guard failure (cycles only)
CHARGE_ABORT_ROLLBACK = "abort.rollback"
#: host re-execution of the actual path after a guard failure
CHARGE_ABORT_REEXEC = "abort.reexec"
#: events the predictor declined, executed on the host
CHARGE_HOST_FALLBACK = "host.fallback"
#: host-only baseline execution (strategy "host")
CHARGE_HOST_COMPUTE = "host.compute"
#: host-side memory energy per hierarchy level (loads/stores, energy only)
CHARGE_HOST_MEM_L1 = "host.mem.l1"
CHARGE_HOST_MEM_L2 = "host.mem.l2"
CHARGE_HOST_MEM_DRAM = "host.mem.dram"

#: the closed set of charge classes — the contract every attribution
#: producer and every report/regression consumer is measured against
CHARGE_CLASSES: Tuple[str, ...] = (
    CHARGE_RECONFIG,
    CHARGE_FRAME_COMPUTE,
    CHARGE_FRAME_GUARD,
    CHARGE_FRAME_PSI,
    CHARGE_FRAME_MEM,
    CHARGE_TRANSFER,
    CHARGE_ABORT_FRAME,
    CHARGE_ABORT_ROLLBACK,
    CHARGE_ABORT_REEXEC,
    CHARGE_HOST_FALLBACK,
    CHARGE_HOST_COMPUTE,
    CHARGE_HOST_MEM_L1,
    CHARGE_HOST_MEM_L2,
    CHARGE_HOST_MEM_DRAM,
)

#: ledger strategy/region labels for the host-only baseline entries
HOST_STRATEGY = "host"

#: one ledger key: (workload, strategy, region kind, charge class)
LedgerKey = Tuple[str, str, str, str]


def fold_attribution(
    attribution: Mapping[str, Tuple[float, float]]
) -> Tuple[float, float]:
    """Canonical (cycles, energy) fold of an attribution dict.

    Classes are summed in sorted-name order — the *same* order
    :meth:`AttributionLedger.cycle_total` uses — so a simulator that
    reports ``fold_attribution(attr)`` as its totals is exactly
    conserved against the ledger, last float bit included.
    """
    cycles = 0.0
    energy = 0.0
    for charge in sorted(attribution):
        c, e = attribution[charge]
        cycles += c
        energy += e
    return cycles, energy


class AttributionLedger:
    """Cycles and energy attributed along the fixed axes.

    Entries accumulate (counter semantics): charging the same key twice
    adds, and :meth:`merge_snapshot` folds a worker's ledger in the same
    way — so pooled sweeps total exactly like serial ones.
    """

    def __init__(self):
        self.entries: Dict[LedgerKey, List[float]] = {}

    # -- publication -------------------------------------------------------

    def charge(
        self,
        workload: str,
        strategy: str,
        region: str,
        charge: str,
        cycles: float = 0.0,
        energy_pj: float = 0.0,
    ) -> None:
        """Attribute cycles/energy to one (workload, strategy, region,
        charge-class) cell."""
        key = (str(workload), str(strategy), str(region), str(charge))
        slot = self.entries.get(key)
        if slot is None:
            self.entries[key] = [float(cycles), float(energy_pj)]
        else:
            slot[0] += cycles
            slot[1] += energy_pj

    def add_attribution(
        self,
        workload: str,
        strategy: str,
        region: str,
        attribution: Mapping[str, Tuple[float, float]],
    ) -> None:
        """Charge a whole per-outcome attribution dict (sorted classes, so
        repeated publication is order-independent)."""
        for charge in sorted(attribution):
            cycles, energy = attribution[charge]
            self.charge(workload, strategy, region, charge, cycles, energy)

    # -- introspection -----------------------------------------------------

    def series(self) -> List[Tuple[LedgerKey, Tuple[float, float]]]:
        """(key, (cycles, energy)) pairs in deterministic sorted order."""
        return [
            (key, (self.entries[key][0], self.entries[key][1]))
            for key in sorted(self.entries)
        ]

    def _select(
        self, workload: Optional[str], strategy: Optional[str]
    ) -> Iterable[LedgerKey]:
        for key in sorted(self.entries):
            if workload is not None and key[0] != workload:
                continue
            if strategy is not None and key[1] != strategy:
                continue
            yield key

    def cycle_total(
        self,
        workload: Optional[str] = None,
        strategy: Optional[str] = None,
    ) -> float:
        """Cycles summed over matching entries, in sorted-key order.

        For one (workload, strategy) this folds the charge classes in
        sorted order — the conservation contract against the simulator's
        reported totals (see :func:`fold_attribution`).
        """
        total = 0.0
        for key in self._select(workload, strategy):
            total += self.entries[key][0]
        return total

    def energy_total(
        self,
        workload: Optional[str] = None,
        strategy: Optional[str] = None,
    ) -> float:
        """Energy (pJ) summed over matching entries, in sorted-key order."""
        total = 0.0
        for key in self._select(workload, strategy):
            total += self.entries[key][1]
        return total

    def workloads(self) -> List[str]:
        return sorted({key[0] for key in self.entries})

    def strategies(self, workload: Optional[str] = None) -> List[str]:
        return sorted({
            key[1] for key in self.entries
            if workload is None or key[0] == workload
        })

    def class_totals(
        self, workload: str, strategy: str
    ) -> Dict[str, Tuple[float, float]]:
        """charge class -> (cycles, energy) for one workload/strategy."""
        out: Dict[str, Tuple[float, float]] = {}
        for key in self._select(workload, strategy):
            out[key[3]] = (self.entries[key][0], self.entries[key][1])
        return out

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __repr__(self) -> str:
        return "<AttributionLedger: %d entries>" % len(self.entries)

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict, picklable/JSON-able image (sorted entries)."""
        return {
            "entries": [
                {
                    "workload": key[0],
                    "strategy": key[1],
                    "region": key[2],
                    "charge": key[3],
                    "cycles": value[0],
                    "energy_pj": value[1],
                }
                for key, value in sorted(self.entries.items())
            ]
        }

    def merge_snapshot(self, snapshot: Optional[dict]) -> None:
        """Fold a snapshot in (entries add, like counters)."""
        if not snapshot:
            return
        for entry in snapshot.get("entries", ()):
            self.charge(
                entry.get("workload", "?"),
                entry.get("strategy", "?"),
                entry.get("region", "?"),
                entry.get("charge", "?"),
                float(entry.get("cycles", 0.0)),
                float(entry.get("energy_pj", 0.0)),
            )

    def merge(self, other: "AttributionLedger") -> None:
        """Fold another ledger in (entries add)."""
        for key, value in sorted(other.entries.items()):
            self.charge(key[0], key[1], key[2], key[3], value[0], value[1])

    def clear(self) -> None:
        self.entries.clear()


__all__ = [
    "AttributionLedger",
    "CHARGE_ABORT_FRAME",
    "CHARGE_ABORT_REEXEC",
    "CHARGE_ABORT_ROLLBACK",
    "CHARGE_CLASSES",
    "CHARGE_FRAME_COMPUTE",
    "CHARGE_FRAME_GUARD",
    "CHARGE_FRAME_MEM",
    "CHARGE_FRAME_PSI",
    "CHARGE_HOST_COMPUTE",
    "CHARGE_HOST_FALLBACK",
    "CHARGE_HOST_MEM_DRAM",
    "CHARGE_HOST_MEM_L1",
    "CHARGE_HOST_MEM_L2",
    "CHARGE_RECONFIG",
    "CHARGE_TRANSFER",
    "HOST_STRATEGY",
    "LedgerKey",
    "fold_attribution",
]
