"""Unified observability layer: metrics, spans and exporters.

Zero-dependency instrumentation shared by the interpreter, profiler,
artifact cache, pipeline and simulators.  Off by default and cheap when
off: every module-level helper starts with a single flag test, so
instrumentation sites cost one function call on the no-op path (and
sites in genuinely hot loops publish *aggregates* at run boundaries
instead of per-event samples).

Typical use::

    from repro import obs

    obs.enable()
    with obs.span("analyse", workload="470.lbm"):
        ...
    obs.counter("interp.instructions_retired", 12345, workload="470.lbm")
    print(obs.export.render_metrics())

Two kinds of data come out:

* **semantic** metrics — derived from pipeline result records, identical
  across serial / ``jobs=N`` / cache-served runs of the same suite;
* **operational** metrics and spans — wall times, cache hits, worker
  ids: how the run happened, free to vary.

Worker processes publish into a private scoped registry
(:func:`scoped`) and ship its :func:`snapshot` back through the pool;
the parent folds it in with :func:`merge`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterable, Optional

from . import events, export
from .ledger import CHARGE_CLASSES, AttributionLedger
from .logconfig import logging_setup
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricTypeError,
    MetricsRegistry,
    label_key,
)
from .spans import NOOP_SPAN, SpanContext, SpanNode

_ENABLED = False
_REGISTRY = MetricsRegistry()
# Per-thread registry overlay: inside :func:`scoped` a thread publishes
# into its own private registry (thread-pool workers run one task each
# this way) while every other thread keeps seeing the global one.
_TLS = threading.local()


# -- switches ---------------------------------------------------------------


def enabled() -> bool:
    """Is instrumentation currently collecting?"""
    return _ENABLED


def enable(reset: bool = False) -> None:
    """Turn instrumentation on (optionally clearing prior data)."""
    global _ENABLED
    if reset:
        _REGISTRY.clear()
    _ENABLED = True


def disable() -> None:
    """Turn instrumentation off; collected data stays readable."""
    global _ENABLED
    _ENABLED = False


# -- registry access --------------------------------------------------------


def registry() -> MetricsRegistry:
    """The active registry: this thread's :func:`scoped` registry when one
    is in effect, the process-global registry otherwise."""
    reg = getattr(_TLS, "registry", None)
    return _REGISTRY if reg is None else reg


def ledger() -> AttributionLedger:
    """The active registry's attribution ledger."""
    return registry().ledger


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _REGISTRY
    old, _REGISTRY = _REGISTRY, reg
    return old


def snapshot() -> dict:
    """Plain-dict image of the active registry (picklable, JSON-able)."""
    return registry().snapshot()


def merge(snap: dict) -> None:
    """Fold a worker's registry snapshot into the active registry."""
    registry().merge_snapshot(snap)


@contextmanager
def scoped(collect: bool = True):
    """Run against a fresh private registry, restoring state afterwards.

    Yields the private :class:`MetricsRegistry`.  Used by pool workers:
    whatever the worker inherited is set aside, the task publishes into
    a clean registry, and the caller snapshots it for the trip back to
    the parent.  The swap is *thread-local*, so thread-pool workers each
    scope their own task without disturbing the parent thread (the
    enable flag stays global — workers only collect when the parent
    already does, so toggling it is idempotent across threads).
    """
    global _ENABLED
    fresh = MetricsRegistry()
    old_registry = getattr(_TLS, "registry", None)
    _TLS.registry = fresh
    old_enabled = _ENABLED
    _ENABLED = collect
    try:
        yield fresh
    finally:
        _ENABLED = old_enabled
        _TLS.registry = old_registry


# -- publication helpers ----------------------------------------------------


def counter(name: str, value: float = 1, semantic: bool = False,
            help: str = "", **labels) -> None:
    """Increment a counter series (no-op while disabled)."""
    if not _ENABLED:
        return
    registry().counter(name, help=help, semantic=semantic).inc(value, **labels)


def gauge(name: str, value: float, semantic: bool = False,
          help: str = "", **labels) -> None:
    """Set a gauge series (no-op while disabled)."""
    if not _ENABLED:
        return
    registry().gauge(name, help=help, semantic=semantic).set(value, **labels)


def observe(name: str, value: float, semantic: bool = False, help: str = "",
            buckets: Optional[Iterable[float]] = None, **labels) -> None:
    """Record a histogram observation (no-op while disabled)."""
    if not _ENABLED:
        return
    registry().histogram(
        name, help=help, semantic=semantic, buckets=buckets
    ).observe(value, **labels)


def span(name: str, **labels):
    """Context manager timing one named stretch of work.

    Returns a shared no-op object while disabled, so disabled spans cost
    one flag test and no allocation.
    """
    if not _ENABLED:
        return NOOP_SPAN
    return SpanContext(registry(), name, labels)


__all__ = [
    "AttributionLedger",
    "CHARGE_CLASSES",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricTypeError",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SpanContext",
    "SpanNode",
    "counter",
    "disable",
    "enable",
    "enabled",
    "events",
    "export",
    "gauge",
    "label_key",
    "ledger",
    "logging_setup",
    "merge",
    "observe",
    "registry",
    "scoped",
    "set_registry",
    "snapshot",
    "span",
]
