"""Hierarchical timing spans.

A span measures one named stretch of work (``analyse``, ``evaluate``,
``simulate_offload``) with arbitrary labels; nested spans form the timing
tree a pipeline run produces.  Spans serialise to plain dicts so worker
processes can ship their trees back to the parent, where they are grafted
under the parent's open span.

Durations are wall-clock (:func:`time.perf_counter`) and therefore
*operational* data — never part of the semantic-determinism contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SpanNode:
    """One completed (or in-flight) span."""

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    start: float = 0.0
    duration: float = 0.0
    children: List["SpanNode"] = field(default_factory=list)

    def to_dict(self) -> dict:
        # ``start`` must survive the trip: worker-shipped trees lose
        # sibling ordering (and timeline placement) without it
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "start": self.start,
            "duration": self.duration,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanNode":
        return cls(
            name=data.get("name", "?"),
            labels=dict(data.get("labels", {})),
            start=float(data.get("start", 0.0)),
            duration=float(data.get("duration", 0.0)),
            children=[cls.from_dict(c) for c in data.get("children", ())],
        )

    def walk(self):
        """Depth-first iteration over this subtree (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()


class NoopSpan:
    """Reusable do-nothing context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: singleton handed out whenever instrumentation is disabled
NOOP_SPAN = NoopSpan()


class SpanContext:
    """Context manager recording one span into a registry."""

    __slots__ = ("registry", "name", "labels", "node")

    def __init__(self, registry, name: str, labels: Dict[str, object]):
        self.registry = registry
        self.name = name
        self.labels = labels
        self.node: SpanNode = None  # type: ignore[assignment]

    def __enter__(self) -> SpanNode:
        self.node = self.registry.open_span(self.name, self.labels)
        self.node.start = time.perf_counter()
        return self.node

    def __exit__(self, *exc) -> bool:
        self.node.duration = time.perf_counter() - self.node.start
        self.registry.close_span(self.node)
        return False


__all__ = ["NOOP_SPAN", "NoopSpan", "SpanContext", "SpanNode"]
