"""Central logging configuration for the `repro` package.

Every module in the tree does ``log = logging.getLogger(__name__)`` and
nothing else — configuration is deliberately *not* scattered across
modules.  :func:`logging_setup` is the one place handlers and levels
are decided, wired to the CLI's global ``--log-level`` flag and the
``$REPRO_LOG_LEVEL`` environment variable.

Idempotent by construction: repeated calls re-level the existing
handler instead of stacking new ones, so tests and embedded callers can
invoke it freely.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: environment override consulted when no explicit level is passed
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: default when neither the flag nor the environment says otherwise
DEFAULT_LEVEL = "WARNING"

_HANDLER_NAME = "repro-obs-log-handler"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


class _StderrHandler(logging.StreamHandler):
    """StreamHandler that resolves ``sys.stderr`` at emit time.

    Binding the stream at setup time would capture whatever stderr
    happened to be then (a pytest capture buffer, a since-redirected
    pipe) and keep writing to it after it is gone; looking it up per
    record follows redirections the way ``logging.lastResort`` does.
    An explicit ``stream`` pins a fixed target instead.
    """

    def __init__(self):
        super().__init__(stream=None)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # StreamHandler.__init__ assigns; ignore
        pass


def _resolve_level(level: Optional[str]) -> int:
    """Explicit argument beats ``$REPRO_LOG_LEVEL`` beats WARNING."""
    raw = level if level is not None else os.environ.get(LOG_LEVEL_ENV)
    if raw is None or str(raw).strip() == "":
        raw = DEFAULT_LEVEL
    raw = str(raw).strip().upper()
    if raw.isdigit():
        return int(raw)
    resolved = logging.getLevelName(raw)
    if not isinstance(resolved, int):
        raise ValueError(
            "unknown log level %r (use DEBUG, INFO, WARNING, ERROR, "
            "CRITICAL or a numeric level)" % (level if level is not None
                                              else raw))
    return resolved


def logging_setup(level: Optional[str] = None, stream=None) -> int:
    """Configure the ``repro`` logger tree; returns the resolved level.

    ``level`` is a name ("DEBUG", "info", …) or numeric string; when
    ``None`` the ``$REPRO_LOG_LEVEL`` environment variable is consulted
    and WARNING is the fallback.  Output goes to ``stream`` (default
    stderr) through a single named handler owned by this function —
    repeated calls adjust it in place rather than duplicating it.
    """
    resolved = _resolve_level(level)
    root = logging.getLogger("repro")
    handler = None
    for existing in root.handlers:
        if existing.get_name() == _HANDLER_NAME:
            handler = existing
            break
    if handler is not None and (
            (stream is None) != isinstance(handler, _StderrHandler)):
        root.removeHandler(handler)
        handler = None
    if handler is None:
        handler = (_StderrHandler() if stream is None
                   else logging.StreamHandler(stream))
        handler.set_name(_HANDLER_NAME)
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(resolved)
    root.setLevel(resolved)
    # propagation stays on: the root logger normally has no handlers so
    # nothing double-prints, and capturing tools (pytest caplog) keep
    # seeing repro.* records
    return resolved


__all__ = ["DEFAULT_LEVEL", "LOG_LEVEL_ENV", "logging_setup"]
