"""Registry exporters: JSON, Prometheus text format, human views.

Every exporter accepts a :class:`~repro.obs.metrics.MetricsRegistry`, a
plain snapshot dict (what workers ship between processes), or ``None``
for the process-global registry.  Output ordering is fully deterministic
— metric families by name, series by sorted labels — so two registries
holding the same values always render byte-identically.
"""

from __future__ import annotations

import json
import re
from typing import List, Optional

from .metrics import MetricsRegistry


def _coerce(source=None) -> dict:
    """Normalise any accepted source into a snapshot dict."""
    if source is None:
        from . import registry

        return registry().snapshot()
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    if isinstance(source, dict):
        return source
    raise TypeError("cannot export %r" % type(source).__name__)


# -- JSON -------------------------------------------------------------------


def to_json(source=None, indent: Optional[int] = 2) -> str:
    """The full registry as deterministic JSON (sorted keys throughout)."""
    return json.dumps(_coerce(source), indent=indent, sort_keys=True)


def semantic_json(source=None, indent: Optional[int] = 2) -> str:
    """Only the semantic metrics, as deterministic JSON.

    Two runs of the same suite — serial, ``jobs=N`` or cache-served — must
    produce byte-identical output here; that is the determinism contract
    the obs tests enforce.
    """
    snap = _coerce(source)
    semantic = {
        "metrics": [m for m in snap.get("metrics", ()) if m.get("semantic")],
        "ledger": snap.get("ledger", {"entries": []}),
    }
    return json.dumps(semantic, indent=indent, sort_keys=True)


# -- Prometheus text format -------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _prom_value_escape(value) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double quote and line feed."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _prom_labels(labels: dict, extra: Optional[List[str]] = None) -> str:
    parts = [
        '%s="%s"' % (_LABEL_RE.sub("_", k), _prom_value_escape(v))
        for k, v in sorted(labels.items())
    ]
    parts.extend(extra or ())
    return "{%s}" % ",".join(parts) if parts else ""


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _series_sort_key(series) -> list:
    return sorted((str(k), str(v))
                  for k, v in (series.get("labels") or {}).items())


def to_prometheus(source=None) -> str:
    """Prometheus exposition text (``# HELP`` / ``# TYPE`` + samples).

    Families are emitted sorted by metric name and series sorted by
    their label sets *here*, independent of snapshot ordering — raw
    worker snapshots arrive in registration order, and two scrapes of
    the same values must be byte-identical regardless of which order
    the registering code ran in.
    """
    snap = _coerce(source)
    lines: List[str] = []
    families = sorted(snap.get("metrics", ()),
                      key=lambda m: str(m.get("name", "")))
    for metric in families:
        name = _prom_name(metric["name"])
        if metric.get("help"):
            lines.append("# HELP %s %s" % (name, metric["help"]))
        lines.append("# TYPE %s %s" % (name, metric["kind"]))
        for series in sorted(metric.get("series", ()), key=_series_sort_key):
            labels = series.get("labels", {})
            if metric["kind"] == "histogram":
                buckets, total, count = series["value"]
                bounds = list(metric.get("buckets", ()))
                cumulative = 0
                for bound, n in zip(bounds, buckets):
                    cumulative += n
                    lines.append(
                        "%s_bucket%s %d"
                        % (name, _prom_labels(labels, ['le="%g"' % bound]),
                           cumulative)
                    )
                cumulative += buckets[-1] if len(buckets) > len(bounds) else 0
                lines.append(
                    "%s_bucket%s %d"
                    % (name, _prom_labels(labels, ['le="+Inf"']), cumulative)
                )
                lines.append(
                    "%s_sum%s %s" % (name, _prom_labels(labels),
                                     _format_value(total))
                )
                lines.append(
                    "%s_count%s %d" % (name, _prom_labels(labels), count)
                )
            else:
                lines.append(
                    "%s%s %s"
                    % (name, _prom_labels(labels),
                       _format_value(series["value"]))
                )
    return "\n".join(lines) + ("\n" if lines else "")


#: canonical name for the scrape-facing exporter (the HTTP endpoint and
#: CLI call this); kept alongside ``to_prometheus`` for symmetry with
#: ``to_json``
render_prometheus = to_prometheus


# -- human views ------------------------------------------------------------


def render_metrics(source=None) -> str:
    """Aligned human-readable listing, semantic metrics marked with ``*``."""
    snap = _coerce(source)
    rows: List[tuple] = []
    for metric in snap.get("metrics", ()):
        marker = "*" if metric.get("semantic") else " "
        for series in metric.get("series", ()):
            labels = series.get("labels", {})
            label_text = ",".join(
                "%s=%s" % (k, v) for k, v in sorted(labels.items())
            )
            value = series["value"]
            if metric["kind"] == "histogram":
                value = "count=%d sum=%s" % (
                    value[2], _format_value(value[1])
                )
            elif isinstance(value, float):
                value = "%.6g" % value
            rows.append(
                ("%s%s" % (marker, metric["name"]), metric["kind"],
                 label_text, str(value))
            )
    if not rows:
        return "(no metrics recorded — is instrumentation enabled?)"
    widths = [max(len(r[i]) for r in rows) for i in range(3)]
    lines = [
        "%-*s  %-*s  %-*s  %s"
        % (widths[0], r[0], widths[1], r[1], widths[2], r[2], r[3])
        for r in rows
    ]
    lines.append("")
    lines.append("* = semantic (deterministic across serial/parallel/cached runs)")
    return "\n".join(lines)


def render_trace(source=None) -> str:
    """The span tree as an indented listing with wall-clock durations."""
    snap = _coerce(source)
    lines: List[str] = []

    def _render(node: dict, depth: int) -> None:
        label_text = ",".join(
            "%s=%s" % (k, v) for k, v in sorted(node.get("labels", {}).items())
        )
        title = node.get("name", "?")
        if label_text:
            title += " (%s)" % label_text
        lines.append(
            "%-60s %9.3f ms"
            % ("  " * depth + title, node.get("duration", 0.0) * 1e3)
        )
        for child in node.get("children", ()):
            _render(child, depth + 1)

    for root in snap.get("spans", ()):
        _render(root, 0)
    if not lines:
        return "(no spans recorded — is instrumentation enabled?)"
    return "\n".join(lines)


__all__ = [
    "render_metrics",
    "render_prometheus",
    "render_trace",
    "semantic_json",
    "to_json",
    "to_prometheus",
]
