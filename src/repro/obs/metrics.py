"""Metric primitives and the registry they live in.

Three metric kinds, all labelled:

* :class:`Counter` — monotonically accumulating totals (events, cycles,
  instructions).  Merging registries *adds* counter series.
* :class:`Gauge` — point-in-time values (wall seconds, utilisation).
  Merging keeps the incoming value (last writer wins).
* :class:`Histogram` — bucketed distributions with ``sum`` and ``count``.
  Merging adds bucket contents.

Each metric carries a ``semantic`` flag separating two determinism
classes.  *Semantic* series are derived from pipeline result records and
must be identical whether a run was serial, sharded over a process pool,
or served from the artifact cache — :meth:`MetricsRegistry.semantic_series`
exposes exactly that comparable subset.  *Operational* series (wall
times, artifact-cache hits, worker ids) describe how the run happened and
may legitimately differ between runs.

Registries cross process boundaries as plain-dict :meth:`snapshots
<MetricsRegistry.snapshot>`: a worker serialises its registry, ships it
back through the process pool, and the parent folds it in with
:meth:`MetricsRegistry.merge_snapshot`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .ledger import AttributionLedger
from .spans import SpanNode

#: canonical form of a label set: sorted (key, value-as-str) pairs
LabelKey = Tuple[Tuple[str, str], ...]

#: histogram bucket upper bounds used when none are supplied (seconds-ish
#: scale, but dimensionless: callers pick their own unit)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable, order-independent form of a label mapping."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricTypeError(TypeError):
    """A metric name was re-registered with a different kind."""


class Metric:
    """Base: a named family of labelled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", semantic: bool = False):
        self.name = name
        self.help = help
        self.semantic = semantic
        self.values: Dict[LabelKey, object] = {}

    # -- introspection -----------------------------------------------------

    def series(self) -> List[Tuple[LabelKey, object]]:
        """(labels, value) pairs in deterministic (sorted-label) order."""
        return sorted(self.values.items())

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return "<%s %s: %d series>" % (
            type(self).__name__, self.name, len(self.values)
        )

    # -- snapshot / merge ---------------------------------------------------

    def _snapshot_value(self, value) -> object:
        return value

    def _merge_value(self, key: LabelKey, value) -> None:
        raise NotImplementedError


class Counter(Metric):
    """Accumulating total; merge adds."""

    kind = "counter"

    def inc(self, value: float = 1, **labels) -> None:
        key = label_key(labels)
        self.values[key] = self.values.get(key, 0) + value

    def value(self, **labels) -> float:
        return self.values.get(label_key(labels), 0)

    def _merge_value(self, key: LabelKey, value) -> None:
        self.values[key] = self.values.get(key, 0) + value


class Gauge(Metric):
    """Point-in-time value; merge keeps the incoming (latest) value."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self.values[label_key(labels)] = value

    def value(self, **labels) -> Optional[float]:
        return self.values.get(label_key(labels))

    def _merge_value(self, key: LabelKey, value) -> None:
        self.values[key] = value


class Histogram(Metric):
    """Bucketed distribution; merge adds buckets, sums and counts.

    Stored per label set as ``[bucket_counts, sum, count]`` where
    ``bucket_counts[i]`` counts observations ``<= buckets[i]`` exclusive of
    earlier buckets, plus one trailing overflow cell.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        semantic: bool = False,
        buckets: Optional[Iterable[float]] = None,
    ):
        super().__init__(name, help=help, semantic=semantic)
        self.buckets: Tuple[float, ...] = tuple(
            sorted(buckets if buckets is not None else DEFAULT_BUCKETS)
        )

    def observe(self, value: float, **labels) -> None:
        key = label_key(labels)
        state = self.values.get(key)
        if state is None:
            state = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self.values[key] = state
        idx = len(self.buckets)  # overflow cell
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        state[0][idx] += 1
        state[1] += value
        state[2] += 1

    def stats(self, **labels) -> Optional[Dict[str, object]]:
        state = self.values.get(label_key(labels))
        if state is None:
            return None
        return {"buckets": list(state[0]), "sum": state[1], "count": state[2]}

    def _snapshot_value(self, value) -> object:
        return [list(value[0]), value[1], value[2]]

    def _merge_value(self, key: LabelKey, value) -> None:
        state = self.values.get(key)
        if state is None:
            self.values[key] = [list(value[0]), value[1], value[2]]
            return
        for i, n in enumerate(value[0]):
            state[0][i] += n
        state[1] += value[1]
        state[2] += value[2]


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """Holds every metric family plus completed span trees.

    One global instance backs the :mod:`repro.obs` module-level helpers;
    worker processes run against scoped private instances and ship
    snapshots back to the parent.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}
        #: completed root spans, in completion order
        self.span_roots: List[SpanNode] = []
        #: currently-open span stack (innermost last)
        self.span_stack: List[SpanNode] = []
        #: simulated-time attribution (semantic: merges like counters)
        self.ledger = AttributionLedger()

    # -- metric access -----------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, semantic: bool, **kw):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help=help, semantic=semantic, **kw)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise MetricTypeError(
                "metric %r already registered as %s, requested %s"
                % (name, metric.kind, cls.kind)
            )
        return metric

    def counter(self, name: str, help: str = "", semantic: bool = False) -> Counter:
        return self._get_or_create(Counter, name, help, semantic)

    def gauge(self, name: str, help: str = "", semantic: bool = False) -> Gauge:
        return self._get_or_create(Gauge, name, help, semantic)

    def histogram(
        self,
        name: str,
        help: str = "",
        semantic: bool = False,
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, semantic, buckets=buckets
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        """All metric families, sorted by name."""
        return [self._metrics[n] for n in sorted(self._metrics)]

    def clear(self) -> None:
        self._metrics.clear()
        self.span_roots = []
        self.span_stack = []
        self.ledger.clear()

    # -- spans -------------------------------------------------------------

    def open_span(self, name: str, labels: Dict[str, object]) -> SpanNode:
        node = SpanNode(name=name, labels={k: str(v) for k, v in labels.items()})
        self.span_stack.append(node)
        return node

    def close_span(self, node: SpanNode) -> None:
        # pop through to the node, healing the stack even if a span leaked
        while self.span_stack:
            top = self.span_stack.pop()
            if top is node:
                break
        if self.span_stack:
            self.span_stack[-1].children.append(node)
        else:
            self.span_roots.append(node)

    def adopt_spans(self, spans: List[SpanNode]) -> None:
        """Attach foreign (e.g. worker) root spans under the innermost open
        span, or as roots when nothing is open."""
        if self.span_stack:
            self.span_stack[-1].children.extend(spans)
        else:
            self.span_roots.extend(spans)

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict, picklable/JSON-able image of the registry."""
        metrics = []
        for metric in self.metrics():
            entry = {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "semantic": metric.semantic,
                "series": [
                    {
                        "labels": dict(key),
                        "value": metric._snapshot_value(value),
                    }
                    for key, value in metric.series()
                ],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            metrics.append(entry)
        return {
            "metrics": metrics,
            "spans": [node.to_dict() for node in self.span_roots],
            "ledger": self.ledger.snapshot(),
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot in: counters/histograms add, gauges overwrite,
        span trees attach under the innermost open span."""
        for entry in snapshot.get("metrics", ()):
            cls = _KINDS.get(entry.get("kind"))
            if cls is None:
                continue
            kw = {}
            if cls is Histogram and entry.get("buckets"):
                kw["buckets"] = entry["buckets"]
            metric = self._get_or_create(
                cls,
                entry["name"],
                entry.get("help", ""),
                bool(entry.get("semantic")),
                **kw,
            )
            for series in entry.get("series", ()):
                metric._merge_value(
                    label_key(series.get("labels", {})), series["value"]
                )
        spans = [
            SpanNode.from_dict(d) for d in snapshot.get("spans", ())
        ]
        if spans:
            self.adopt_spans(spans)
        self.ledger.merge_snapshot(snapshot.get("ledger"))

    # -- determinism contract ----------------------------------------------

    def semantic_series(self) -> List[Tuple[str, LabelKey, object]]:
        """Every series of every semantic metric, fully sorted.

        This is the comparable subset: serial, parallel and cached runs of
        the same suite must produce identical lists.
        """
        out: List[Tuple[str, LabelKey, object]] = []
        for metric in self.metrics():
            if not metric.semantic:
                continue
            for key, value in metric.series():
                out.append((metric.name, key, metric._snapshot_value(value)))
        return out

    def __repr__(self) -> str:
        return "<MetricsRegistry: %d metrics, %d spans>" % (
            len(self._metrics), len(self.span_roots)
        )


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LabelKey",
    "Metric",
    "MetricTypeError",
    "MetricsRegistry",
    "label_key",
]
