"""NeedlePipeline: the end-to-end flow of Figure 1.

Step 1 — *what to specialise*: profile the workload, rank Ball–Larus paths
by Pwt, and merge same-entry/exit paths into Braids.

Step 2 — *software frames*: lower the chosen region (top path or top Braid)
into a guarded, fully speculative frame.

Step 3 — *accelerator design analysis*: map the frame onto the Table V CGRA,
simulate whole-workload offload under Oracle and history invocation
prediction, and price energy — producing exactly the per-workload numbers
behind Figs. 9 and 10, plus the HLS feasibility estimate of §VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .accel.cgra import CGRAScheduler, ScheduleResult
from .accel.hls import HLSEstimator, HLSReport
from .frames.frame import Frame, build_frame
from .profiling.ranking import RankedPath, rank_paths
from .regions.braid import Braid, build_braids
from .regions.path_region import path_to_region
from .sim.config import DEFAULT_CONFIG, SystemConfig
from .sim.offload import OffloadOutcome, OffloadSimulator
from .workloads.base import ProfiledWorkload, Workload, profile_workload


@dataclass
class WorkloadAnalysis:
    """Step 1 + 2 products for one workload."""

    profiled: ProfiledWorkload
    ranked: List[RankedPath]
    braids: List[Braid]
    path_frame: Optional[Frame]
    braid_frame: Optional[Frame]

    @property
    def name(self) -> str:
        return self.profiled.workload.name

    @property
    def top_path(self) -> Optional[RankedPath]:
        return self.ranked[0] if self.ranked else None

    @property
    def top_braid(self) -> Optional[Braid]:
        return self.braids[0] if self.braids else None


@dataclass
class WorkloadEvaluation:
    """Step 3 products: the Fig. 9 / Fig. 10 data points."""

    analysis: WorkloadAnalysis
    path_oracle: Optional[OffloadOutcome]
    path_history: Optional[OffloadOutcome]
    braid: Optional[OffloadOutcome]
    hls: Optional[HLSReport]
    braid_schedule: Optional[ScheduleResult]

    @property
    def name(self) -> str:
        return self.analysis.name


class NeedlePipeline:
    """Caches analyses/evaluations so every benchmark shares one pass."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or DEFAULT_CONFIG
        self.simulator = OffloadSimulator(self.config)
        self._analyses: Dict[str, WorkloadAnalysis] = {}
        self._evaluations: Dict[str, WorkloadEvaluation] = {}

    # -- step 1 + 2 -------------------------------------------------------------

    def analyse(self, workload: Workload) -> WorkloadAnalysis:
        cached = self._analyses.get(workload.name)
        if cached is not None:
            return cached
        profiled = profile_workload(workload)
        ranked = rank_paths(profiled.paths)
        # offload braids merge hot same-entry/exit paths only (cold siblings
        # would waste fabric area and energy under predication)
        braids = build_braids(profiled.function, ranked, min_weight_ratio=0.02)

        path_frame = None
        if ranked:
            path_frame = build_frame(path_to_region(profiled.function, ranked[0]))
        braid_frame = None
        if braids:
            braid_frame = build_frame(braids[0].region)

        analysis = WorkloadAnalysis(
            profiled=profiled,
            ranked=ranked,
            braids=braids,
            path_frame=path_frame,
            braid_frame=braid_frame,
        )
        self._analyses[workload.name] = analysis
        return analysis

    # -- step 3 ---------------------------------------------------------------------

    def evaluate(self, workload: Workload) -> WorkloadEvaluation:
        cached = self._evaluations.get(workload.name)
        if cached is not None:
            return cached
        analysis = self.analyse(workload)
        profiled = analysis.profiled

        path_oracle = path_history = braid_outcome = None
        if analysis.path_frame is not None:
            path_oracle = self.simulator.simulate_offload(
                workload.name,
                profiled.paths,
                analysis.path_frame,
                "oracle",
                profiled.trace,
            )
            path_history = self.simulator.simulate_offload(
                workload.name,
                profiled.paths,
                analysis.path_frame,
                "history",
                profiled.trace,
            )
        if analysis.braid_frame is not None:
            braid_outcome = self.simulator.simulate_offload(
                workload.name,
                profiled.paths,
                analysis.braid_frame,
                "oracle",
                profiled.trace,
                coverage=analysis.top_braid.coverage,
            )

        hls = None
        braid_sched = None
        if analysis.braid_frame is not None:
            hls = HLSEstimator().estimate(analysis.braid_frame)
            braid_sched = CGRAScheduler(self.config.cgra).schedule(
                analysis.braid_frame
            )

        evaluation = WorkloadEvaluation(
            analysis=analysis,
            path_oracle=path_oracle,
            path_history=path_history,
            braid=braid_outcome,
            hls=hls,
            braid_schedule=braid_sched,
        )
        self._evaluations[workload.name] = evaluation
        return evaluation

    # -- suite sweeps -----------------------------------------------------------------

    def analyse_all(self, workloads) -> List[WorkloadAnalysis]:
        return [self.analyse(w) for w in workloads]

    def evaluate_all(self, workloads) -> List[WorkloadEvaluation]:
        return [self.evaluate(w) for w in workloads]
