"""NeedlePipeline: the end-to-end flow of Figure 1.

Step 1 — *what to specialise*: profile the workload, rank Ball–Larus paths
by Pwt, and merge same-entry/exit paths into Braids.

Step 2 — *software frames*: lower the chosen region (top path or top Braid)
into a guarded, fully speculative frame.

Step 3 — *accelerator design analysis*: map the frame onto the Table V CGRA,
simulate whole-workload offload under Oracle and history invocation
prediction, and price energy — producing exactly the per-workload numbers
behind Figs. 9 and 10, plus the HLS feasibility estimate of §VI.

Suite sweeps scale two ways:

* ``PipelineOptions(jobs=N, pool=...)`` shards the suite across a
  :mod:`repro.exec` worker pool — warm forked processes by default,
  threads or inline-serial by choice (``--pool`` / ``$REPRO_POOL``);
  results come back in deterministic suite order regardless of which
  worker finished first, and are bitwise-identical across backends.
  Evaluation records are flat, picklable summaries, and workers ship
  *delta* memo snapshots, so per-task transport stays compact.
* an optional :class:`~repro.artifacts.ArtifactCache` persists profiles
  and evaluation summaries on disk keyed by (IR text, run args, config,
  format version), so a second CLI/bench/test run skips re-profiling
  entirely.

Suite sweeps are *fail-safe*: instead of a bare fan-out that dies with
its first worker, every path (the serial one included) runs through
:mod:`repro.resilience` — per-workload timeouts, bounded retries with
seeded backoff, precise dead-worker blame with single-worker respawn,
and quarantine.  A sweep always returns one entry per workload: the
evaluation, or a structured
:class:`~repro.resilience.WorkloadFailure` record.  ``fail_fast=True``
restores propagate-first-error semantics, now with the workload name
attached (:class:`~repro.resilience.WorkloadExecutionError`).
"""

from __future__ import annotations

import contextlib
import logging
import os
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

from . import obs
from .accel.cgra import CGRAScheduler, ScheduleResult
from .accel.hls import HLSEstimator, HLSReport
from .artifacts import (
    EVALUATION_KIND,
    ArtifactCache,
    config_fingerprint,
    workload_key,
)
from .exec import worker as _exec_worker
from .exec.pools import SerialPool
from .frames.frame import Frame, build_frame
from .obs.instruments import publish_workload_evaluation
from .options import PipelineOptions, validate_jobs, validate_pool
from .profiling.ranking import RankedPath, rank_paths
from .resilience import faults as _faults
from .resilience.faults import (
    SITE_WORKER_CRASH,
    SITE_WORKER_EXCEPTION,
    SITE_WORKER_HANG,
    FaultInjected,
    FaultPlan,
)
from .resilience.journal import (
    JournalError,
    RunJournal,
    resolve_journal_dir,
    sweep_fingerprint,
)
from .resilience.runner import (
    WorkloadExecutionError,
    WorkloadFailure,
    run_failsafe,
)
from .resilience.shutdown import (
    DrainController,
    SweepDrained,
    drain_on_signals,
)
from .regions.braid import Braid, build_braids
from .regions.path_region import path_to_region
from .sim.array_kernels import backend_name
from .sim.config import DEFAULT_CONFIG, SystemConfig
from .sim.memo import SimulationMemo
from .sim.offload import OffloadOutcome, OffloadSimulator
from .sim.trace_kernels import KERNEL_MODE_LABELS, KERNELS_ARRAY
from .workloads.base import ProfiledWorkload, Workload, profile_workload

log = logging.getLogger(__name__)

#: distinguishes "caller passed jobs explicitly" (deprecated) from the
#: default of deferring to ``PipelineOptions``
_UNSET = object()


@dataclass
class WorkloadAnalysis:
    """Step 1 + 2 products for one workload."""

    profiled: ProfiledWorkload
    ranked: List[RankedPath]
    braids: List[Braid]
    path_frame: Optional[Frame]
    braid_frame: Optional[Frame]

    @property
    def name(self) -> str:
        return self.profiled.workload.name

    @property
    def top_path(self) -> Optional[RankedPath]:
        return self.ranked[0] if self.ranked else None

    @property
    def top_braid(self) -> Optional[Braid]:
        return self.braids[0] if self.braids else None


@dataclass
class FrameSummary:
    """Flat record of a frame's shape (no IR references)."""

    op_count: int
    compute_op_count: int
    guard_count: int
    psi_count: int
    live_in_count: int
    live_out_count: int
    store_count: int

    @classmethod
    def from_frame(cls, frame: Frame) -> "FrameSummary":
        return cls(
            op_count=frame.op_count,
            compute_op_count=frame.compute_op_count,
            guard_count=frame.guard_count,
            psi_count=len(frame.psis),
            live_in_count=len(frame.live_ins),
            live_out_count=len(frame.live_outs),
            store_count=frame.store_count,
        )


@dataclass
class ScheduleSummary:
    """Flat record of a CGRA schedule (no ScheduledOp/IR references)."""

    cycles: int
    n_configs: int
    initiation_interval: int
    resource_ii: int
    recurrence_ii: int
    total_ops: int
    int_ops: int
    fp_ops: int
    mem_ops: int
    guard_ops: int
    edges: int
    fu_utilization: float
    ilp: float

    @classmethod
    def from_schedule(cls, sched: ScheduleResult) -> "ScheduleSummary":
        return cls(
            cycles=sched.cycles,
            n_configs=sched.n_configs,
            initiation_interval=sched.initiation_interval,
            resource_ii=sched.resource_ii,
            recurrence_ii=sched.recurrence_ii,
            total_ops=sched.total_ops,
            int_ops=sched.int_ops,
            fp_ops=sched.fp_ops,
            mem_ops=sched.mem_ops,
            guard_ops=sched.guard_ops,
            edges=sched.edges,
            fu_utilization=sched.fu_utilization,
            ilp=sched.ilp,
        )


@dataclass
class AnalysisSummary:
    """Flat, picklable record of the step-1/2 analysis of one workload."""

    name: str
    suite: str
    flavor: str
    executed_paths: int
    total_executions: int
    top_path_coverage: float
    top_path_ops: int
    braid_n_paths: int
    braid_coverage: float
    path_frame: Optional[FrameSummary]
    braid_frame: Optional[FrameSummary]
    #: dynamic instructions / memory events of the profiling run, carried
    #: on the record so cache-served evaluations report the same semantic
    #: counters as cold runs (the obs determinism contract)
    dynamic_instructions: int = 0
    memory_events: int = 0

    @classmethod
    def from_analysis(cls, analysis: WorkloadAnalysis) -> "AnalysisSummary":
        w = analysis.profiled.workload
        top = analysis.top_path
        braid = analysis.top_braid
        return cls(
            name=w.name,
            suite=w.suite,
            flavor=w.flavor,
            executed_paths=analysis.profiled.paths.executed_paths,
            total_executions=analysis.profiled.paths.total_executions,
            dynamic_instructions=analysis.profiled.trace.dynamic_instructions,
            memory_events=len(analysis.profiled.trace.memory),
            top_path_coverage=top.coverage if top else 0.0,
            top_path_ops=top.ops if top else 0,
            braid_n_paths=braid.n_paths if braid else 0,
            braid_coverage=braid.coverage if braid else 0.0,
            path_frame=(
                FrameSummary.from_frame(analysis.path_frame)
                if analysis.path_frame is not None
                else None
            ),
            braid_frame=(
                FrameSummary.from_frame(analysis.braid_frame)
                if analysis.braid_frame is not None
                else None
            ),
        )


@dataclass
class WorkloadEvaluation:
    """Step 3 products: the Fig. 9 / Fig. 10 data points.

    Every field is a flat summary dataclass, so evaluations pickle cheaply
    — that is what lets ``evaluate_all(jobs=N)`` ship them between worker
    processes and the artifact cache persist them verbatim.
    """

    summary: AnalysisSummary
    path_oracle: Optional[OffloadOutcome]
    path_history: Optional[OffloadOutcome]
    braid: Optional[OffloadOutcome]
    hls: Optional[HLSReport]
    braid_schedule: Optional[ScheduleSummary]

    @property
    def name(self) -> str:
        return self.summary.name

    @property
    def flavor(self) -> str:
        return self.summary.flavor


class NeedlePipeline:
    """Caches analyses/evaluations so every benchmark shares one pass.

    ``cache`` layers a persistent on-disk artifact store under the
    in-memory dictionaries: pass an :class:`ArtifactCache`, a directory
    path, or ``None`` (in-memory only, the default).
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        cache: "Optional[ArtifactCache | str]" = None,
        options: Optional[PipelineOptions] = None,
    ):
        if options is not None:
            config = config or options.config
            if cache is None and not options.no_cache:
                cache = options.build_cache()
        self.options = options or PipelineOptions(config=config)
        self.config = config or DEFAULT_CONFIG
        if isinstance(cache, str):
            cache = ArtifactCache(cache)
        self.cache = cache
        # one simulation memo per pipeline: the three strategies of each
        # evaluation share calibration/path-cost/schedule sub-simulations,
        # and (with an artifact cache) the tables persist across runs
        self.sim_memo: Optional[SimulationMemo] = (
            None if self.options.no_sim_memo
            else SimulationMemo(cache=self.cache)
        )
        self.simulator = OffloadSimulator(
            self.config,
            memo=False if self.sim_memo is None else self.sim_memo,
            trace_kernels=self.options.trace_kernels,
        )
        self._analyses: Dict[str, WorkloadAnalysis] = {}
        self._evaluations: Dict[str, WorkloadEvaluation] = {}

    # -- step 1 + 2 -------------------------------------------------------------

    def analyse(self, workload: Workload) -> WorkloadAnalysis:
        cached = self._analyses.get(workload.name)
        if cached is not None:
            return cached
        with obs.span("analyse", workload=workload.name):
            profiled = profile_workload(workload, artifact_cache=self.cache)
            ranked = rank_paths(profiled.paths)
            # offload braids merge hot same-entry/exit paths only (cold
            # siblings would waste fabric area and energy under predication)
            braids = build_braids(
                profiled.function, ranked, min_weight_ratio=0.02
            )

            path_frame = None
            if ranked:
                path_frame = build_frame(
                    path_to_region(profiled.function, ranked[0])
                )
            braid_frame = None
            if braids:
                braid_frame = build_frame(braids[0].region)

        analysis = WorkloadAnalysis(
            profiled=profiled,
            ranked=ranked,
            braids=braids,
            path_frame=path_frame,
            braid_frame=braid_frame,
        )
        self._analyses[workload.name] = analysis
        return analysis

    # -- step 3 ---------------------------------------------------------------------

    def evaluate(self, workload: Workload) -> WorkloadEvaluation:
        cached = self._evaluations.get(workload.name)
        if cached is not None:
            return cached
        t0 = time.perf_counter()
        with obs.span("evaluate", workload=workload.name):
            evaluation = None
            source = "computed"
            key = None
            if self.cache is not None:
                key, _built = workload_key(workload, self.config)
                stored = self.cache.get(EVALUATION_KIND, key)
                if isinstance(stored, WorkloadEvaluation):
                    evaluation = stored
                    source = "artifact-cache"
            if evaluation is None:
                evaluation = self._evaluate_uncached(workload)
                if self.cache is not None and key is not None:
                    self.cache.put(EVALUATION_KIND, key, evaluation)
        if obs.enabled():
            obs.counter("pipeline.cache_outcome", 1,
                        help="where each evaluation record came from",
                        workload=workload.name, outcome=source)
            obs.gauge("pipeline.evaluate_seconds",
                      time.perf_counter() - t0,
                      help="wall time to produce one evaluation",
                      workload=workload.name)
            # recorded here as well as in the simulator so cache-served
            # evaluations still state which kernel tier is configured
            obs.gauge("sim.kernel_mode", 1.0,
                      help="which trace-kernel tier and backend produced "
                           "this simulation (value is always 1; the "
                           "labels carry the information)",
                      workload=workload.name,
                      mode=KERNEL_MODE_LABELS[self.simulator.trace_kernels],
                      backend=(
                          backend_name()
                          if self.simulator.trace_kernels == KERNELS_ARRAY
                          else "python"
                      ))
            publish_workload_evaluation(evaluation)
        self._evaluations[workload.name] = evaluation
        return evaluation

    def _evaluate_uncached(self, workload: Workload) -> WorkloadEvaluation:
        analysis = self.analyse(workload)
        profiled = analysis.profiled

        # the profile's content key upgrades the simulation memo to
        # persistent, cross-process entries (None = identity keys only)
        akey = profiled.artifact_key

        path_oracle = path_history = braid_outcome = None
        if analysis.path_frame is not None:
            path_oracle = self.simulator.simulate_offload(
                workload.name,
                profiled.paths,
                analysis.path_frame,
                "oracle",
                profiled.trace,
                artifact_key=akey,
            )
            path_history = self.simulator.simulate_offload(
                workload.name,
                profiled.paths,
                analysis.path_frame,
                "history",
                profiled.trace,
                artifact_key=akey,
            )
        if analysis.braid_frame is not None:
            braid_outcome = self.simulator.simulate_offload(
                workload.name,
                profiled.paths,
                analysis.braid_frame,
                "oracle",
                profiled.trace,
                coverage=analysis.top_braid.coverage,
                artifact_key=akey,
            )

        hls = None
        braid_sched = None
        if analysis.braid_frame is not None:
            hls = HLSEstimator().estimate(analysis.braid_frame)
            braid_sched = ScheduleSummary.from_schedule(
                CGRAScheduler(self.config.cgra).schedule(analysis.braid_frame)
            )

        return WorkloadEvaluation(
            summary=AnalysisSummary.from_analysis(analysis),
            path_oracle=path_oracle,
            path_history=path_history,
            braid=braid_outcome,
            hls=hls,
            braid_schedule=braid_sched,
        )

    # -- simulated timelines ----------------------------------------------------------

    def timeline(self, workload: Workload) -> Dict[str, List]:
        """Simulated-cycle timelines, one track per offload strategy.

        Returns ``{strategy: [TimelineEvent, ...]}`` for the same three
        strategies :meth:`evaluate` prices, replayed through the offload
        simulator's segment charges — ready for
        :func:`repro.obs.timeline.chrome_trace` under track names like
        ``"<workload>/braid"``.
        """
        analysis = self.analyse(workload)
        profiled = analysis.profiled
        akey = profiled.artifact_key
        tracks: Dict[str, List] = {}
        with obs.span("timeline", workload=workload.name):
            if analysis.path_frame is not None:
                for kind in ("oracle", "history"):
                    tracks["bl-path-%s" % kind] = (
                        self.simulator.invocation_timeline(
                            workload.name, profiled.paths,
                            analysis.path_frame, kind,
                            profiled.trace, artifact_key=akey,
                        )
                    )
            if analysis.braid_frame is not None:
                tracks["braid"] = self.simulator.invocation_timeline(
                    workload.name, profiled.paths, analysis.braid_frame,
                    "oracle", profiled.trace, artifact_key=akey,
                )
        return tracks

    # -- suite sweeps -----------------------------------------------------------------

    def analyse_all(self, workloads, jobs=_UNSET) -> List[WorkloadAnalysis]:
        """Analyse a suite; :class:`~repro.options.PipelineOptions`
        decides the pool backend and width (see :meth:`evaluate_all`)."""
        return self._sweep(
            "analyse", _analyse_worker, self._analyses, workloads, jobs
        )

    def evaluate_all(self, workloads, jobs=_UNSET) -> List[WorkloadEvaluation]:
        """Evaluate a suite, sharded over the configured worker pool.

        ``PipelineOptions(jobs=N, pool=...)`` drives execution: ``pool``
        names a :mod:`repro.exec` backend (``serial`` | ``process`` |
        ``thread``; default ``auto`` = warm worker processes when
        ``jobs > 1``), overridable per-environment via ``$REPRO_POOL``.
        Rows come back in suite order and are bitwise-identical on every
        backend: workers run the same deterministic pipeline, and the
        pool only changes *where* a workload is computed.  Invalid
        ``jobs`` values (< 1) warn and fall back to serial.

        Passing ``jobs=`` here directly is deprecated — configure the
        pipeline's options instead.

        A workload that keeps failing (exception, timeout, worker crash)
        is retried per :class:`~repro.options.PipelineOptions` and then
        quarantined: its slot in the returned list holds a
        :class:`~repro.resilience.WorkloadFailure` instead of crashing
        the sweep.  With ``fail_fast`` the first failure raises
        :class:`~repro.resilience.WorkloadExecutionError`.
        """
        return self._sweep(
            "evaluate", _evaluate_worker, self._evaluations, workloads, jobs
        )

    # -- fan-out helpers ----------------------------------------------------

    def _resolve_jobs(self, jobs, method: str) -> Optional[int]:
        if jobs is _UNSET:
            return self.options.normalized_jobs()
        warnings.warn(
            "%s_all(jobs=N) is deprecated; configure the sweep with "
            "PipelineOptions(jobs=..., pool=...) instead" % method,
            DeprecationWarning,
            stacklevel=4,
        )
        return validate_jobs(jobs)

    def _execution_plan(self, jobs: Optional[int], n_todo: int):
        """Resolve ``(backend name, pool width)`` for a sweep with
        ``n_todo`` not-yet-memoised workloads.

        ``jobs`` decides *whether* to pool — ``None``/``1`` (and a sweep
        with at most one workload to run) stay inline-serial, keeping
        the documented contract whatever the backend.  ``pool`` decides
        *where* pooled sweeps run: ``auto`` means warm worker processes,
        and a forced ``serial`` routes even ``jobs=N`` sweeps through
        the in-line backend (how the CI matrix proves backend
        equivalence).
        """
        backend = validate_pool(self.options.pool)
        if jobs is None or jobs <= 1 or n_todo <= 1:
            return "serial", 1
        if backend == "auto":
            backend = "process"
        if backend == "serial":
            return "serial", 1
        return backend, min(jobs, n_todo)

    def _sweep(self, method, worker_fn, memo: Dict, workloads, jobs) -> List:
        workloads = list(workloads)
        jobs = self._resolve_jobs(jobs, method)
        # journaling (and therefore resume) applies to evaluation sweeps:
        # those are the long batch jobs whose partial results are worth
        # keeping; analyse memos are a cheap byproduct of evaluation
        journal = self._open_journal(workloads, memo) \
            if method == "evaluate" else None
        # memoised results never re-run, so they cannot re-fail; on a
        # resumed run this is exactly what skips completed workloads
        todo = [w for w in workloads if w.name not in memo]
        backend, width = self._execution_plan(jobs, len(todo))
        drain = None
        signal_scope = contextlib.nullcontext()
        if journal is not None:
            journal.scheduled([w.name for w in todo])
            drain = DrainController(timeout=self.options.drain_timeout)
            signal_scope = drain_on_signals(drain)
        # live telemetry rides alongside the sweep: a bus + aggregator
        # (+ optional HTTP endpoint / terminal view) that observe
        # scheduling without touching it — semantic output is
        # byte-identical with the session on or off
        telemetry = contextlib.nullcontext()
        if self.options.wants_telemetry:
            from .obs.live import TelemetrySession

            telemetry = TelemetrySession.from_options(
                self.options,
                run_id=journal.run_id if journal is not None
                else (self.options.run_id or ""))
        try:
            with telemetry as session:
                if session is not None:
                    session.bus.publish(
                        obs.events.RUN_STARTED, key=session.run_id,
                        run_id=session.run_id, stage=method,
                        total=len(workloads), todo=len(todo),
                        backend=backend, jobs=width)
                    # workloads already memoised (journal resume or a
                    # prior in-process sweep) count as completed from
                    # the start — cumulative progress, not this
                    # process's share
                    for w in workloads:
                        if w.name in memo:
                            session.bus.publish(
                                obs.events.RUN_RESUMED, key=w.name)
                with signal_scope:
                    if backend == "serial":
                        fresh = self._run_serial(
                            method, todo, journal=journal, drain=drain)
                    else:
                        with obs.span(
                            method + "_all", jobs=width,
                            workloads=len(workloads)
                        ):
                            fresh = self._fan_out(
                                worker_fn, todo, backend, width,
                                journal=journal, drain=drain)
        except SweepDrained as exc:
            if journal is not None:
                exc.run_id = journal.run_id
                exc.journal_dir = journal.journal_dir
                journal.aborted(reason="drain", outstanding=exc.outstanding)
                journal.close()
            raise
        except BaseException:
            if journal is not None:
                journal.close()
            raise
        by_name = dict(zip((w.name for w in todo), fresh))
        for name, row in by_name.items():
            if not isinstance(row, WorkloadFailure):
                memo[name] = row
        if journal is not None:
            failed = sum(
                1 for row in fresh if isinstance(row, WorkloadFailure))
            journal.finished(completed=len(fresh) - failed, quarantined=failed)
            journal.close()
        return [
            by_name[w.name] if w.name in by_name else memo[w.name]
            for w in workloads
        ]

    # -- journal / resume ---------------------------------------------------

    def _open_journal(self, workloads, memo: Dict) -> Optional[RunJournal]:
        """Create or resume this sweep's run journal, if configured.

        A resumed journal's completed workloads are folded straight into
        ``memo`` (records, obs snapshots or record-derived semantic
        publication, and simulation-memo deltas), so the sweep re-runs
        only what never durably finished — and the merged final state is
        byte-identical to an uninterrupted run.
        """
        opts = self.options
        journal_dir = resolve_journal_dir(opts.journal_dir)
        if journal_dir is None:
            if opts.resume is not None or opts.run_id is not None:
                raise JournalError(
                    "journaling needs a directory: pass "
                    "--journal-dir/PipelineOptions.journal_dir or set "
                    "$REPRO_JOURNAL_DIR")
            return None
        manifest = [w.name for w in workloads]
        fingerprint = sweep_fingerprint(self.config, manifest)
        plan = self._fault_plan()
        if opts.resume is not None:
            journal, replay = RunJournal.resume(
                journal_dir, opts.resume,
                fingerprint=fingerprint, manifest=manifest, plan=plan)
            self._seed_from_replay(journal, replay, memo)
            return journal
        return RunJournal.create(
            journal_dir, opts.run_id,
            fingerprint=fingerprint, manifest=manifest,
            config_fingerprint=config_fingerprint(self.config), plan=plan)

    def _seed_from_replay(self, journal: RunJournal, replay, memo: Dict):
        """Restore completed workloads from a replayed journal."""
        seeded = 0
        for name, key in replay.completed.items():
            row = journal.load_payload(key) if key else None
            if not (isinstance(row, tuple) and len(row) == 3):
                log.warning(
                    "journal payload for completed workload %r is missing "
                    "or unreadable; it will be re-run", name)
                continue
            result, snap, memo_snap = row
            if isinstance(result, WorkloadFailure):
                continue
            memo[name] = result
            if memo_snap is not None and self.sim_memo is not None:
                self.sim_memo.merge(memo_snap)
            if obs.enabled():
                if snap is not None:
                    # pooled runs journal the worker's whole registry
                    # snapshot; merging it reproduces the clean-run state
                    obs.merge(snap)
                else:
                    # serial runs journal the bare record; its semantic
                    # metrics + ledger entries are a pure function of it
                    publish_workload_evaluation(result)
                obs.counter("resilience.resumed_workloads", 1,
                            help="completed workloads restored from the "
                                 "run journal instead of re-executed")
            seeded += 1
        if seeded:
            log.info(
                "resumed run %s: %d completed workload(s) restored from "
                "the journal, %d to run",
                journal.run_id, seeded,
                len(replay.header.get("manifest", ())) - seeded)

    def _fault_plan(self) -> Optional[FaultPlan]:
        return self.options.resolve_fault_plan()

    def _run_serial(self, method: str, workloads, journal=None,
                    drain=None) -> List:
        """Serial sweep through the fail-safe runner on a
        :class:`~repro.exec.SerialPool` — the same retry/quarantine/blame
        contract as every other backend (timeouts excepted: a thread
        cannot interrupt itself).  Tasks call the *bound* pipeline
        methods, so profiles, evaluations and memo tables land directly
        in this pipeline with no snapshot round-trip."""
        if not workloads:
            return []
        plan = self._fault_plan()
        bound = getattr(self, method)

        def call(workload, _plan, attempt):
            if _plan is None:
                return bound(workload)
            with _faults.installed(_plan, attempt=attempt):
                _consult_worker_faults(workload.name)
                return bound(workload)

        on_result = None
        if journal is not None:
            def on_result(workload, result):
                # payload first (atomic + fsynced), then the journal
                # record that references it — write-ahead ordering
                key = journal.store_payload(workload.name,
                                            (result, None, None))
                journal.completed(workload.name, key)

        return run_failsafe(
            call,
            workloads,
            pool=SerialPool(),
            policy=self.options.failure_policy(),
            plan=plan,
            key_fn=lambda w: w.name,
            on_result=on_result,
            on_event=journal.lifecycle if journal is not None else None,
            drain=drain,
            heartbeat=self.options.heartbeat_period,
            stall_after=self.options.stall_after,
        )

    def _fan_out(self, worker, workloads, backend: str, width: int,
                 journal=None, drain=None) -> List:
        """Shard over a fail-safe worker pool; workers return ``(result,
        obs snapshot-or-None, memo delta-or-None)``.  Snapshots are
        folded in as each worker finishes — a later failure can no longer
        drop metrics or memo entries that were already collected — and
        failed workloads come back as :class:`WorkloadFailure` records in
        their suite slot.  With a journal attached, each row is persisted
        and its ``completed`` record fsynced the moment it lands, from
        any backend."""
        cache_root = self.cache.root if self.cache is not None else None
        collect = obs.enabled()

        def _absorb(workload, row):
            _result, snap, memo_snap = row
            if snap is not None:
                obs.merge(snap)
            if memo_snap is not None and self.sim_memo is not None:
                self.sim_memo.merge(memo_snap)
            if journal is not None:
                key = journal.store_payload(workload.name, row)
                journal.completed(workload.name, key)

        rows = run_failsafe(
            worker,
            workloads,
            jobs=width,
            pool=backend,
            policy=self.options.failure_policy(),
            task_args=(self.config, cache_root, collect,
                       self.options.trace_kernels, self.options.no_sim_memo),
            plan=self._fault_plan(),
            key_fn=lambda w: w.name,
            on_result=_absorb,
            on_event=journal.lifecycle if journal is not None else None,
            drain=drain,
            heartbeat=self.options.heartbeat_period,
            stall_after=self.options.stall_after,
        )
        return [
            row if isinstance(row, WorkloadFailure) else row[0] for row in rows
        ]


# -- suite façade -----------------------------------------------------------


def evaluate_suite(
    names=None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    config: Optional[SystemConfig] = None,
    options: Optional[PipelineOptions] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    pool: Optional[str] = None,
) -> List[WorkloadEvaluation]:
    """One-call evaluation of the suite (or a named subset of it).

    The supported public entry point for "give me the Fig. 9/10 numbers":
    resolves workload names, honours the artifact cache and worker-pool
    sharding (``jobs`` wide on the ``pool`` backend — ``serial`` |
    ``process`` | ``thread``, default automatic), and returns evaluations
    in suite order.  Keyword arguments are shorthands for the matching
    :class:`~repro.options.PipelineOptions` fields; pass ``options`` to
    control everything at once.

    The sweep is fail-safe: a workload that keeps failing is retried
    (``retries``, per-attempt ``timeout`` on preemptive pools) and then
    quarantined as a :class:`~repro.resilience.WorkloadFailure` in its
    suite slot, so partial results always come back.  ``fail_fast=True``
    raises on the first failure instead.

    With ``options.journal_dir`` (or ``$REPRO_JOURNAL_DIR``) set the
    sweep writes a crash-safe run journal; ``options.resume`` continues
    a journaled run — when ``names`` is omitted, the journaled suite
    manifest is replayed, so the resumed sweep evaluates exactly what
    the original one scheduled.
    """
    from . import workloads as workload_registry

    opts = options or PipelineOptions(
        config=config, jobs=jobs, cache_dir=cache_dir, pool=pool,
        timeout=timeout,
        retries=retries if retries is not None else PipelineOptions.retries,
        fail_fast=fail_fast, fault_plan=fault_plan,
    )
    pipeline = opts.build_pipeline()
    if names is None and opts.resume is not None:
        journal_dir = resolve_journal_dir(opts.journal_dir)
        if journal_dir is not None:
            names = RunJournal.peek(
                journal_dir, opts.resume).get("manifest")
    if names is None:
        suite = workload_registry.all_workloads()
    else:
        suite = [
            workload_registry.get(n) if isinstance(n, str) else n
            for n in names
        ]
    return pipeline.evaluate_all(suite)


# -- pool workers (module level: must be picklable by reference) ----------------

#: per-worker-thread pipeline cache: a warm pool worker keeps one
#: pipeline alive across tasks (imports done, caches primed) instead of
#: rebuilding it per workload — the bulk of the old ``--jobs`` overhead
_WORKER_TLS = threading.local()


def _worker_pipeline(
    config: SystemConfig,
    cache_root: Optional[str],
    trace_kernels: str = "rle",
    no_sim_memo: bool = False,
) -> NeedlePipeline:
    """The warm per-worker pipeline, rebuilt only when the sweep
    configuration changes.

    Keyed thread-locally, so process workers (one main thread each) and
    thread workers (many per interpreter) both get exactly one pipeline
    per worker.  Reuse is safe because results are content-keyed and
    deterministic; per-task record memos are cleared by the caller so a
    retried task always recomputes.
    """
    key = (
        config_fingerprint(config) if config is not None else None,
        cache_root,
        trace_kernels,
        bool(no_sim_memo),
    )
    if getattr(_WORKER_TLS, "key", None) == key:
        return _WORKER_TLS.pipeline
    cache = ArtifactCache(cache_root) if cache_root is not None else None
    opts = PipelineOptions(
        config=config,
        no_cache=cache is None,
        trace_kernels=trace_kernels,
        no_sim_memo=no_sim_memo,
    )
    pipe = NeedlePipeline(config, cache=cache, options=opts)
    _WORKER_TLS.pipeline = pipe
    _WORKER_TLS.key = key
    return pipe


def _consult_worker_faults(name: str) -> None:
    """The chaos suite's worker-level sites: crash, hang, exception.

    Consulted by every backend's workers — the serial path included — so
    one fault plan produces the same quarantine records everywhere:
    ``worker.crash`` dies the way the current backend dies (``os._exit``
    in a process child, an inline :class:`~repro.exec.WorkerCrashed`
    elsewhere), and ``worker.hang`` only stalls preemptible workers — a
    serial sweep could never evict its own thread.
    """
    if not _faults.enabled():
        return
    spec = _faults.consult(SITE_WORKER_CRASH, name)
    if spec is not None:
        # simulate a segfault/OOM-kill: no cleanup, no exception — the
        # parent finds the corpse and blames this task
        _exec_worker.crash(int(spec.payload.get("exit_code", 13)))
    if _exec_worker.preemptive():
        spec = _faults.consult(SITE_WORKER_HANG, name)
        if spec is not None:
            time.sleep(float(spec.payload.get("seconds", 3600.0)))
    spec = _faults.consult(SITE_WORKER_EXCEPTION, name)
    if spec is not None:
        raise FaultInjected("injected worker exception for %s" % name)


def _run_worker(method, workload, config, cache_root, collect: bool,
                trace_kernels: str = "rle", no_sim_memo: bool = False,
                plan: Optional[FaultPlan] = None, attempt: int = 0):
    """Run one workload in a pool worker, optionally collecting obs data
    into a private registry whose snapshot rides back with the result.
    The worker pipeline's new simulation-memo entries travel back the
    same way (as a delta — the parent already merged earlier shipments),
    so the parent's memo warms up as the sweep progresses.

    The fault plan is installed fresh per (task, attempt) — and any
    injector the worker inherited from a fork or a previous task is
    cleared — so a worker's fault pattern depends only on the task,
    never on pool scheduling.
    """
    _faults.install(plan, attempt=attempt)
    try:
        _consult_worker_faults(workload.name)
        pipe = _worker_pipeline(config, cache_root, trace_kernels, no_sim_memo)
        try:
            if not collect:
                result = getattr(pipe, method)(workload)
                snap = None
            else:
                with obs.scoped() as reg:
                    obs.counter("pipeline.worker_tasks", 1,
                                help="workloads processed per pool worker",
                                worker=str(os.getpid()))
                    result = getattr(pipe, method)(workload)
                    snap = reg.snapshot()
            memo_snap = (
                pipe.sim_memo.drain() if pipe.sim_memo is not None else None
            )
            return result, snap, memo_snap
        finally:
            # record memos are per-task: a retry must recompute (its
            # fault sites consulted afresh), and a warm worker must not
            # serve another task's rows from memory
            pipe._analyses.clear()
            pipe._evaluations.clear()
    finally:
        _faults.uninstall()


def _analyse_worker(
    workload: Workload,
    config: SystemConfig,
    cache_root: Optional[str],
    collect: bool = False,
    trace_kernels: str = "rle",
    no_sim_memo: bool = False,
    plan: Optional[FaultPlan] = None,
    attempt: int = 0,
):
    return _run_worker("analyse", workload, config, cache_root, collect,
                       trace_kernels, no_sim_memo, plan, attempt)


def _evaluate_worker(
    workload: Workload,
    config: SystemConfig,
    cache_root: Optional[str],
    collect: bool = False,
    trace_kernels: str = "rle",
    no_sim_memo: bool = False,
    plan: Optional[FaultPlan] = None,
    attempt: int = 0,
):
    return _run_worker("evaluate", workload, config, cache_root, collect,
                       trace_kernels, no_sim_memo, plan, attempt)


__all__ = [
    "AnalysisSummary",
    "FrameSummary",
    "NeedlePipeline",
    "PipelineOptions",
    "ScheduleSummary",
    "WorkloadAnalysis",
    "WorkloadEvaluation",
    "WorkloadExecutionError",
    "WorkloadFailure",
    "evaluate_suite",
]
