"""NeedlePipeline: the end-to-end flow of Figure 1.

Step 1 — *what to specialise*: profile the workload, rank Ball–Larus paths
by Pwt, and merge same-entry/exit paths into Braids.

Step 2 — *software frames*: lower the chosen region (top path or top Braid)
into a guarded, fully speculative frame.

Step 3 — *accelerator design analysis*: map the frame onto the Table V CGRA,
simulate whole-workload offload under Oracle and history invocation
prediction, and price energy — producing exactly the per-workload numbers
behind Figs. 9 and 10, plus the HLS feasibility estimate of §VI.

Suite sweeps scale two ways:

* ``jobs=N`` shards the suite across a :class:`ProcessPoolExecutor`;
  results come back in deterministic suite order regardless of which
  worker finished first.  Evaluation records are flat, picklable
  summaries, so shipping them between processes is cheap.
* an optional :class:`~repro.artifacts.ArtifactCache` persists profiles
  and evaluation summaries on disk keyed by (IR text, run args, config,
  format version), so a second CLI/bench/test run skips re-profiling
  entirely.

Suite sweeps are *fail-safe*: instead of a bare ``f.result()`` fan-out
that dies with its first worker, both the pool and serial paths run
through :mod:`repro.resilience` — per-workload timeouts, bounded
retries with seeded backoff, ``BrokenProcessPool`` recovery (respawn,
resubmit only what is incomplete) and quarantine.  A sweep always
returns one entry per workload: the evaluation, or a structured
:class:`~repro.resilience.WorkloadFailure` record.  ``fail_fast=True``
restores propagate-first-error semantics, now with the workload name
attached (:class:`~repro.resilience.WorkloadExecutionError`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from . import obs
from .accel.cgra import CGRAScheduler, ScheduleResult
from .accel.hls import HLSEstimator, HLSReport
from .artifacts import EVALUATION_KIND, ArtifactCache, workload_key
from .frames.frame import Frame, build_frame
from .obs.instruments import publish_workload_evaluation
from .options import PipelineOptions, validate_jobs
from .profiling.ranking import RankedPath, rank_paths
from .resilience import faults as _faults
from .resilience.faults import (
    SITE_WORKER_CRASH,
    SITE_WORKER_EXCEPTION,
    SITE_WORKER_HANG,
    FaultInjected,
    FaultPlan,
)
from .resilience.runner import (
    WorkloadExecutionError,
    WorkloadFailure,
    run_failsafe,
)
from .regions.braid import Braid, build_braids
from .regions.path_region import path_to_region
from .sim.array_kernels import backend_name
from .sim.config import DEFAULT_CONFIG, SystemConfig
from .sim.memo import SimulationMemo
from .sim.offload import OffloadOutcome, OffloadSimulator
from .sim.trace_kernels import KERNEL_MODE_LABELS, KERNELS_ARRAY
from .workloads.base import ProfiledWorkload, Workload, profile_workload


@dataclass
class WorkloadAnalysis:
    """Step 1 + 2 products for one workload."""

    profiled: ProfiledWorkload
    ranked: List[RankedPath]
    braids: List[Braid]
    path_frame: Optional[Frame]
    braid_frame: Optional[Frame]

    @property
    def name(self) -> str:
        return self.profiled.workload.name

    @property
    def top_path(self) -> Optional[RankedPath]:
        return self.ranked[0] if self.ranked else None

    @property
    def top_braid(self) -> Optional[Braid]:
        return self.braids[0] if self.braids else None


@dataclass
class FrameSummary:
    """Flat record of a frame's shape (no IR references)."""

    op_count: int
    compute_op_count: int
    guard_count: int
    psi_count: int
    live_in_count: int
    live_out_count: int
    store_count: int

    @classmethod
    def from_frame(cls, frame: Frame) -> "FrameSummary":
        return cls(
            op_count=frame.op_count,
            compute_op_count=frame.compute_op_count,
            guard_count=frame.guard_count,
            psi_count=len(frame.psis),
            live_in_count=len(frame.live_ins),
            live_out_count=len(frame.live_outs),
            store_count=frame.store_count,
        )


@dataclass
class ScheduleSummary:
    """Flat record of a CGRA schedule (no ScheduledOp/IR references)."""

    cycles: int
    n_configs: int
    initiation_interval: int
    resource_ii: int
    recurrence_ii: int
    total_ops: int
    int_ops: int
    fp_ops: int
    mem_ops: int
    guard_ops: int
    edges: int
    fu_utilization: float
    ilp: float

    @classmethod
    def from_schedule(cls, sched: ScheduleResult) -> "ScheduleSummary":
        return cls(
            cycles=sched.cycles,
            n_configs=sched.n_configs,
            initiation_interval=sched.initiation_interval,
            resource_ii=sched.resource_ii,
            recurrence_ii=sched.recurrence_ii,
            total_ops=sched.total_ops,
            int_ops=sched.int_ops,
            fp_ops=sched.fp_ops,
            mem_ops=sched.mem_ops,
            guard_ops=sched.guard_ops,
            edges=sched.edges,
            fu_utilization=sched.fu_utilization,
            ilp=sched.ilp,
        )


@dataclass
class AnalysisSummary:
    """Flat, picklable record of the step-1/2 analysis of one workload."""

    name: str
    suite: str
    flavor: str
    executed_paths: int
    total_executions: int
    top_path_coverage: float
    top_path_ops: int
    braid_n_paths: int
    braid_coverage: float
    path_frame: Optional[FrameSummary]
    braid_frame: Optional[FrameSummary]
    #: dynamic instructions / memory events of the profiling run, carried
    #: on the record so cache-served evaluations report the same semantic
    #: counters as cold runs (the obs determinism contract)
    dynamic_instructions: int = 0
    memory_events: int = 0

    @classmethod
    def from_analysis(cls, analysis: WorkloadAnalysis) -> "AnalysisSummary":
        w = analysis.profiled.workload
        top = analysis.top_path
        braid = analysis.top_braid
        return cls(
            name=w.name,
            suite=w.suite,
            flavor=w.flavor,
            executed_paths=analysis.profiled.paths.executed_paths,
            total_executions=analysis.profiled.paths.total_executions,
            dynamic_instructions=analysis.profiled.trace.dynamic_instructions,
            memory_events=len(analysis.profiled.trace.memory),
            top_path_coverage=top.coverage if top else 0.0,
            top_path_ops=top.ops if top else 0,
            braid_n_paths=braid.n_paths if braid else 0,
            braid_coverage=braid.coverage if braid else 0.0,
            path_frame=(
                FrameSummary.from_frame(analysis.path_frame)
                if analysis.path_frame is not None
                else None
            ),
            braid_frame=(
                FrameSummary.from_frame(analysis.braid_frame)
                if analysis.braid_frame is not None
                else None
            ),
        )


@dataclass
class WorkloadEvaluation:
    """Step 3 products: the Fig. 9 / Fig. 10 data points.

    Every field is a flat summary dataclass, so evaluations pickle cheaply
    — that is what lets ``evaluate_all(jobs=N)`` ship them between worker
    processes and the artifact cache persist them verbatim.
    """

    summary: AnalysisSummary
    path_oracle: Optional[OffloadOutcome]
    path_history: Optional[OffloadOutcome]
    braid: Optional[OffloadOutcome]
    hls: Optional[HLSReport]
    braid_schedule: Optional[ScheduleSummary]

    @property
    def name(self) -> str:
        return self.summary.name

    @property
    def flavor(self) -> str:
        return self.summary.flavor


class NeedlePipeline:
    """Caches analyses/evaluations so every benchmark shares one pass.

    ``cache`` layers a persistent on-disk artifact store under the
    in-memory dictionaries: pass an :class:`ArtifactCache`, a directory
    path, or ``None`` (in-memory only, the default).
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        cache: "Optional[ArtifactCache | str]" = None,
        options: Optional[PipelineOptions] = None,
    ):
        if options is not None:
            config = config or options.config
            if cache is None and not options.no_cache:
                cache = options.build_cache()
        self.options = options or PipelineOptions(config=config)
        self.config = config or DEFAULT_CONFIG
        if isinstance(cache, str):
            cache = ArtifactCache(cache)
        self.cache = cache
        # one simulation memo per pipeline: the three strategies of each
        # evaluation share calibration/path-cost/schedule sub-simulations,
        # and (with an artifact cache) the tables persist across runs
        self.sim_memo: Optional[SimulationMemo] = (
            None if self.options.no_sim_memo
            else SimulationMemo(cache=self.cache)
        )
        self.simulator = OffloadSimulator(
            self.config,
            memo=False if self.sim_memo is None else self.sim_memo,
            trace_kernels=self.options.trace_kernels,
        )
        self._analyses: Dict[str, WorkloadAnalysis] = {}
        self._evaluations: Dict[str, WorkloadEvaluation] = {}

    # -- step 1 + 2 -------------------------------------------------------------

    def analyse(self, workload: Workload) -> WorkloadAnalysis:
        cached = self._analyses.get(workload.name)
        if cached is not None:
            return cached
        with obs.span("analyse", workload=workload.name):
            profiled = profile_workload(workload, artifact_cache=self.cache)
            ranked = rank_paths(profiled.paths)
            # offload braids merge hot same-entry/exit paths only (cold
            # siblings would waste fabric area and energy under predication)
            braids = build_braids(
                profiled.function, ranked, min_weight_ratio=0.02
            )

            path_frame = None
            if ranked:
                path_frame = build_frame(
                    path_to_region(profiled.function, ranked[0])
                )
            braid_frame = None
            if braids:
                braid_frame = build_frame(braids[0].region)

        analysis = WorkloadAnalysis(
            profiled=profiled,
            ranked=ranked,
            braids=braids,
            path_frame=path_frame,
            braid_frame=braid_frame,
        )
        self._analyses[workload.name] = analysis
        return analysis

    # -- step 3 ---------------------------------------------------------------------

    def evaluate(self, workload: Workload) -> WorkloadEvaluation:
        cached = self._evaluations.get(workload.name)
        if cached is not None:
            return cached
        t0 = time.perf_counter()
        with obs.span("evaluate", workload=workload.name):
            evaluation = None
            source = "computed"
            key = None
            if self.cache is not None:
                key, _built = workload_key(workload, self.config)
                stored = self.cache.get(EVALUATION_KIND, key)
                if isinstance(stored, WorkloadEvaluation):
                    evaluation = stored
                    source = "artifact-cache"
            if evaluation is None:
                evaluation = self._evaluate_uncached(workload)
                if self.cache is not None and key is not None:
                    self.cache.put(EVALUATION_KIND, key, evaluation)
        if obs.enabled():
            obs.counter("pipeline.cache_outcome", 1,
                        help="where each evaluation record came from",
                        workload=workload.name, outcome=source)
            obs.gauge("pipeline.evaluate_seconds",
                      time.perf_counter() - t0,
                      help="wall time to produce one evaluation",
                      workload=workload.name)
            # recorded here as well as in the simulator so cache-served
            # evaluations still state which kernel tier is configured
            obs.gauge("sim.kernel_mode", 1.0,
                      help="which trace-kernel tier and backend produced "
                           "this simulation (value is always 1; the "
                           "labels carry the information)",
                      workload=workload.name,
                      mode=KERNEL_MODE_LABELS[self.simulator.trace_kernels],
                      backend=(
                          backend_name()
                          if self.simulator.trace_kernels == KERNELS_ARRAY
                          else "python"
                      ))
            publish_workload_evaluation(evaluation)
        self._evaluations[workload.name] = evaluation
        return evaluation

    def _evaluate_uncached(self, workload: Workload) -> WorkloadEvaluation:
        analysis = self.analyse(workload)
        profiled = analysis.profiled

        # the profile's content key upgrades the simulation memo to
        # persistent, cross-process entries (None = identity keys only)
        akey = profiled.artifact_key

        path_oracle = path_history = braid_outcome = None
        if analysis.path_frame is not None:
            path_oracle = self.simulator.simulate_offload(
                workload.name,
                profiled.paths,
                analysis.path_frame,
                "oracle",
                profiled.trace,
                artifact_key=akey,
            )
            path_history = self.simulator.simulate_offload(
                workload.name,
                profiled.paths,
                analysis.path_frame,
                "history",
                profiled.trace,
                artifact_key=akey,
            )
        if analysis.braid_frame is not None:
            braid_outcome = self.simulator.simulate_offload(
                workload.name,
                profiled.paths,
                analysis.braid_frame,
                "oracle",
                profiled.trace,
                coverage=analysis.top_braid.coverage,
                artifact_key=akey,
            )

        hls = None
        braid_sched = None
        if analysis.braid_frame is not None:
            hls = HLSEstimator().estimate(analysis.braid_frame)
            braid_sched = ScheduleSummary.from_schedule(
                CGRAScheduler(self.config.cgra).schedule(analysis.braid_frame)
            )

        return WorkloadEvaluation(
            summary=AnalysisSummary.from_analysis(analysis),
            path_oracle=path_oracle,
            path_history=path_history,
            braid=braid_outcome,
            hls=hls,
            braid_schedule=braid_sched,
        )

    # -- simulated timelines ----------------------------------------------------------

    def timeline(self, workload: Workload) -> Dict[str, List]:
        """Simulated-cycle timelines, one track per offload strategy.

        Returns ``{strategy: [TimelineEvent, ...]}`` for the same three
        strategies :meth:`evaluate` prices, replayed through the offload
        simulator's segment charges — ready for
        :func:`repro.obs.timeline.chrome_trace` under track names like
        ``"<workload>/braid"``.
        """
        analysis = self.analyse(workload)
        profiled = analysis.profiled
        akey = profiled.artifact_key
        tracks: Dict[str, List] = {}
        with obs.span("timeline", workload=workload.name):
            if analysis.path_frame is not None:
                for kind in ("oracle", "history"):
                    tracks["bl-path-%s" % kind] = (
                        self.simulator.invocation_timeline(
                            workload.name, profiled.paths,
                            analysis.path_frame, kind,
                            profiled.trace, artifact_key=akey,
                        )
                    )
            if analysis.braid_frame is not None:
                tracks["braid"] = self.simulator.invocation_timeline(
                    workload.name, profiled.paths, analysis.braid_frame,
                    "oracle", profiled.trace, artifact_key=akey,
                )
        return tracks

    # -- suite sweeps -----------------------------------------------------------------

    def analyse_all(
        self, workloads, jobs: Optional[int] = None
    ) -> List[WorkloadAnalysis]:
        """Analyse a suite, optionally sharded over ``jobs`` processes."""
        workloads = list(workloads)
        jobs = validate_jobs(jobs)
        if not self._use_jobs(jobs, workloads, self._analyses):
            return self._run_serial(self.analyse, workloads, self._analyses)
        with obs.span("analyse_all", jobs=jobs, workloads=len(workloads)):
            results = self._fan_out(_analyse_worker, workloads, jobs)
        for w, analysis in zip(workloads, results):
            if not isinstance(analysis, WorkloadFailure):
                self._analyses[w.name] = analysis
        return results

    def evaluate_all(
        self, workloads, jobs: Optional[int] = None
    ) -> List[WorkloadEvaluation]:
        """Evaluate a suite, optionally sharded over ``jobs`` processes.

        Rows come back in suite order and are bitwise-identical to the
        serial path: each worker runs the same deterministic pipeline, and
        the pool only changes *where* a workload is computed.  Invalid
        ``jobs`` values (< 1) warn and fall back to serial.

        A workload that keeps failing (exception, timeout, worker crash)
        is retried per :class:`~repro.options.PipelineOptions` and then
        quarantined: its slot in the returned list holds a
        :class:`~repro.resilience.WorkloadFailure` instead of crashing
        the sweep.  With ``fail_fast`` the first failure raises
        :class:`~repro.resilience.WorkloadExecutionError`.
        """
        workloads = list(workloads)
        jobs = validate_jobs(jobs)
        if not self._use_jobs(jobs, workloads, self._evaluations):
            return self._run_serial(self.evaluate, workloads, self._evaluations)
        with obs.span("evaluate_all", jobs=jobs, workloads=len(workloads)):
            results = self._fan_out(_evaluate_worker, workloads, jobs)
        for w, evaluation in zip(workloads, results):
            if not isinstance(evaluation, WorkloadFailure):
                self._evaluations[w.name] = evaluation
        return results

    # -- fan-out helpers ----------------------------------------------------

    def _use_jobs(self, jobs: Optional[int], workloads, memo: Dict) -> bool:
        if jobs is None or jobs <= 1 or len(workloads) <= 1:
            return False
        # everything already in memory: the serial loop is pure lookup
        if all(w.name in memo for w in workloads):
            return False
        return True

    def _fault_plan(self) -> Optional[FaultPlan]:
        return self.options.resolve_fault_plan()

    def _run_serial(self, call, workloads, memo: Dict) -> List:
        """Serial sweep with the same retry/quarantine contract as the
        pool path (timeouts excepted: a thread cannot interrupt itself)."""
        policy = self.options.failure_policy()
        plan = self._fault_plan()
        out = []
        for w in workloads:
            # memoised results never re-run, so they cannot re-fail
            if w.name in memo:
                out.append(memo[w.name])
                continue
            attempt = 0
            while True:
                try:
                    if plan is not None:
                        with _faults.installed(plan, attempt=attempt):
                            out.append(call(w))
                    else:
                        out.append(call(w))
                    break
                except Exception as exc:
                    attempt += 1
                    if policy.fail_fast:
                        raise WorkloadExecutionError(
                            w.name, "exception"
                        ) from exc
                    if obs.enabled():
                        obs.counter("resilience.retries"
                                    if attempt <= policy.retries
                                    else "resilience.quarantined", 1,
                                    help="suite-sweep failure handling",
                                    kind="exception")
                    if attempt > policy.retries:
                        out.append(WorkloadFailure(
                            workload=w.name, kind="exception",
                            attempts=attempt,
                            error_type=type(exc).__name__, error=str(exc),
                        ))
                        break
                    time.sleep(policy.backoff(attempt, w.name))
        return out

    def _fan_out(self, worker, workloads, jobs: int) -> List:
        """Shard over a fail-safe process pool; workers return ``(result,
        obs snapshot-or-None, memo snapshot-or-None)``.  Snapshots are
        folded in as each worker finishes — a later failure can no longer
        drop metrics or memo entries that were already collected — and
        failed workloads come back as :class:`WorkloadFailure` records in
        their suite slot."""
        cache_root = self.cache.root if self.cache is not None else None
        collect = obs.enabled()

        def _absorb(_workload, row):
            _result, snap, memo_snap = row
            if snap is not None:
                obs.merge(snap)
            if memo_snap is not None and self.sim_memo is not None:
                self.sim_memo.merge(memo_snap)

        rows = run_failsafe(
            worker,
            workloads,
            jobs=jobs,
            policy=self.options.failure_policy(),
            task_args=(self.config, cache_root, collect,
                       self.options.trace_kernels, self.options.no_sim_memo),
            plan=self._fault_plan(),
            key_fn=lambda w: w.name,
            on_result=_absorb,
        )
        return [
            row if isinstance(row, WorkloadFailure) else row[0] for row in rows
        ]


# -- suite façade -----------------------------------------------------------


def evaluate_suite(
    names=None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    config: Optional[SystemConfig] = None,
    options: Optional[PipelineOptions] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = False,
    fault_plan: Optional[FaultPlan] = None,
) -> List[WorkloadEvaluation]:
    """One-call evaluation of the suite (or a named subset of it).

    The supported public entry point for "give me the Fig. 9/10 numbers":
    resolves workload names, honours the artifact cache and process-pool
    sharding, and returns evaluations in suite order.  Keyword arguments
    are shorthands for the matching :class:`~repro.options.PipelineOptions`
    fields; pass ``options`` to control everything at once.

    The sweep is fail-safe: a workload that keeps failing is retried
    (``retries``, per-attempt ``timeout`` under ``jobs``) and then
    quarantined as a :class:`~repro.resilience.WorkloadFailure` in its
    suite slot, so partial results always come back.  ``fail_fast=True``
    raises on the first failure instead.
    """
    from . import workloads as workload_registry

    opts = options or PipelineOptions(
        config=config, jobs=jobs, cache_dir=cache_dir,
        timeout=timeout,
        retries=retries if retries is not None else PipelineOptions.retries,
        fail_fast=fail_fast, fault_plan=fault_plan,
    )
    pipeline = opts.build_pipeline()
    if names is None:
        suite = workload_registry.all_workloads()
    else:
        suite = [
            workload_registry.get(n) if isinstance(n, str) else n
            for n in names
        ]
    return pipeline.evaluate_all(suite, jobs=opts.jobs)


# -- process-pool workers (module level: must be picklable by reference) --------


def _worker_pipeline(
    config: SystemConfig,
    cache_root: Optional[str],
    trace_kernels: str = "rle",
    no_sim_memo: bool = False,
) -> NeedlePipeline:
    cache = ArtifactCache(cache_root) if cache_root is not None else None
    opts = PipelineOptions(
        config=config,
        no_cache=cache is None,
        trace_kernels=trace_kernels,
        no_sim_memo=no_sim_memo,
    )
    return NeedlePipeline(config, cache=cache, options=opts)


def _consult_worker_faults(name: str) -> None:
    """The chaos suite's worker-level sites: crash, hang, exception."""
    if not _faults.enabled():
        return
    spec = _faults.consult(SITE_WORKER_CRASH, name)
    if spec is not None:
        # simulate a segfault/OOM-kill: no cleanup, no exception — the
        # parent sees BrokenProcessPool
        os._exit(int(spec.payload.get("exit_code", 13)))
    spec = _faults.consult(SITE_WORKER_HANG, name)
    if spec is not None:
        time.sleep(float(spec.payload.get("seconds", 3600.0)))
    spec = _faults.consult(SITE_WORKER_EXCEPTION, name)
    if spec is not None:
        raise FaultInjected("injected worker exception for %s" % name)


def _run_worker(method, workload, config, cache_root, collect: bool,
                trace_kernels: str = "rle", no_sim_memo: bool = False,
                plan: Optional[FaultPlan] = None, attempt: int = 0):
    """Run one workload in a pool worker, optionally collecting obs data
    into a private registry whose snapshot rides back with the result.
    The worker pipeline's simulation-memo snapshot travels back the same
    way, so the parent's memo warms up as the sweep progresses.

    The fault plan is installed fresh per (task, attempt) — and any
    injector the forked child inherited from the parent is cleared — so
    a worker's fault pattern depends only on the task, never on pool
    scheduling.
    """
    _faults.install(plan, attempt=attempt)
    try:
        _consult_worker_faults(workload.name)
        pipe = _worker_pipeline(config, cache_root, trace_kernels, no_sim_memo)
        if not collect:
            result = getattr(pipe, method)(workload)
            snap = None
        else:
            with obs.scoped() as reg:
                obs.counter("pipeline.worker_tasks", 1,
                            help="workloads processed per pool worker",
                            worker=str(os.getpid()))
                result = getattr(pipe, method)(workload)
                snap = reg.snapshot()
        memo_snap = (
            pipe.sim_memo.snapshot() if pipe.sim_memo is not None else None
        )
        return result, snap, memo_snap
    finally:
        _faults.uninstall()


def _analyse_worker(
    workload: Workload,
    config: SystemConfig,
    cache_root: Optional[str],
    collect: bool = False,
    trace_kernels: str = "rle",
    no_sim_memo: bool = False,
    plan: Optional[FaultPlan] = None,
    attempt: int = 0,
):
    return _run_worker("analyse", workload, config, cache_root, collect,
                       trace_kernels, no_sim_memo, plan, attempt)


def _evaluate_worker(
    workload: Workload,
    config: SystemConfig,
    cache_root: Optional[str],
    collect: bool = False,
    trace_kernels: str = "rle",
    no_sim_memo: bool = False,
    plan: Optional[FaultPlan] = None,
    attempt: int = 0,
):
    return _run_worker("evaluate", workload, config, cache_root, collect,
                       trace_kernels, no_sim_memo, plan, attempt)


__all__ = [
    "AnalysisSummary",
    "FrameSummary",
    "NeedlePipeline",
    "PipelineOptions",
    "ScheduleSummary",
    "WorkloadAnalysis",
    "WorkloadEvaluation",
    "WorkloadExecutionError",
    "WorkloadFailure",
    "evaluate_suite",
]
