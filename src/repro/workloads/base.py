"""Workload abstraction and profiling driver.

A :class:`Workload` names one of the paper's 29 benchmarks and knows how to
build its synthetic hot-function stand-in.  :func:`profile_workload` runs
the instrumented interpreter once and returns everything the experiments
need: the path profile, edge profile, full trace and the hot function.
Profiles are cached per workload because several tables/figures reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..interp.events import FunctionTrace, MultiTracer, TraceRecorder
from ..interp.interpreter import Interpreter
from ..ir.function import Function
from ..ir.module import Module
from ..obs import counter as _obs_counter, enabled as _obs_enabled, span as _obs_span
from ..profiling.edge_profile import EdgeProfile, EdgeProfiler
from ..profiling.path_profile import PathProfile, PathProfiler


@dataclass
class Workload:
    """One benchmark stand-in.

    ``build`` returns (module, hot function, args-for-one-run).  ``expected``
    records the paper's Table II row for the real application, kept as
    machine-checkable documentation of what shape the synthetic kernel aims
    for.
    """

    name: str
    suite: str  # "spec" | "parsec" | "perfect"
    description: str
    build: Callable[[], Tuple[Module, Function, List]]
    expected: Dict[str, object] = field(default_factory=dict)
    #: dominant datatype, for reporting ("int" | "fp")
    flavor: str = "int"

    def __repr__(self) -> str:
        return "<Workload %s (%s)>" % (self.name, self.suite)


@dataclass
class ProfiledWorkload:
    """Everything one instrumented run produces."""

    workload: Workload
    module: Module
    function: Function
    paths: PathProfile
    edges: EdgeProfile
    trace: FunctionTrace
    result: object  # the run's return value (useful as a sanity check)
    #: config-independent content hash of (IR text, run args); the
    #: simulation memo keys its calibration/path-cost tables with it
    artifact_key: "str | None" = None


_PROFILE_CACHE: Dict[str, ProfiledWorkload] = {}


def profile_workload(
    workload: Workload,
    use_cache: bool = True,
    artifact_cache=None,
) -> ProfiledWorkload:
    """Build, run and profile a workload's hot function once.

    ``artifact_cache`` (an :class:`~repro.artifacts.ArtifactCache`) layers a
    persistent on-disk store under the in-memory cache: the profile is keyed
    by the workload's IR text and run arguments, so a warm cache skips the
    instrumented interpreter run entirely.  Profiles are config-independent,
    hence the key carries no SystemConfig fingerprint.
    """
    if use_cache and workload.name in _PROFILE_CACHE:
        return _PROFILE_CACHE[workload.name]

    # the content key is computed unconditionally: the build it needs is
    # reused for the profiling run, and the key feeds the simulation memo's
    # content-keyed tables even when no on-disk cache is attached
    from ..artifacts import PROFILE_KIND, workload_key

    key, built = workload_key(workload, config=None)
    if artifact_cache is not None:
        stored = artifact_cache.get(PROFILE_KIND, key)
        if isinstance(stored, ProfiledWorkload):
            # reattach the live registry Workload (its build callable and
            # `expected` row are not part of the cached artifact's identity)
            stored.workload = workload
            stored.artifact_key = key
            if use_cache:
                _PROFILE_CACHE[workload.name] = stored
            if _obs_enabled():
                _obs_counter("profile.cache_outcome", 1,
                             help="where each profile came from",
                             workload=workload.name, outcome="artifact-cache")
            return stored

    with _obs_span("profile", workload=workload.name):
        module, fn, args = built
        paths = PathProfiler([fn])
        edges = EdgeProfiler([fn])
        recorder = TraceRecorder([fn])
        interp = Interpreter(module, tracer=MultiTracer(paths, edges, recorder))
        result = interp.run(fn, args)
    profiled = ProfiledWorkload(
        workload=workload,
        module=module,
        function=fn,
        paths=paths.profile_for(fn),
        edges=edges.profile_for(fn),
        trace=recorder.traces[fn],
        result=result,
        artifact_key=key,
    )
    if _obs_enabled():
        from ..interp.stats import opcode_census

        _obs_counter("profile.cache_outcome", 1,
                     help="where each profile came from",
                     workload=workload.name, outcome="instrumented-run")
        _obs_counter("profile.runtime.path_executions",
                     profiled.paths.total_executions,
                     help="paths flushed by live instrumented runs",
                     workload=workload.name)
        for opcode, n in sorted(opcode_census(profiled.trace).items()):
            _obs_counter("interp.runtime.opcode_executions", n,
                         help="dynamic opcode mix of live profiling runs",
                         workload=workload.name, opcode=opcode)
    if artifact_cache is not None:
        artifact_cache.put(PROFILE_KIND, key, profiled)
    if use_cache:
        _PROFILE_CACHE[workload.name] = profiled
    return profiled


def clear_profile_cache() -> None:
    _PROFILE_CACHE.clear()


__all__ = [
    "ProfiledWorkload",
    "Workload",
    "clear_profile_cache",
    "profile_workload",
]
