"""PARSEC and PERFECT workload stand-ins (Table II, bottom block).

These carry the evaluation's most distinctive behaviours: blackscholes'
enormous branch-laden FP body with *zero* path memory ops, swaptions' 438-op
29-branch body that still pays off because its control is periodic, and the
pathologically unpredictable trio (freqmine, bodytrack, blackscholes) whose
data-dependent branches defeat the invocation history predictor (§VI ③).
"""

from __future__ import annotations

import random

from .base import Workload
from .data import correlated_bits, smooth_floats
from .builders import (
    Arith,
    ArraySpec,
    BreakIf,
    If,
    LoadVal,
    Loop,
    Reset,
    StoreVal,
    build_loop_kernel,
)


def _floats(seed: int, n: int, lo: float = 0.0, hi: float = 4.0):
    rng = random.Random(seed)
    return [lo + rng.random() * (hi - lo) for _ in range(n)]


def _ints(seed: int, n: int, lo: int = 0, hi: int = 255):
    rng = random.Random(seed)
    return [rng.randrange(lo, hi) for _ in range(n)]


def _biased_bits(seed: int, n: int, bit: int, p_set: float):
    """Bytes whose given bit is set with probability ``p_set``."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        v = rng.randrange(256)
        v = (v | (1 << bit)) if rng.random() < p_set else (v & ~(1 << bit))
        out.append(v)
    return out


# -- blackscholes ----------------------------------------------------------------
# Option pricing, 4x unrolled: a 380-op FP body crossing 19 branches with no
# memory operations on the path.  The strike/spot comparisons are data
# driven and carry no history correlation, which is what sinks the BL-path
# history predictor in Fig. 9.


def _build_blackscholes():
    def priced_leg(tag: int):
        return [
            Arith(16, fp=True, acc="price", chained=False),
            If(
                ("bit", "opt", tag % 8),
                then=[Arith(14, fp=True, acc="price", chained=False)],
                els=[Arith(10, fp=True, acc="price", chained=False)],
            ),
            If(
                ("fgt", "price", 2.0 + tag),
                then=[Arith(8, fp=True, acc="price", chained=False)],
                els=[Arith(6, fp=True, acc="price", chained=False)],
            ),
            If(
                ("mod", "i", 4, tag % 4),
                then=[Arith(9, fp=True, acc="price", chained=False)],
                els=[Arith(5, fp=True, acc="price", chained=False)],
            ),
            If(
                ("bit", "opt", (tag + 4) % 8),
                then=[Arith(7, fp=True, acc="price", chained=False)],
                els=[Arith(7, fp=True, acc="price", chained=False)],
            ),
        ]

    # one load decides the whole iteration's branch nest; the paper's path
    # itself carries zero memory ops, and ours keeps them minimal (one read)
    segments = [Reset("price", value=1.0), LoadVal("opts", dst="opt")]
    for unroll in range(4):
        segments.extend(priced_leg(unroll))
    segments.append(
        If(("mod", "i", 128, 9), then=[Arith(12, fp=True, acc="price")], els=[])
    )
    # every option flag bit is ~90% biased, but *which* options deviate is
    # pattern-free: path coverage concentrates, successor prediction doesn't
    rng = random.Random(900)
    opts = [
        sum((1 << b) * (rng.random() < 0.9) for b in range(8)) for _ in range(1024)
    ]
    m, fn = build_loop_kernel(
        "blackscholes",
        "bs_thread_unroll4",
        segments,
        arrays=[ArraySpec("opts", 1024, init=opts)],
        fp_accs=("price",),
        return_var="price",
        fp_bits=32,
    )
    return m, fn, [400]


BLACKSCHOLES = Workload(
    name="blackscholes",
    suite="parsec",
    description="Black-Scholes option pricing (4x unrolled, branchy FP)",
    build=_build_blackscholes,
    flavor="fp",
    expected={"paths": 42, "cov5": 37, "ins": 380, "branches": 19, "mem": 0, "overlap": 11},
)


# -- bodytrack -----------------------------------------------------------------------
# Particle-filter likelihood: modest body whose single important branch is a
# data-dependent edge-test with no temporal pattern (pathological ③).


def _build_bodytrack():
    segments = [
        Reset("lik", value=1.0),
        LoadVal("edges", dst="e"),
        Arith(12, fp=True, acc="lik", use=None, chained=False),
        If(
            ("bit", "e", 3),
            then=[Arith(16, fp=True, acc="lik", chained=False), LoadVal("proj", dst="p", fp=True)],
            els=[Arith(8, fp=True, acc="lik", chained=False)],
        ),
        If(("bit", "e", 5), then=[Arith(7, fp=True, acc="lik", chained=False)], els=[Arith(5, fp=True, acc="lik")]),
        If(("bit", "e", 1), then=[Arith(6, fp=True, acc="lik")], els=[Arith(4, fp=True, acc="lik")]),
        If(("mod", "i", 16, 2), then=[StoreVal("weights", value="lik"), Arith(6, fp=True, acc="lik")], els=[]),
        If(("mod", "i", 64, 30), then=[Arith(9, fp=True, acc="lik")], els=[]),
    ]
    m, fn = build_loop_kernel(
        "bodytrack",
        "image_measurement",
        segments,
        arrays=[
            ArraySpec("edges", 1024, init=_biased_bits(901, 1024, 3, 0.6)),
            ArraySpec("proj", 512, fp=True, init=_floats(902, 512)),
            ArraySpec("weights", 256, fp=True),
        ],
        fp_accs=("lik",),
        return_var="lik",
        fp_bits=32,
    )
    return m, fn, [700]


BODYTRACK = Workload(
    name="bodytrack",
    suite="parsec",
    description="Particle filter edge-likelihood measurement",
    build=_build_bodytrack,
    flavor="fp",
    expected={"paths": 732, "cov5": 43, "ins": 68, "branches": 4, "mem": 3, "overlap": 24},
)


# -- dwt53 -------------------------------------------------------------------------------
# PERFECT 5/3 wavelet lifting step: one path dominates completely.


def _build_dwt53():
    segments = [
        Reset("acc"),
        LoadVal("row", dst="left", offset=0),
        LoadVal("row", dst="mid", offset=1),
        LoadVal("row", dst="right", offset=2),
        Arith(5, use="mid", chained=True),
        Arith(4, use="left", chained=True),
        Arith(4, use="right", chained=True),
        StoreVal("lo", value="acc"),
        Arith(4, chained=True),
        StoreVal("hi", value="acc"),
        If(("mod", "i", 1024, 2), then=[Arith(5)], els=[]),
    ]
    m, fn = build_loop_kernel(
        "dwt53",
        "dwt53_row_transpose",
        segments,
        arrays=[
            ArraySpec("row", 2048, init=_ints(903, 2048)),
            ArraySpec("lo", 1024),
            ArraySpec("hi", 1024),
        ],
    )
    return m, fn, [900]


DWT53 = Workload(
    name="dwt53",
    suite="perfect",
    description="5/3 integer wavelet lifting (row pass)",
    build=_build_dwt53,
    expected={"paths": 12, "cov5": 100, "ins": 28, "branches": 1, "mem": 6, "overlap": 1},
)


# -- ferret --------------------------------------------------------------------------------
# Content-based image search ranking: many phases -> many paths (Σ5 only
# 20%) but each phase is strictly periodic, so the predictor hits 98% and
# the wide int body gives the accelerator real ILP (Fig. 9 ①).


def _build_ferret():
    segments = [
        Reset("acc"),
        LoadVal("feat", dst="f"),
        Arith(14, use="f", chained=False),
        # pipeline phases (segment, extract, index, rank) last 16 queries
        # each: the path repeats within a phase and the phase schedule is
        # deterministic, so the history table tracks it almost perfectly
        # (the paper reports 98% precision for ferret)
        If(("phase", "i", 4, 0, 4), then=[Arith(12, chained=False)], els=[Arith(6, chained=False)]),
        If(("phase", "i", 4, 1, 4), then=[Arith(10, chained=False)], els=[Arith(5, chained=False)]),
        If(("phase", "i", 4, 2, 4), then=[Arith(9, chained=False)], els=[Arith(4, chained=False)]),
        If(("phase", "i", 4, 3, 4), then=[Arith(8, chained=False)], els=[Arith(3, chained=False)]),
        If(("phase", "i", 2, 1, 5), then=[Arith(7, chained=False)], els=[Arith(4, chained=False)]),
        If(("phase", "i", 2, 0, 5), then=[Arith(6, chained=False)], els=[Arith(2, chained=False)]),
        If(("phase", "i", 4, 1, 4), then=[Arith(8, chained=False), StoreVal("rank", value="acc")], els=[Arith(3, chained=False)]),
        If(("phase", "i", 2, 1, 6), then=[Arith(5, chained=False)], els=[Arith(2, chained=False)]),
        If(("mod", "i", 128, 64), then=[Arith(9, chained=False)], els=[]),
    ]
    m, fn = build_loop_kernel(
        "ferret",
        "emd_rank",
        segments,
        arrays=[ArraySpec("feat", 1024, init=_ints(904, 1024)), ArraySpec("rank", 256)],
    )
    return m, fn, [1000]


FERRET = Workload(
    name="ferret",
    suite="parsec",
    description="Image-similarity earth-mover ranking (periodic phases)",
    build=_build_ferret,
    expected={"paths": 556, "cov5": 20, "ins": 98, "branches": 9, "mem": 2, "overlap": 10},
)


# -- fft-2d ------------------------------------------------------------------------------------
# PERFECT 2D FFT butterfly with a nested per-row loop (backward branches).


def _build_fft2d():
    # radix-4 butterfly, unrolled: four twiddle stages per outer element
    segments = [
        Reset("sum_r"),
        Reset("sum_i"),
        LoadVal("re", dst="ar", fp=True),
        LoadVal("im", dst="ai", fp=True),
        Arith(6, fp=True, use="ar", acc="sum_r", chained=False),
        Arith(6, fp=True, use="ai", acc="sum_i", chained=False),
        Arith(6, fp=True, use="ar", acc="sum_r", chained=False),
        Arith(6, fp=True, use="ai", acc="sum_i", chained=False),
        If(
            ("phase", "i", 2, 0, 3),  # row passes alternate every 8 elements
            then=[StoreVal("re", value="sum_r"), Arith(4, fp=True, acc="sum_r")],
            els=[StoreVal("im", value="sum_i"), Arith(3, fp=True, acc="sum_i")],
        ),
        If(("mod", "i", 256, 17), then=[Arith(6, fp=True, acc="sum_r")], els=[]),
    ]
    m, fn = build_loop_kernel(
        "fft2d",
        "fft_butterfly_rows",
        segments,
        arrays=[
            ArraySpec("re", 1024, fp=True, init=_floats(905, 1024, -1.0, 1.0)),
            ArraySpec("im", 1024, fp=True, init=_floats(906, 1024, -1.0, 1.0)),
        ],
        fp_accs=("sum_r", "sum_i"),
        return_var="sum_r",
        fp_bits=32,
    )
    return m, fn, [350]


FFT2D = Workload(
    name="fft-2d",
    suite="perfect",
    description="2D FFT butterfly with nested row loop",
    build=_build_fft2d,
    flavor="fp",
    expected={"paths": 29, "cov5": 87, "ins": 38, "branches": 2, "mem": 4, "overlap": 2},
)


# -- fluidanimate ----------------------------------------------------------------------------------
# SPH neighbour-force kernel: mid-size FP body, mixed-bias branches.


def _build_fluidanimate():
    segments = [
        Reset("force"),
        LoadVal("dens", dst="rho", fp=True),
        LoadVal("vel", dst="v", fp=True),
        Arith(10, fp=True, use="rho", acc="force", chained=False),
        If(
            ("fgt", "rho", 1.2),
            then=[Arith(12, fp=True, use="v", acc="force", chained=False), StoreVal("out", value="force")],
            els=[Arith(5, fp=True, acc="force")],
        ),
        If(("fgt", "v", 2.8), then=[Arith(8, fp=True, acc="force", chained=False), LoadVal("dens", dst="r2", fp=True, offset=1)], els=[Arith(4, fp=True, acc="force")]),
        If(("mod", "i", 27, 13), then=[Arith(7, fp=True, acc="force"), StoreVal("out", value="force", offset=1)], els=[]),
        If(("mod", "i", 64, 5), then=[Arith(6, fp=True, acc="force")], els=[]),
    ]
    m, fn = build_loop_kernel(
        "fluidanimate",
        "compute_forces_cell",
        segments,
        arrays=[
            ArraySpec("dens", 1024, fp=True, init=smooth_floats(907, 1024, 0.9, 1.6)),
            ArraySpec("vel", 1024, fp=True, init=smooth_floats(908, 1024, 0.0, 3.2)),
            ArraySpec("out", 512, fp=True),
        ],
        fp_accs=("force",),
        return_var="force",
        fp_bits=32,
    )
    return m, fn, [800]


FLUIDANIMATE = Workload(
    name="fluidanimate",
    suite="parsec",
    description="SPH per-cell force computation",
    build=_build_fluidanimate,
    flavor="fp",
    expected={"paths": 377, "cov5": 53, "ins": 67, "branches": 4, "mem": 10, "overlap": 5},
)


# -- freqmine ----------------------------------------------------------------------------------------
# FP-growth tree walk: small body with a data-dependent early exit whose
# position is value-driven (pathological ③: loop bounds from data).


def _build_freqmine():
    segments = [
        LoadVal("tree", dst="node"),
        # conditional-pattern-base walk: the inner descent length is decided
        # by the data (bit 7 of the visited count), with no temporal pattern
        Loop(
            6,
            [
                LoadVal("counts", dst="cnt", index="node"),
                Arith(9, use="cnt", chained=True),
                Arith(5, chained=False),
                BreakIf(("bit", "cnt", 7)),
                LoadVal("tree", dst="node", index="cnt"),  # descend a level
                Arith(4, use="node", chained=True),
            ],
            induction="j",
        ),
        If(
            ("bit", "node", 2),
            then=[Arith(6), StoreVal("freq", value="acc")],
            els=[Arith(4)],
        ),
        If(("mod", "i", 32, 8), then=[Arith(5), LoadVal("counts", dst="c2", offset=3)], els=[]),
    ]
    m, fn = build_loop_kernel(
        "freqmine",
        "fp_growth_walk",
        segments,
        arrays=[
            ArraySpec("tree", 1024, init=_ints(909, 1024)),
            ArraySpec("counts", 1024, init=_biased_bits(910, 1024, 7, 0.3)),
            ArraySpec("freq", 256),
        ],
    )
    return m, fn, [900]


FREQMINE = Workload(
    name="freqmine",
    suite="parsec",
    description="FP-growth conditional tree walk (data-driven exit)",
    build=_build_freqmine,
    expected={"paths": 22, "cov5": 64, "ins": 31, "branches": 2, "mem": 10, "overlap": 2},
)


# -- sar-backprojection ---------------------------------------------------------------------------------
# PERFECT SAR backprojection: many near-uniform region tests, Σ5 only 14%.


def _build_sar_backprojection():
    segments = [
        Reset("pix"),
        LoadVal("pulse", dst="s", fp=True),
        Arith(8, fp=True, use="s", acc="pix", chained=False),
        If(("bit", "i", 0), then=[Arith(6, fp=True, acc="pix", chained=False)], els=[Arith(4, fp=True, acc="pix")]),
        If(("fgt", "s", 1.0), then=[Arith(7, fp=True, acc="pix", chained=False)], els=[Arith(5, fp=True, acc="pix")]),
        If(("fgt", "s", 2.0), then=[Arith(5, fp=True, acc="pix")], els=[Arith(3, fp=True, acc="pix")]),
        If(("fgt", "s", 3.0), then=[Arith(4, fp=True, acc="pix")], els=[Arith(4, fp=True, acc="pix")]),
        If(("bit", "i", 1), then=[Arith(5, fp=True, acc="pix")], els=[Arith(2, fp=True, acc="pix")]),
        If(("bit", "i", 2), then=[Arith(4, fp=True, acc="pix")], els=[Arith(3, fp=True, acc="pix")]),
        If(("mod", "i", 16, 7), then=[StoreVal("image", value="pix"), Arith(3, fp=True, acc="pix")], els=[]),
        If(("mod", "i", 256, 100), then=[Arith(6, fp=True, acc="pix"), LoadVal("pulse", dst="s2", fp=True, offset=2)], els=[]),
    ]
    m, fn = build_loop_kernel(
        "sar_backprojection",
        "backproject_pixel",
        segments,
        arrays=[
            ArraySpec("pulse", 2048, fp=True, init=_floats(911, 2048, 0.0, 4.0)),
            ArraySpec("image", 512, fp=True),
        ],
        fp_accs=("pix",),
        return_var="pix",
        fp_bits=32,
    )
    return m, fn, [900]


SAR_BACKPROJECTION = Workload(
    name="sar-backprojection",
    suite="perfect",
    description="SAR image backprojection per-pixel accumulation",
    build=_build_sar_backprojection,
    flavor="fp",
    expected={"paths": 539, "cov5": 14, "ins": 85, "branches": 9, "mem": 6, "overlap": 3},
)


# -- sar-pfa-interp1 ---------------------------------------------------------------------------------------
# PERFECT polar-format interpolation: big FP body (146 ops) over 14 mostly
# periodic range tests; a Fig. 9 top performer.


def _build_sar_pfa_interp1():
    segments = [
        Reset("interp"),
        LoadVal("range", dst="r", fp=True),
        LoadVal("win", dst="w", fp=True),
    ]
    for k in range(7):
        segments.append(
            If(
                ("mod", "i", 4 + k, k % 3),
                then=[Arith(9, fp=True, acc="interp", chained=False)],
                els=[Arith(5, fp=True, acc="interp", chained=False)],
            )
        )
    for k in range(7):
        segments.append(
            If(
                ("mod", "i", 3 + (k % 4), (k + 1) % 3),
                then=[Arith(7, fp=True, use="r" if k % 2 else "w", acc="interp", chained=False)],
                els=[Arith(4, fp=True, acc="interp", chained=False)],
            )
        )
    segments.append(StoreVal("out", value="interp"))
    segments.append(
        If(("mod", "i", 512, 15), then=[Arith(8, fp=True, acc="interp")], els=[])
    )
    m, fn = build_loop_kernel(
        "sar_pfa_interp1",
        "pfa_interp_range",
        segments,
        arrays=[
            ArraySpec("range", 2048, fp=True, init=_floats(912, 2048)),
            ArraySpec("win", 1024, fp=True, init=_floats(913, 1024)),
            ArraySpec("out", 1024, fp=True),
        ],
        fp_accs=("interp",),
        return_var="interp",
        fp_bits=32,
    )
    return m, fn, [420]


SAR_PFA_INTERP1 = Workload(
    name="sar-pfa-interp1",
    suite="perfect",
    description="SAR polar-format range interpolation",
    build=_build_sar_pfa_interp1,
    flavor="fp",
    expected={"paths": 53, "cov5": 47, "ins": 146, "branches": 14, "mem": 8, "overlap": 8},
)


# -- streamcluster -------------------------------------------------------------------------------------------
# k-median distance kernel: nested per-dimension loop (many backward
# branches per Table I), near-total coverage (98%).


def _build_streamcluster():
    # the per-dimension loop is fully unrolled (dim = 3), the form the
    # paper's 35-op streamcluster path takes after inlining
    segments = [
        Reset("dist"),
        LoadVal("points", dst="p", fp=True),
        LoadVal("centers", dst="c0", fp=True, scale=0, offset=0),
        LoadVal("centers", dst="c1", fp=True, scale=0, offset=1),
        LoadVal("centers", dst="c2", fp=True, scale=0, offset=2),
        Arith(5, fp=True, use="c0", acc="dist", chained=False),
        Arith(5, fp=True, use="c1", acc="dist", chained=False),
        Arith(5, fp=True, use="c2", acc="dist", chained=False),
        Arith(6, fp=True, use="p", acc="dist", chained=False),
        If(
            ("fgt", "dist", 10.0),
            then=[StoreVal("assign", value="dist"), Arith(4, fp=True, acc="dist")],
            els=[Arith(3, fp=True, acc="dist")],
        ),
        If(("mod", "i", 128, 9), then=[Arith(5, fp=True, acc="dist")], els=[]),
    ]
    m, fn = build_loop_kernel(
        "streamcluster",
        "pgain_dist",
        segments,
        arrays=[
            ArraySpec("points", 1024, fp=True, init=_floats(914, 1024)),
            ArraySpec("centers", 64, fp=True, init=_floats(915, 64)),
            ArraySpec("assign", 512, fp=True),
        ],
        fp_accs=("dist",),
        return_var="dist",
        fp_bits=32,
    )
    return m, fn, [600]


STREAMCLUSTER = Workload(
    name="streamcluster",
    suite="parsec",
    description="k-median per-point distance accumulation",
    build=_build_streamcluster,
    flavor="fp",
    expected={"paths": 42, "cov5": 98, "ins": 35, "branches": 3, "mem": 6, "overlap": 2},
)


# -- swaptions ---------------------------------------------------------------------------------------------------
# HJM swaption pricing: the suite's largest body (438 ops across 29
# branches, 32 memory ops).  Control is periodic (simulation phases), so
# despite 11K paths the predictor is nearly perfect and the braid merges
# sibling paths into one big offload (Fig. 9 ①, Table IV outlier).


def _build_swaptions():
    segments = [Reset("hjm"), Reset("disc", value=1.0)]
    for k in range(8):
        segments.append(LoadVal("fwd", dst="f%d" % k, fp=True, offset=k))
    for k in range(8):
        segments.append(
            Arith(10, fp=True, use="f%d" % k, acc="hjm", chained=False)
        )
    # 22 simulation-phase tests, all co-periodic on the step counter: a
    # dominant family of paths emerges (Σ5 ≈ 50%) even though the raw path
    # population is large, matching the paper's swaptions row
    for k in range(14):
        segments.append(
            If(
                ("phase", "i", 4, k % 4, 4),
                then=[Arith(8, fp=True, acc="hjm", chained=False)],
                els=[Arith(5, fp=True, acc="hjm", chained=False)],
            )
        )
    for k in range(8):
        segments.append(
            If(
                ("phase", "i", 2, k % 2, 4),
                then=[
                    Arith(6, fp=True, acc="disc", chained=False),
                    StoreVal("out", value="disc", offset=k),
                ],
                els=[Arith(4, fp=True, acc="disc", chained=False)],
            )
        )
    # a handful of data-driven volatility clamps break strict periodicity
    segments.append(LoadVal("steps", dst="ctrl"))
    for k in range(6):
        segments.append(
            If(
                ("bit", "ctrl", k),
                then=[Arith(5, fp=True, acc="hjm", chained=False), LoadVal("vol", dst="v%d" % k, fp=True, offset=k)],
                els=[Arith(3, fp=True, acc="hjm", chained=False)],
            )
        )
    segments.append(If(("mod", "i", 128, 65), then=[Arith(10, fp=True, acc="hjm")], els=[]))
    # control bits are heavily biased and clustered: clamps are rare events
    step_bits = [
        correlated_bits(918 + b, 1024, bit=b, p_set=0.93, mean_run=32)
        for b in range(6)
    ]
    m, fn = build_loop_kernel(
        "swaptions",
        "hjm_simulate_path",
        segments,
        arrays=[
            ArraySpec("fwd", 2048, fp=True, init=_floats(916, 2048)),
            ArraySpec("vol", 1024, fp=True, init=_floats(917, 1024)),
            ArraySpec("out", 1024, fp=True),
            ArraySpec(
                "steps",
                1024,
                init=[
                    sum(bits[idx] & (1 << b) for b, bits in enumerate(step_bits))
                    for idx in range(1024)
                ],
            ),
        ],
        fp_accs=("hjm", "disc"),
        return_var="hjm",
        fp_bits=32,
    )
    return m, fn, [300]


SWAPTIONS = Workload(
    name="swaptions",
    suite="parsec",
    description="HJM swaption Monte-Carlo path simulation",
    build=_build_swaptions,
    flavor="fp",
    expected={"paths": 11000, "cov5": 50, "ins": 438, "branches": 29, "mem": 32, "overlap": 138},
)


PARSEC_PERFECT_WORKLOADS = [
    BLACKSCHOLES,
    BODYTRACK,
    DWT53,
    FERRET,
    FFT2D,
    FLUIDANIMATE,
    FREQMINE,
    SAR_BACKPROJECTION,
    SAR_PFA_INTERP1,
    STREAMCLUSTER,
    SWAPTIONS,
]
