"""Kernel-construction DSL for the synthetic workload suite.

The 29 workloads are *shaped* after the paper's SPEC/PARSEC/PERFECT hot
functions: what matters for every experiment is control-flow structure (path
counts, branch biases, diamonds, breaks, loop nests), operation mix (INT vs
FP, memory density) and path-size distribution — not application semantics.
This module provides the declarative vocabulary the per-workload definitions
use:

* :class:`Arith` — a chain or fan of INT/FP operations on a named accumulator
* :class:`LoadVal` / :class:`StoreVal` — array traffic indexed by induction
* :class:`If` — a diamond (optionally nested) with a choosable condition
* :class:`BreakIf` — a rare early loop exit
* :class:`Loop` — a nested counted loop

:func:`build_loop_kernel` assembles a full function from a segment list,
handling SSA φ placement at merges, loop headers, and break edges, and
verifies the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ir import (
    Constant,
    F32,
    F64,
    I32,
    IRBuilder,
    Module,
    Value,
    verify_function,
)

# --------------------------------------------------------------------------
# Segment vocabulary
# --------------------------------------------------------------------------


@dataclass
class Arith:
    """``count`` arithmetic ops folded into accumulator ``acc``.

    ``chained`` ops serialise (low ILP); unchained ops form independent
    chains reduced at the end (high ILP).  ``use`` mixes a temp (e.g. a
    loaded value) into the computation.
    """

    count: int
    fp: bool = False
    chained: bool = True
    acc: str = "acc"
    use: Optional[str] = None
    ops: Sequence[str] = ()  # opcode rotation; defaults chosen by fp


@dataclass
class LoadVal:
    """Load ``array[index_var * scale + offset]`` into temp ``dst``."""

    array: str
    dst: str = "t"
    index: str = "i"
    offset: int = 0
    scale: int = 1
    fp: bool = False


@dataclass
class StoreVal:
    """Store state var ``value`` to ``array[index_var + offset]``."""

    array: str
    value: str = "acc"
    index: str = "i"
    offset: int = 0


@dataclass
class If:
    """A diamond on ``cond``; both arms are segment lists."""

    cond: Tuple
    then: Sequence = ()
    els: Sequence = ()


@dataclass
class BreakIf:
    """Early loop exit when ``cond`` holds (a rare/cold edge)."""

    cond: Tuple


@dataclass
class Loop:
    """A nested counted loop with its own induction variable."""

    trip: int
    body: Sequence
    induction: str = "j"


@dataclass
class Reset:
    """Reinitialise accumulator ``acc`` at the top of each iteration.

    This kills the loop-carried dependence through the accumulator — the
    shape of kernels whose iterations are independent (stencils, per-option
    pricing): both the OOO window and the CGRA can then pipeline iterations
    without waiting on the previous one's reduction chain.
    """

    acc: str
    value: float = 0.0


Segment = Union[Arith, LoadVal, StoreVal, If, BreakIf, Loop, Reset]


# --------------------------------------------------------------------------
# Kernel assembly
# --------------------------------------------------------------------------

_INT_OPS = ("add", "xor", "sub", "and", "or", "mul")
_FP_OPS = ("fadd", "fmul", "fsub")


@dataclass
class _EmitCtx:
    """Mutable emission state threaded through segment lists."""

    b: IRBuilder
    module: Module
    fn: object
    arrays: Dict[str, object]
    state: Dict[str, Value]
    break_edges: List[Tuple[object, Value]] = field(default_factory=list)
    exit_block: Optional[object] = None
    return_var: str = "acc"
    uid: List[int] = field(default_factory=lambda: [0])
    #: innermost nested loops: (after_block, [(block, state snapshot), ...]);
    #: a BreakIf inside a nested loop exits that loop, not the function
    loop_stack: List[Tuple[object, List[Tuple[object, Dict[str, Value]]]]] = field(
        default_factory=list
    )

    def fresh(self, hint: str) -> str:
        self.uid[0] += 1
        return "%s%d" % (hint, self.uid[0])


def _emit_cond(ctx: _EmitCtx, cond: Tuple) -> Value:
    """Lower a condition spec to an i1 value.

    Kinds:
      ("mod", var, k, r)          var % k == r              (bias 1/k)
      ("phase", var, k, r, s)     (var >> s) % k == r       (runs of 2^s)
      ("lt", var, c)              var < c
      ("gt", var, c)              var > c
      ("bit", var, b)             bit b of var set          (data dependent)
      ("flt", var, c)             fp var < c
      ("fgt", var, c)             fp var > c
    """
    b = ctx.b
    kind = cond[0]
    if kind == "mod":
        _, var, k, r = cond
        rem = b.srem(ctx.state[var], k)
        return b.icmp("eq", rem, r)
    if kind == "phase":
        _, var, k, r, shift = cond
        coarse = b.ashr(ctx.state[var], shift)
        rem = b.srem(coarse, k)
        return b.icmp("eq", rem, r)
    if kind == "lt":
        _, var, c = cond
        return b.icmp("slt", ctx.state[var], c)
    if kind == "gt":
        _, var, c = cond
        return b.icmp("sgt", ctx.state[var], c)
    if kind == "bit":
        _, var, bit = cond
        shifted = b.ashr(ctx.state[var], bit)
        masked = b.and_(shifted, 1)
        return b.icmp("eq", masked, 1)
    if kind == "flt":
        _, var, c = cond
        return b.fcmp("olt", ctx.state[var], float(c))
    if kind == "fgt":
        _, var, c = cond
        return b.fcmp("ogt", ctx.state[var], float(c))
    raise ValueError("unknown condition kind %r" % (kind,))


def _emit_arith(ctx: _EmitCtx, seg: Arith) -> None:
    b = ctx.b
    ops = tuple(seg.ops) or (_FP_OPS if seg.fp else _INT_OPS)
    acc = ctx.state[seg.acc]
    mixin = ctx.state.get(seg.use) if seg.use else None
    if seg.chained:
        cur = acc
        for k in range(seg.count):
            op = ops[k % len(ops)]
            operand: Union[Value, int, float]
            if mixin is not None and k == 0:
                operand = mixin
            elif seg.fp:
                operand = 1.0 + 0.125 * (k % 7)
            else:
                operand = (k % 11) + 1
            cur = b.binop(op, cur, operand)
        ctx.state[seg.acc] = cur
    else:
        # independent fan reduced by a balanced tree: high ILP
        leaves: List[Value] = []
        src = mixin if mixin is not None else acc
        for k in range(max(1, seg.count - max(0, seg.count // 2))):
            op = ops[k % len(ops)]
            operand = 1.0 + 0.25 * (k % 5) if seg.fp else (k % 9) + 1
            leaves.append(b.binop(op, src, operand))
        while len(leaves) > 1:
            nxt: List[Value] = []
            red = "fadd" if seg.fp else "add"
            for a, c in zip(leaves[::2], leaves[1::2]):
                nxt.append(b.binop(red, a, c))
            if len(leaves) % 2:
                nxt.append(leaves[-1])
            leaves = nxt
        reduce_op = "fadd" if seg.fp else "add"
        ctx.state[seg.acc] = b.binop(reduce_op, acc, leaves[0])


def _emit_load(ctx: _EmitCtx, seg: LoadVal) -> None:
    b = ctx.b
    arr = ctx.arrays[seg.array]
    idx = ctx.state[seg.index]
    if seg.scale != 1:
        idx = b.mul(idx, seg.scale)
    if seg.offset:
        idx = b.add(idx, seg.offset)
    size = arr.elem_type.size_bytes
    # keep indices in range via masking against the array size (power of two)
    mask = arr.count - 1
    idx = b.and_(idx, mask)
    addr = b.gep(arr, idx, size)
    ctx.state[seg.dst] = b.load(arr.elem_type, addr)


def _emit_store(ctx: _EmitCtx, seg: StoreVal) -> None:
    b = ctx.b
    arr = ctx.arrays[seg.array]
    idx = ctx.state[seg.index]
    if seg.offset:
        idx = b.add(idx, seg.offset)
    mask = arr.count - 1
    idx = b.and_(idx, mask)
    addr = b.gep(arr, idx, arr.elem_type.size_bytes)
    ctx.state[seg.value] = _coerce_to(ctx, ctx.state[seg.value], arr.elem_type)
    b.store(ctx.state[seg.value], addr)


def _coerce_to(ctx: _EmitCtx, value: Value, elem_type) -> Value:
    if value.type == elem_type:
        return value
    b = ctx.b
    if elem_type.is_float and value.type.is_int:
        return b.unop("sitofp", value, elem_type)
    if elem_type.is_int and value.type.is_float:
        return b.unop("fptosi", value, I32)
    return value


def _emit_if(ctx: _EmitCtx, seg: If) -> None:
    b = ctx.b
    cond = _emit_cond(ctx, seg.cond)
    then_blk = b.add_block(ctx.fresh("then"))
    else_blk = b.add_block(ctx.fresh("else"))
    merge_blk = b.add_block(ctx.fresh("merge"))
    b.condbr(cond, then_blk, else_blk)

    base_state = dict(ctx.state)

    b.set_block(then_blk)
    ctx.state = dict(base_state)
    _emit_segments(ctx, seg.then)
    then_state = ctx.state
    then_end = b.block
    b.br(merge_blk)

    b.set_block(else_blk)
    ctx.state = dict(base_state)
    _emit_segments(ctx, seg.els)
    else_state = ctx.state
    else_end = b.block
    b.br(merge_blk)

    b.set_block(merge_blk)
    merged = dict(base_state)
    keys = set(then_state) | set(else_state)
    for key in sorted(keys):
        tv = then_state.get(key, base_state.get(key))
        ev = else_state.get(key, base_state.get(key))
        if tv is None or ev is None:
            continue
        if tv is ev:
            merged[key] = tv
        else:
            phi = ctx.b.phi(tv.type, key)
            phi.add_incoming(then_end, tv)
            phi.add_incoming(else_end, ev)
            merged[key] = phi
    ctx.state = merged


def _emit_break(ctx: _EmitCtx, seg: BreakIf) -> None:
    b = ctx.b
    cond = _emit_cond(ctx, seg.cond)
    cont_blk = b.add_block(ctx.fresh("cont"))
    if ctx.loop_stack:
        after_blk, records = ctx.loop_stack[-1]
        records.append((b.block, dict(ctx.state)))
        b.condbr(cond, after_blk, cont_blk)
    else:
        ctx.break_edges.append((b.block, ctx.state[ctx.return_var]))
        b.condbr(cond, ctx.exit_block, cont_blk)
    b.set_block(cont_blk)


def _emit_loop(ctx: _EmitCtx, seg: Loop) -> None:
    """A nested counted loop carrying every state variable."""
    b = ctx.b
    pre_blk = b.block
    header = b.add_block(ctx.fresh("nh"))
    body = b.add_block(ctx.fresh("nb"))
    after = b.add_block(ctx.fresh("na"))
    b.br(header)

    b.set_block(header)
    j = b.phi(I32, seg.induction)
    carried: Dict[str, object] = {}
    entry_state = dict(ctx.state)
    for key in sorted(ctx.state):
        phi = b.phi(ctx.state[key].type, key)
        carried[key] = phi
    cond = b.icmp("slt", j, seg.trip)
    b.condbr(cond, body, after)

    b.set_block(body)
    ctx.state = dict(carried)
    ctx.state[seg.induction] = j
    ctx.loop_stack.append((after, []))
    _emit_segments(ctx, seg.body)
    _, break_records = ctx.loop_stack.pop()
    body_state = ctx.state
    body_end = b.block
    j_next = b.add(j, 1)
    b.br(header)

    j.add_incoming(pre_blk, Constant(I32, 0))
    j.add_incoming(body_end, j_next)
    for key, phi in carried.items():
        phi.add_incoming(pre_blk, entry_state[key])
        phi.add_incoming(body_end, body_state.get(key, phi))

    b.set_block(after)
    if break_records:
        # the loop can be left over the header edge or any break edge; every
        # carried variable needs a φ merging those flows
        merged: Dict[str, Value] = {}
        for key, phi in carried.items():
            out_phi = b.phi(phi.type, key)
            out_phi.add_incoming(header, phi)
            for blk, snap in break_records:
                out_phi.add_incoming(blk, snap.get(key, phi))
            merged[key] = out_phi
        ctx.state = merged
    else:
        ctx.state = dict(carried)
    ctx.state.pop(seg.induction, None)


def _emit_segments(ctx: _EmitCtx, segments: Sequence[Segment]) -> None:
    for seg in segments:
        if isinstance(seg, Arith):
            _emit_arith(ctx, seg)
        elif isinstance(seg, LoadVal):
            _emit_load(ctx, seg)
        elif isinstance(seg, StoreVal):
            _emit_store(ctx, seg)
        elif isinstance(seg, If):
            _emit_if(ctx, seg)
        elif isinstance(seg, BreakIf):
            _emit_break(ctx, seg)
        elif isinstance(seg, Loop):
            _emit_loop(ctx, seg)
        elif isinstance(seg, Reset):
            old = ctx.state[seg.acc]
            if old.type.is_float:
                ctx.state[seg.acc] = Constant(old.type, float(seg.value))
            else:
                ctx.state[seg.acc] = Constant(old.type, int(seg.value))
        else:
            raise TypeError("unknown segment %r" % (seg,))


@dataclass
class ArraySpec:
    """A module global backing workload inputs/outputs (power-of-two size)."""

    name: str
    count: int
    fp: bool = False
    init: Optional[Sequence] = None

    def __post_init__(self):
        if self.count & (self.count - 1):
            raise ValueError("array size must be a power of two for masking")


def build_loop_kernel(
    module_name: str,
    fn_name: str,
    segments: Sequence[Segment],
    arrays: Sequence[ArraySpec] = (),
    int_accs: Sequence[str] = ("acc",),
    fp_accs: Sequence[str] = (),
    return_var: str = "acc",
    fp_bits: int = 64,
) -> Tuple[Module, object]:
    """Assemble ``for (i = 0; i < n; i++) <segments>; return <return_var>``.

    Every accumulator in ``int_accs``/``fp_accs`` is loop-carried.  Returns
    (module, hot function); the function takes a single ``n`` argument.
    ``fp_bits`` selects the kernel's floating point precision (32 or 64) for
    both accumulators and fp arrays — the HLS area model cares.
    """
    fp_type = F32 if fp_bits == 32 else F64
    m = Module(module_name)
    array_map: Dict[str, object] = {}
    for spec in arrays:
        elem = fp_type if spec.fp else I32
        array_map[spec.name] = m.add_global(spec.name, elem, spec.count, spec.init)

    ret_type = fp_type if return_var in fp_accs else I32
    fn = m.add_function(fn_name, [("n", I32)], ret_type)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    header = b.add_block("header")
    body = b.add_block("body")
    latch_to_exit = b.add_block("exit")

    b.set_block(entry)
    b.br(header)

    b.set_block(header)
    i = b.phi(I32, "i")
    state: Dict[str, Value] = {"i": i}
    header_phis: Dict[str, object] = {}
    for name in int_accs:
        phi = b.phi(I32, name)
        header_phis[name] = phi
        state[name] = phi
    for name in fp_accs:
        phi = b.phi(fp_type, name)
        header_phis[name] = phi
        state[name] = phi
    cond = b.icmp("slt", i, fn.arg("n"))
    b.condbr(cond, body, latch_to_exit)

    ctx = _EmitCtx(
        b=b,
        module=m,
        fn=fn,
        arrays=array_map,
        state=state,
        exit_block=latch_to_exit,
        return_var=return_var,
    )

    b.set_block(body)
    ctx.state = dict(state)
    _emit_segments(ctx, segments)
    body_end = b.block
    i_next = b.add(i, 1)
    b.br(header)

    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(body_end, i_next)
    for name, phi in header_phis.items():
        zero = Constant(fp_type, 0.0) if name in fp_accs else Constant(I32, 0)
        phi.add_incoming(entry, zero)
        phi.add_incoming(body_end, ctx.state.get(name, phi))

    b.set_block(latch_to_exit)
    result_type = fp_type if return_var in fp_accs else I32
    result = b.phi(result_type, "result")
    result.add_incoming(header, header_phis[return_var])
    for block, value in ctx.break_edges:
        result.add_incoming(block, value)
    b.ret(result)
    verify_function(fn)
    return m, fn
