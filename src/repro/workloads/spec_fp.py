"""SPEC FP (and hmmer/soplex) workload stand-ins (Table II, SPEC block).

The floating-point workloads carry the characteristic the paper's energy
discussion highlights: wide FP dataflow with simple control, which is where
the CGRA wins most (cheap FP on the spatial fabric + front-end elision).
"""

from __future__ import annotations

import random

from .base import Workload
from .data import correlated_bits
from .builders import (
    Arith,
    ArraySpec,
    If,
    LoadVal,
    Reset,
    StoreVal,
    build_loop_kernel,
)


def _floats(seed: int, n: int, lo: float = 0.0, hi: float = 4.0):
    rng = random.Random(seed)
    return [lo + rng.random() * (hi - lo) for _ in range(n)]


def _ints(seed: int, n: int, lo: int = 0, hi: int = 255):
    rng = random.Random(seed)
    return [rng.randrange(lo, hi) for _ in range(n)]


# -- 183.equake ---------------------------------------------------------------
# Sparse matrix-vector earthquake kernel: 7 paths total, 100% top-5, one
# branch, 32 memory ops, wide FP ILP.


def _build_equake():
    segments = [
        Reset("facc"),  # each sparse row is independent: no carried FP chain
        LoadVal("K", dst="k0", fp=True, scale=4),
        LoadVal("K", dst="k1", fp=True, scale=4, offset=1),
        LoadVal("K", dst="k2", fp=True, scale=4, offset=2),
        LoadVal("K", dst="k3", fp=True, scale=4, offset=3),
        LoadVal("K", dst="k4", fp=True, scale=4, offset=4),
        LoadVal("K", dst="k5", fp=True, scale=4, offset=5),
        LoadVal("K", dst="k6", fp=True, scale=4, offset=6),
        LoadVal("K", dst="k7", fp=True, scale=4, offset=7),
        LoadVal("K", dst="k8", fp=True, scale=4, offset=8),
        LoadVal("disp", dst="d0", fp=True),
        LoadVal("disp", dst="d1", fp=True, offset=1),
        LoadVal("disp", dst="d2", fp=True, offset=2),
        LoadVal("disp", dst="d3", fp=True, offset=3),
        LoadVal("disp", dst="d4", fp=True, offset=4),
        LoadVal("disp", dst="d5", fp=True, offset=5),
        Arith(6, fp=True, use="k0", chained=False, acc="facc"),
        Arith(6, fp=True, use="k1", chained=False, acc="facc"),
        Arith(6, fp=True, use="k2", chained=False, acc="facc"),
        Arith(4, fp=True, use="k4", chained=False, acc="facc"),
        Arith(4, fp=True, use="k7", chained=False, acc="facc"),
        Arith(5, fp=True, use="d0", chained=False, acc="facc"),
        Arith(5, fp=True, use="d1", chained=False, acc="facc"),
        Arith(4, fp=True, use="d3", chained=False, acc="facc"),
        Arith(4, fp=True, use="d5", chained=False, acc="facc"),
        StoreVal("force", value="facc"),
        LoadVal("force", dst="f1", fp=True, offset=1),
        Arith(6, fp=True, use="f1", chained=False, acc="facc"),
        StoreVal("force", value="facc", offset=1),
        StoreVal("force", value="facc", offset=2),
        If(("mod", "i", 512, 44), then=[Arith(8, fp=True, acc="facc")], els=[]),
    ]
    m, fn = build_loop_kernel(
        "equake",
        "smvp",
        segments,
        arrays=[
            ArraySpec("K", 4096, fp=True, init=_floats(183, 4096)),
            ArraySpec("disp", 1024, fp=True, init=_floats(184, 1024)),
            ArraySpec("force", 1024, fp=True),
        ],
        int_accs=("acc",),
        fp_accs=("facc",),
        return_var="facc",
    )
    return m, fn, [500]


EQUAKE = Workload(
    name="183.equake",
    suite="spec",
    description="Seismic sparse matrix-vector product",
    build=_build_equake,
    flavor="fp",
    expected={"paths": 7, "cov5": 100, "ins": 88, "branches": 1, "mem": 32, "overlap": 1},
)


# -- 444.namd -------------------------------------------------------------------
# Pairwise non-bonded force inner loop: big FP body (90 ops), only 2 paths in
# the top set, many live values (18 in / 10 out in the paper).


def _build_namd():
    segments = [
        Reset("fx"),
        Reset("fy"),
        LoadVal("pos", dst="x", fp=True, scale=2),
        LoadVal("pos", dst="y", fp=True, scale=2, offset=1),
        LoadVal("charge", dst="q", fp=True),
        Arith(14, fp=True, use="x", chained=False, acc="fx"),
        Arith(14, fp=True, use="y", chained=False, acc="fy"),
        Arith(12, fp=True, use="q", chained=False, acc="fe"),
        If(
            ("fgt", "q", 3.6),  # cutoff test: rarely excluded pair
            then=[Arith(10, fp=True, acc="fe", chained=False)],
            els=[
                Arith(12, fp=True, acc="fx", chained=False),
                Arith(12, fp=True, acc="fy", chained=False),
                StoreVal("forces", value="fx"),
                StoreVal("forces", value="fy", offset=1),
            ],
        ),
        If(("mod", "i", 256, 100), then=[Arith(6, fp=True, acc="fe")], els=[]),
    ]
    m, fn = build_loop_kernel(
        "namd",
        "calc_pair_energy_fullelect",
        segments,
        arrays=[
            ArraySpec("pos", 2048, fp=True, init=_floats(444, 2048)),
            ArraySpec("charge", 1024, fp=True, init=_floats(445, 1024)),
            ArraySpec("forces", 1024, fp=True),
        ],
        fp_accs=("fx", "fy", "fe"),
        return_var="fe",
    )
    return m, fn, [450]


NAMD = Workload(
    name="444.namd",
    suite="spec",
    description="Molecular dynamics pairwise force inner loop",
    build=_build_namd,
    flavor="fp",
    expected={"paths": 57, "cov5": 86, "ins": 90, "branches": 2, "mem": 14, "overlap": 2},
)


# -- 450.soplex ---------------------------------------------------------------------
# Simplex pricing loop: small FP body, 93% top-5 coverage.


def _build_soplex():
    segments = [
        LoadVal("coef", dst="c", fp=True),
        Arith(9, fp=True, use="c", acc="facc", chained=False),
        If(
            ("fgt", "c", 0.4),
            then=[Arith(7, fp=True, acc="facc"), StoreVal("price", value="facc")],
            els=[Arith(3, fp=True, acc="facc")],
        ),
        If(("mod", "i", 256, 9), then=[Arith(5, fp=True, acc="facc"), LoadVal("price", dst="p2", fp=True, offset=1)], els=[]),
    ]
    # ~11% of coefficients fall below the pivot threshold, in clusters
    low = correlated_bits(450, 1024, bit=0, p_set=0.11, mean_run=8)
    rng = random.Random(451)
    coefs = [
        rng.random() * 0.39 if (v & 1) else 0.41 + rng.random() * 1.6
        for v in low
    ]
    m, fn = build_loop_kernel(
        "soplex",
        "maxdelta_pricing",
        segments,
        arrays=[
            ArraySpec("coef", 1024, fp=True, init=coefs),
            ArraySpec("price", 512, fp=True),
        ],
        fp_accs=("facc",),
        return_var="facc",
    )
    return m, fn, [700]


SOPLEX = Workload(
    name="450.soplex",
    suite="spec",
    description="Simplex LP pricing scan",
    build=_build_soplex,
    flavor="fp",
    expected={"paths": 67, "cov5": 93, "ins": 33, "branches": 2, "mem": 7, "overlap": 3},
)


# -- 453.povray ----------------------------------------------------------------------
# Ray-object intersection: large FP body (137 ops) with 8 mostly-biased
# tests, 88% top-5 coverage, strong block overlap (21).


def _build_povray():
    segments = [
        Reset("facc", value=1.0),  # per-ray: no dependence across rays
        LoadVal("ray", dst="dx", fp=True, scale=2),
        LoadVal("ray", dst="dy", fp=True, scale=2, offset=1),
        LoadVal("obj", dst="r2", fp=True),
        Arith(16, fp=True, use="dx", chained=False, acc="facc"),
        Arith(16, fp=True, use="dy", chained=False, acc="facc"),
        If(("fgt", "r2", 0.25), then=[Arith(14, fp=True, use="r2", chained=False, acc="facc")], els=[Arith(4, fp=True, acc="facc")]),
        If(("fgt", "dx", 0.2), then=[Arith(10, fp=True, acc="facc", chained=False)], els=[Arith(5, fp=True, acc="facc")]),
        If(("fgt", "dy", 0.15), then=[Arith(9, fp=True, acc="facc", chained=False)], els=[Arith(4, fp=True, acc="facc")]),
        If(("mod", "i", 32, 3), then=[StoreVal("hits", value="facc"), Arith(6, fp=True, acc="facc")], els=[]),
        If(("fgt", "facc", 1e12), then=[Arith(3, fp=True, acc="facc")], els=[Arith(2, fp=True, acc="facc")]),
        If(("mod", "i", 64, 11), then=[Arith(8, fp=True, acc="facc"), LoadVal("obj", dst="o2", fp=True, offset=5)], els=[]),
        If(("mod", "i", 128, 77), then=[Arith(7, fp=True, acc="facc")], els=[]),
    ]
    m, fn = build_loop_kernel(
        "povray",
        "intersect_sphere",
        segments,
        arrays=[
            ArraySpec("ray", 2048, fp=True, init=_floats(453, 2048, 0.21, 1.0)),
            ArraySpec("obj", 1024, fp=True, init=_floats(454, 1024, 0.26, 3.0)),
            ArraySpec("hits", 256, fp=True),
        ],
        fp_accs=("facc",),
        return_var="facc",
    )
    return m, fn, [550]


POVRAY = Workload(
    name="453.povray",
    suite="spec",
    description="Ray-sphere intersection batch",
    build=_build_povray,
    flavor="fp",
    expected={"paths": 375, "cov5": 88, "ins": 137, "branches": 8, "mem": 17, "overlap": 21},
)


# -- 456.hmmer -------------------------------------------------------------------------
# Profile HMM Viterbi inner loop: integer DP with max-reductions, 100% top-5
# coverage, very memory heavy (35 mem ops in the paper's path).


def _build_hmmer():
    segments = [
        LoadVal("mmx", dst="m0"),
        LoadVal("mmx", dst="m1", offset=1),
        LoadVal("imx", dst="i0"),
        LoadVal("imx", dst="i1", offset=1),
        LoadVal("dmx", dst="d0"),
        LoadVal("dmx", dst="d1", offset=1),
        LoadVal("tsc", dst="t0"),
        LoadVal("tsc", dst="t1", offset=1),
        LoadVal("tsc", dst="t2", offset=2),
        LoadVal("tsc", dst="t3", offset=3),
        Arith(6, use="m0", chained=False, ops=("add", "smax")),
        Arith(5, use="m1", chained=False, ops=("add", "smax")),
        Arith(6, use="i0", chained=False, ops=("add", "smax")),
        Arith(5, use="i1", chained=False, ops=("add", "smax")),
        Arith(6, use="d0", chained=False, ops=("add", "smax")),
        Arith(4, use="t0", chained=False, ops=("add", "smax")),
        StoreVal("mmx", value="acc", offset=1),
        StoreVal("mmx", value="acc", offset=2),
        LoadVal("msc", dst="sc"),
        LoadVal("isc", dst="sc2"),
        Arith(5, use="sc", chained=False, ops=("add", "smax")),
        Arith(4, use="sc2", chained=False, ops=("add", "smax")),
        StoreVal("imx", value="acc", offset=1),
        Arith(4, use="t1", chained=False, ops=("add", "smax")),
        StoreVal("dmx", value="acc", offset=1),
        Arith(3, use="t3", chained=False, ops=("add", "smax")),
        StoreVal("dmx", value="acc", offset=2),
        If(("mod", "i", 1024, 5), then=[Arith(6), StoreVal("xmx", value="acc")], els=[]),
    ]
    m, fn = build_loop_kernel(
        "hmmer",
        "p7_viterbi_row",
        segments,
        arrays=[
            ArraySpec("mmx", 1024, init=_ints(456, 1024)),
            ArraySpec("imx", 1024, init=_ints(457, 1024)),
            ArraySpec("dmx", 1024, init=_ints(458, 1024)),
            ArraySpec("tsc", 1024, init=_ints(459, 1024)),
            ArraySpec("msc", 1024, init=_ints(460, 1024)),
            ArraySpec("isc", 1024, init=_ints(461, 1024)),
            ArraySpec("xmx", 256),
        ],
    )
    return m, fn, [600]


HMMER = Workload(
    name="456.hmmer",
    suite="spec",
    description="Profile HMM Viterbi row (integer DP)",
    build=_build_hmmer,
    expected={"paths": 61, "cov5": 100, "ins": 105, "branches": 6, "mem": 35, "overlap": 2},
)


# -- 470.lbm ---------------------------------------------------------------------------------
# Lattice-Boltzmann stream-and-collide: the paper's biggest straight-line FP
# body (232 ops, 45 mem ops, only 2 paths).  Double precision everywhere,
# which is also why lbm tops the HLS area table (72% of the Cyclone V).


def _build_lbm():
    # D3Q19-flavoured stencil: 19 distribution loads per cell
    loads = [
        LoadVal("grid", dst="f%d" % k, fp=True, scale=8, offset=k) for k in range(19)
    ]
    collide = []
    for k in range(19):
        collide.append(
            Arith(6, fp=True, use="f%d" % k, chained=False, acc="rho")
        )
    streams = [
        StoreVal("next", value="rho", offset=k) for k in range(12)
    ] + [
        StoreVal("next", value="ux", offset=12),
        StoreVal("next", value="uy", offset=13),
    ]
    segments = (
        [Reset("rho"), Reset("ux"), Reset("uy")]
        + loads
        + collide
        + [
            Arith(24, fp=True, acc="rho", chained=False),
            Arith(18, fp=True, acc="ux", use="f1", chained=False),
            Arith(18, fp=True, acc="uy", use="f2", chained=False),
        ]
        + streams
        + [
            If(("mod", "i", 2048, 9), then=[Arith(10, fp=True, acc="rho")], els=[]),
        ]
    )
    m, fn = build_loop_kernel(
        "lbm",
        "stream_collide",
        segments,
        arrays=[
            ArraySpec("grid", 8192, fp=True, init=_floats(470, 8192, 0.1, 1.1)),
            ArraySpec("next", 8192, fp=True),
        ],
        fp_accs=("rho", "ux", "uy"),
        return_var="rho",
    )
    return m, fn, [300]


LBM = Workload(
    name="470.lbm",
    suite="spec",
    description="Lattice-Boltzmann stream-and-collide cell update",
    build=_build_lbm,
    flavor="fp",
    expected={"paths": 2, "cov5": 100, "ins": 232, "branches": 2, "mem": 45, "overlap": 2},
)


# -- 482.sphinx3 ----------------------------------------------------------------------------------
# Gaussian mixture scoring: tiny FP body (30 ops), 100% top-5 coverage.


def _build_sphinx3():
    segments = [
        Reset("facc"),
        LoadVal("mean", dst="mu", fp=True),
        LoadVal("feat", dst="x", fp=True),
        Arith(9, fp=True, use="mu", chained=False, acc="facc"),
        Arith(7, fp=True, use="x", chained=False, acc="facc"),
        If(("mod", "i", 1024, 7), then=[StoreVal("score", value="facc"), Arith(4, fp=True, acc="facc")], els=[]),
    ]
    m, fn = build_loop_kernel(
        "sphinx3",
        "mgau_eval",
        segments,
        arrays=[
            ArraySpec("mean", 1024, fp=True, init=_floats(482, 1024)),
            ArraySpec("feat", 1024, fp=True, init=_floats(483, 1024)),
            ArraySpec("score", 256, fp=True),
        ],
        fp_accs=("facc",),
        return_var="facc",
    )
    return m, fn, [800]


SPHINX3 = Workload(
    name="482.sphinx3",
    suite="spec",
    description="Gaussian mixture model scoring",
    build=_build_sphinx3,
    flavor="fp",
    expected={"paths": 6, "cov5": 100, "ins": 30, "branches": 1, "mem": 6, "overlap": 1},
)


SPEC_FP_WORKLOADS = [EQUAKE, NAMD, SOPLEX, POVRAY, HMMER, LBM, SPHINX3]
