"""SPEC INT workload stand-ins (Table II, top block).

Each kernel reproduces the *control-flow shape* of the paper's hot function
for that benchmark: path population, top-5 coverage, path size, branch
count, memory density and ILP character.  The ``expected`` dict on each
:class:`Workload` carries the paper's Table II row (C1..C8) the kernel is
shaped after; absolute path counts are scaled down with the inputs.
"""

from __future__ import annotations

import random

from .base import Workload
from .data import correlated_bits
from .builders import (
    Arith,
    ArraySpec,
    BreakIf,
    If,
    LoadVal,
    Reset,
    StoreVal,
    build_loop_kernel,
)


def _ints(seed: int, n: int, lo: int = 0, hi: int = 255):
    rng = random.Random(seed)
    return [rng.randrange(lo, hi) for _ in range(n)]


# -- 164.gzip -----------------------------------------------------------------
# LZ77-style longest-match scan: a byte-compare loop with a few match-length
# classes.  Few paths (80), high top-5 coverage (90), small body (33 ops).


def _build_gzip():
    segments = [
        LoadVal("window", dst="cur"),
        LoadVal("window", dst="ahead", offset=1),
        Arith(4, use="cur"),
        If(
            ("bit", "cur", 0),
            then=[Arith(6, use="ahead"), LoadVal("window", dst="m2", offset=7)],
            els=[Arith(3)],
        ),
        If(
            ("mod", "i", 4, 0),
            then=[Arith(5, use="ahead"), StoreVal("hash", value="acc")],
            els=[Arith(2)],
        ),
        If(("mod", "i", 64, 3), then=[Arith(7)], els=[]),
        If(("gt", "acc", 1 << 28), then=[Arith(2)], els=[Arith(1)]),
    ]
    # compressible input: match/literal decisions come in long runs
    data = correlated_bits(164, 1024, bit=0, p_set=0.9, mean_run=24)
    m, fn = build_loop_kernel(
        "gzip",
        "deflate_longest_match",
        segments,
        arrays=[
            ArraySpec("window", 1024, init=data),
            ArraySpec("hash", 256),
        ],
    )
    return m, fn, [640]


GZIP = Workload(
    name="164.gzip",
    suite="spec",
    description="LZ77 longest-match scan (deflate)",
    build=_build_gzip,
    expected={"paths": 80, "cov5": 90, "ins": 33, "branches": 4, "mem": 4, "overlap": 6},
)


# -- 175.vpr --------------------------------------------------------------------
# Placement cost update: the *hottest* path is a tiny early-out (the paper
# notes the offloaded region is only ~7 ops and gains nothing); colder paths
# do the heavy bounding-box recompute.  Many paths (713), Σ5 = 53.


def _build_vpr():
    segments = [
        LoadVal("nets", dst="net"),
        If(
            ("bit", "net", 0),
            # hot early-out: nothing to update
            then=[Arith(2, use="net")],
            els=[
                LoadVal("coords", dst="x", scale=2),
                LoadVal("coords", dst="y", scale=2, offset=1),
                Arith(9, use="x"),
                If(("bit", "net", 1), then=[Arith(8, use="y")], els=[Arith(5)]),
                If(("bit", "net", 2), then=[Arith(6)], els=[Arith(4)]),
                If(("bit", "net", 3), then=[LoadVal("coords", dst="z"), Arith(5, use="z")], els=[]),
                If(("mod", "i", 16, 5), then=[Arith(12)], els=[]),
                StoreVal("cost", value="acc"),
                LoadVal("cost", dst="c2", offset=3),
                Arith(4, use="c2"),
                If(("bit", "c2", 4), then=[StoreVal("cost", value="acc", offset=1)], els=[]),
                If(("bit", "c2", 2), then=[Arith(3)], els=[Arith(2)]),
                If(("bit", "x", 5), then=[Arith(5)], els=[]),
            ],
        ),
    ]
    # ~72% of nets take the tiny early-out path, and affected nets cluster
    nets = correlated_bits(175, 512, bit=0, p_set=0.72, mean_run=16)
    m, fn = build_loop_kernel(
        "vpr",
        "update_bb_cost",
        segments,
        arrays=[
            ArraySpec("nets", 512, init=nets),
            ArraySpec("coords", 1024, init=_ints(176, 1024)),
            ArraySpec("cost", 256),
        ],
    )
    return m, fn, [900]


VPR = Workload(
    name="175.vpr",
    suite="spec",
    description="FPGA placement incremental bounding-box cost",
    build=_build_vpr,
    expected={"paths": 713, "cov5": 53, "ins": 80, "branches": 8, "mem": 21, "overlap": 2},
)


# -- 179.art ---------------------------------------------------------------------
# ART neural-net F1 layer scan: tiny body (24 ops), inherently sequential
# (each step extends one dependence chain), two data branches, 74% top-5.


def _build_art():
    segments = [
        LoadVal("f1", dst="w"),
        Arith(8, use="w", chained=True),  # serial: the paper calls art sequential
        If(
            ("bit", "w", 3),
            then=[Arith(5, chained=True), LoadVal("f1", dst="w2", offset=2), Arith(2, use="w2")],
            els=[Arith(4, chained=True)],
        ),
        If(("mod", "i", 32, 7), then=[StoreVal("y", value="acc"), Arith(3)], els=[]),
    ]
    weights = correlated_bits(179, 2048, bit=3, p_set=0.8, mean_run=16)
    m, fn = build_loop_kernel(
        "art",
        "match_f1_layer",
        segments,
        arrays=[ArraySpec("f1", 2048, init=weights), ArraySpec("y", 256)],
    )
    return m, fn, [1400]


ART = Workload(
    name="179.art",
    suite="spec",
    description="Adaptive resonance theory F1-layer match (sequential)",
    build=_build_art,
    expected={"paths": 1446, "cov5": 74, "ins": 24, "branches": 2, "mem": 7, "overlap": 12},
)


# -- 181.mcf ------------------------------------------------------------------------
# Network-simplex arc scan: pointer-chasing loads feeding the branch
# (Mem=>Branch), small body, 87% top-5 coverage.


def _build_mcf_2000():
    segments = [
        LoadVal("arcs", dst="arc"),
        LoadVal("nodes", dst="pot", index="arc"),  # dependent load chain
        Arith(6, use="pot", chained=True),
        If(
            ("bit", "arc", 2),  # arc status is the correlated stream
            then=[Arith(6, use="pot"), StoreVal("flow", value="acc")],
            els=[Arith(3)],
        ),
        If(("mod", "i", 128, 11), then=[Arith(8), LoadVal("nodes", dst="n2", offset=5)], els=[]),
    ]
    arcs = correlated_bits(181, 1024, bit=2, p_set=0.67, mean_run=12)
    m, fn = build_loop_kernel(
        "mcf2000",
        "primal_bea_mpp",
        segments,
        arrays=[
            ArraySpec("arcs", 1024, init=arcs),
            ArraySpec("nodes", 1024, init=_ints(182, 1024)),
            ArraySpec("flow", 512),
        ],
    )
    return m, fn, [800]


MCF_2000 = Workload(
    name="181.mcf",
    suite="spec",
    description="Network simplex arc scan (pointer chasing)",
    build=_build_mcf_2000,
    expected={"paths": 48, "cov5": 87, "ins": 30, "branches": 2, "mem": 7, "overlap": 2},
)


# -- 186.crafty -------------------------------------------------------------------------
# Chess move evaluation: a cascade of near-50/50 data-dependent tests over
# board bits.  Path population explodes (37K in the paper), top-5 coverage
# collapses to 23%, and path blocks overlap heavily (C8 = 31).


def _build_crafty():
    segments = [
        LoadVal("board", dst="sq"),
        Arith(3, use="sq"),
        If(("bit", "sq", 0), then=[Arith(4, chained=False)], els=[Arith(3, chained=False)]),
        If(("bit", "sq", 1), then=[Arith(3, chained=False), LoadVal("attack", dst="a")], els=[Arith(2, chained=False)]),
        If(("bit", "sq", 2), then=[Arith(4, chained=False)], els=[Arith(2, chained=False)]),
        If(("bit", "sq", 3), then=[Arith(2, chained=False)], els=[Arith(4, chained=False)]),
        If(("bit", "sq", 4), then=[Arith(3, chained=False)], els=[Arith(3, chained=False)]),
        If(("bit", "sq", 5), then=[Arith(2, chained=False), StoreVal("scores", value="acc")], els=[Arith(2, chained=False)]),
        If(("mod", "i", 256, 13), then=[Arith(5)], els=[]),
    ]
    m, fn = build_loop_kernel(
        "crafty",
        "evaluate_position",
        segments,
        arrays=[
            ArraySpec("board", 2048, init=_ints(186, 2048)),
            ArraySpec("attack", 512, init=_ints(187, 512)),
            ArraySpec("scores", 256),
        ],
    )
    return m, fn, [1200]


CRAFTY = Workload(
    name="186.crafty",
    suite="spec",
    description="Chess position evaluation (bit-test cascade)",
    build=_build_crafty,
    expected={"paths": 37000, "cov5": 23, "ins": 49, "branches": 7, "mem": 4, "overlap": 31},
)


# -- 197.parser ---------------------------------------------------------------------------
# Link-grammar dictionary walk: a handful of paths (10), 91% top-5 coverage,
# serial chain character.


def _build_parser():
    segments = [
        LoadVal("dict", dst="w"),
        Arith(9, use="w", chained=True),
        If(
            ("bit", "w", 6),
            then=[Arith(6, chained=True), LoadVal("dict", dst="w2", offset=3), Arith(3, use="w2")],
            els=[Arith(4, chained=True)],
        ),
        If(("mod", "i", 512, 1), then=[StoreVal("links", value="acc"), Arith(4)], els=[]),
        BreakIf(("gt", "acc", 1 << 29)),
    ]
    words = correlated_bits(197, 1024, bit=6, p_set=0.87, mean_run=20)
    m, fn = build_loop_kernel(
        "parser",
        "match_disjuncts",
        segments,
        arrays=[ArraySpec("dict", 1024, init=words), ArraySpec("links", 256)],
    )
    return m, fn, [700]


PARSER = Workload(
    name="197.parser",
    suite="spec",
    description="Link-grammar disjunct matching",
    build=_build_parser,
    expected={"paths": 10, "cov5": 91, "ins": 33, "branches": 3, "mem": 6, "overlap": 2},
)


# -- 401.bzip2 -------------------------------------------------------------------------------
# Burrows-Wheeler sorting inner loop: very large path population (54K) with
# wildly varying path sizes (29..371 ops in the paper's top five) and only
# 18% top-5 coverage.  Asymmetric diamond arms create the size variance.


def _build_bzip2():
    big_arm = [
        LoadVal("block", dst="b1", offset=1),
        LoadVal("block", dst="b2", offset=2),
        Arith(28, use="b1", chained=False),
        Arith(22, use="b2", chained=False),
        StoreVal("quadrant", value="acc"),
        LoadVal("quadrant", dst="q", offset=4),
        Arith(18, use="q", chained=False),
        StoreVal("quadrant", value="acc", offset=1),
    ]
    segments = [
        LoadVal("block", dst="c"),
        Arith(4, use="c"),
        If(("bit", "c", 0), then=[Arith(6)], els=[Arith(3)]),
        If(("bit", "c", 1), then=list(big_arm), els=[Arith(5)]),
        If(("bit", "c", 2), then=[Arith(9, chained=False)], els=[Arith(2)]),
        If(("bit", "c", 3), then=[Arith(7)], els=[]),
        If(("bit", "c", 4), then=[LoadVal("block", dst="c4", offset=9), Arith(8, use="c4")], els=[Arith(3)]),
        If(("bit", "c", 5), then=[Arith(6)], els=[Arith(4)]),
        If(("mod", "i", 64, 17), then=[Arith(11), StoreVal("ptrs", value="acc")], els=[]),
    ]
    m, fn = build_loop_kernel(
        "bzip2",
        "main_sort_inner",
        segments,
        arrays=[
            ArraySpec("block", 2048, init=_ints(401, 2048)),
            ArraySpec("quadrant", 512),
            ArraySpec("ptrs", 256),
        ],
    )
    return m, fn, [1000]


BZIP2 = Workload(
    name="401.bzip2",
    suite="spec",
    description="Burrows-Wheeler block-sort inner loop",
    build=_build_bzip2,
    expected={"paths": 54000, "cov5": 18, "ins": 207, "branches": 15, "mem": 29, "overlap": 15},
)


# -- 403.gcc ----------------------------------------------------------------------------------
# RTL liveness update: the paper's no-ILP workload — one long serial
# dependence chain with dependent loads; the oracle gains nothing.


def _build_gcc():
    segments = [
        LoadVal("insn", dst="r"),
        LoadVal("defs", dst="d", index="r"),  # dependent load
        Arith(12, use="d", chained=True),  # pure serial chain: no ILP
        If(
            ("bit", "r", 1),  # the insn stream is the correlated signal
            then=[Arith(9, chained=True), StoreVal("live", value="acc")],
            els=[Arith(6, chained=True)],
        ),
        If(("mod", "i", 128, 9), then=[Arith(8, chained=True), LoadVal("defs", dst="d2", offset=7)], els=[]),
        If(("mod", "i", 512, 33), then=[Arith(5, chained=True)], els=[]),
    ]
    regs = correlated_bits(403, 1024, bit=1, p_set=0.83, mean_run=16)
    m, fn = build_loop_kernel(
        "gcc",
        "propagate_block",
        segments,
        arrays=[
            ArraySpec("insn", 1024, init=regs),
            ArraySpec("defs", 1024, init=_ints(404, 1024)),
            ArraySpec("live", 256),
        ],
    )
    return m, fn, [800]


GCC = Workload(
    name="403.gcc",
    suite="spec",
    description="RTL dataflow propagation (serial, no ILP)",
    build=_build_gcc,
    expected={"paths": 21, "cov5": 89, "ins": 43, "branches": 4, "mem": 6, "overlap": 3},
)


# -- 429.mcf ------------------------------------------------------------------------------------
# CPU2006 mcf: same pointer-chasing shape as 181.mcf, smaller body (21 ops).


def _build_mcf_2006():
    segments = [
        LoadVal("tree", dst="node"),
        LoadVal("basket", dst="cost", index="node"),
        Arith(4, use="cost", chained=True),
        If(
            ("bit", "node", 1),  # tree labels are the correlated stream
            then=[Arith(4, use="cost"), StoreVal("perm", value="acc")],
            els=[Arith(2)],
        ),
        If(("mod", "i", 256, 19), then=[Arith(6), LoadVal("basket", dst="c2", offset=2)], els=[]),
    ]
    nodes = correlated_bits(429, 1024, bit=1, p_set=0.67, mean_run=12)
    m, fn = build_loop_kernel(
        "mcf2006",
        "refresh_potential",
        segments,
        arrays=[
            ArraySpec("tree", 1024, init=nodes),
            ArraySpec("basket", 1024, init=_ints(430, 1024)),
            ArraySpec("perm", 256),
        ],
    )
    return m, fn, [750]


MCF_2006 = Workload(
    name="429.mcf",
    suite="spec",
    description="Network simplex potential refresh",
    build=_build_mcf_2006,
    expected={"paths": 41, "cov5": 88, "ins": 21, "branches": 2, "mem": 6, "overlap": 2},
)


# -- 458.sjeng --------------------------------------------------------------------------------------
# Chess search: like crafty but with even more unbiased tests (9 branches in
# the hot path, 45K paths, 20% top-5, overlap 43).


def _build_sjeng():
    segments = [
        LoadVal("pieces", dst="p"),
        Arith(2, use="p"),
        If(("bit", "p", 0), then=[Arith(3, chained=False)], els=[Arith(2, chained=False)]),
        If(("bit", "p", 1), then=[Arith(2, chained=False)], els=[Arith(3, chained=False)]),
        If(("bit", "p", 2), then=[Arith(3, chained=False), LoadVal("threat", dst="th")], els=[Arith(2, chained=False)]),
        If(("bit", "p", 3), then=[Arith(2, chained=False)], els=[Arith(2, chained=False)]),
        If(("bit", "p", 4), then=[Arith(3, chained=False)], els=[Arith(1, chained=False)]),
        If(("bit", "p", 5), then=[Arith(2, chained=False)], els=[Arith(3, chained=False)]),
        If(("bit", "p", 6), then=[Arith(1, chained=False), StoreVal("hist", value="acc")], els=[Arith(2, chained=False)]),
        If(("bit", "p", 7), then=[Arith(2, chained=False)], els=[Arith(1, chained=False)]),
        If(("mod", "i", 512, 3), then=[Arith(4)], els=[]),
    ]
    m, fn = build_loop_kernel(
        "sjeng",
        "std_eval",
        segments,
        arrays=[
            ArraySpec("pieces", 2048, init=_ints(458, 2048)),
            ArraySpec("threat", 512, init=_ints(459, 512)),
            ArraySpec("hist", 256),
        ],
    )
    return m, fn, [1400]


SJENG = Workload(
    name="458.sjeng",
    suite="spec",
    description="Chess search evaluation (many unbiased branches)",
    build=_build_sjeng,
    expected={"paths": 45000, "cov5": 20, "ins": 50, "branches": 9, "mem": 8, "overlap": 43},
)


# -- 464.h264ref ---------------------------------------------------------------------------------------
# Motion-estimation SAD loop: moderate body, biased branches, 80% top-5.


def _build_h264ref():
    segments = [
        Reset("acc"),  # each SAD block is independent
        LoadVal("ref", dst="rp"),
        LoadVal("cur", dst="cp"),
        Arith(10, use="rp", chained=False),
        Arith(6, use="cp", chained=False),
        If(
            ("bit", "rp", 5),
            then=[Arith(8, chained=False), LoadVal("ref", dst="r2", offset=16)],
            els=[Arith(4)],
        ),
        If(("mod", "i", 16, 15), then=[StoreVal("sad", value="acc"), Arith(5)], els=[]),
        If(("gt", "acc", 1 << 27), then=[Arith(3)], els=[Arith(2)]),
        If(("mod", "i", 128, 2), then=[Arith(6), LoadVal("cur", dst="c2", offset=8)], els=[]),
    ]
    ref = correlated_bits(464, 2048, bit=5, p_set=0.86, mean_run=24)
    m, fn = build_loop_kernel(
        "h264ref",
        "setup_fast_full_pel_search",
        segments,
        arrays=[
            ArraySpec("ref", 2048, init=ref),
            ArraySpec("cur", 2048, init=_ints(465, 2048)),
            ArraySpec("sad", 256),
        ],
    )
    return m, fn, [900]


H264REF = Workload(
    name="464.h264ref",
    suite="spec",
    description="H.264 motion estimation SAD",
    build=_build_h264ref,
    expected={"paths": 43, "cov5": 80, "ins": 49, "branches": 4, "mem": 9, "overlap": 2},
)


SPEC_INT_WORKLOADS = [
    GZIP,
    VPR,
    ART,
    MCF_2000,
    CRAFTY,
    PARSER,
    BZIP2,
    GCC,
    MCF_2006,
    SJENG,
    H264REF,
]
