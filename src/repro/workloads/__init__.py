"""The 29-workload synthetic suite standing in for SPEC, PARSEC and PERFECT.

Use :func:`get` to fetch a workload by its paper name (e.g. ``"470.lbm"``),
:func:`all_workloads` for the full suite in Table II order, and
:func:`repro.workloads.base.profile_workload` to build+profile one.
"""

from __future__ import annotations

from typing import List

from .base import ProfiledWorkload, Workload, clear_profile_cache, profile_workload
from .builders import (
    Arith,
    ArraySpec,
    BreakIf,
    If,
    LoadVal,
    Loop,
    Reset,
    StoreVal,
    build_loop_kernel,
)
from .spec_int import SPEC_INT_WORKLOADS
from .spec_fp import SPEC_FP_WORKLOADS
from .parsec_perfect import PARSEC_PERFECT_WORKLOADS

#: Table II presentation order: SPEC INT+FP (numerically), then
#: PARSEC/PERFECT alphabetically.
_SPEC_ORDER = [
    "164.gzip",
    "175.vpr",
    "179.art",
    "181.mcf",
    "183.equake",
    "186.crafty",
    "197.parser",
    "401.bzip2",
    "403.gcc",
    "429.mcf",
    "444.namd",
    "450.soplex",
    "453.povray",
    "456.hmmer",
    "458.sjeng",
    "464.h264ref",
    "470.lbm",
    "482.sphinx3",
]
_PARSEC_PERFECT_ORDER = [
    "blackscholes",
    "bodytrack",
    "dwt53",
    "ferret",
    "fft-2d",
    "fluidanimate",
    "freqmine",
    "sar-backprojection",
    "sar-pfa-interp1",
    "streamcluster",
    "swaptions",
]

_ALL = {
    w.name: w
    for w in SPEC_INT_WORKLOADS + SPEC_FP_WORKLOADS + PARSEC_PERFECT_WORKLOADS
}


def get(name: str) -> Workload:
    """Workload by paper name; raises KeyError with suggestions."""
    try:
        return _ALL[name]
    except KeyError:
        raise KeyError(
            "unknown workload %r; known: %s" % (name, ", ".join(sorted(_ALL)))
        ) from None


def all_names() -> List[str]:
    return _SPEC_ORDER + _PARSEC_PERFECT_ORDER


def all_workloads() -> List[Workload]:
    return [_ALL[n] for n in all_names()]


def suite(name: str) -> List[Workload]:
    """Workloads of one suite: "spec", "parsec" or "perfect"."""
    return [w for w in all_workloads() if w.suite == name]


__all__ = [
    "Arith",
    "ArraySpec",
    "BreakIf",
    "If",
    "LoadVal",
    "Loop",
    "ProfiledWorkload",
    "Reset",
    "StoreVal",
    "Workload",
    "all_names",
    "all_workloads",
    "build_loop_kernel",
    "clear_profile_cache",
    "get",
    "profile_workload",
    "suite",
]
