"""Input-data generators for the workload suite.

Real program inputs have temporal locality: compressible text has long
literal runs, video is smooth, placement nets cluster.  Branch predictors —
and Needle's invocation history table — exploit exactly that.  These
generators produce *correlated* streams for the workloads the paper found
highly predictable, while the pathological trio (blackscholes, bodytrack,
freqmine) keeps i.i.d. data, which is what defeats their predictor in
Fig. 9 ③.
"""

from __future__ import annotations

import random
from typing import List


def iid_ints(seed: int, n: int, lo: int = 0, hi: int = 255) -> List[int]:
    rng = random.Random(seed)
    return [rng.randrange(lo, hi) for _ in range(n)]


def iid_floats(seed: int, n: int, lo: float = 0.0, hi: float = 4.0) -> List[float]:
    rng = random.Random(seed)
    return [lo + rng.random() * (hi - lo) for _ in range(n)]


def correlated_bits(
    seed: int,
    n: int,
    bit: int,
    p_set: float,
    mean_run: int = 16,
) -> List[int]:
    """Bytes whose given bit is set with probability ``p_set`` *in runs*.

    The bit holds its value for geometrically distributed stretches of mean
    ``mean_run`` elements; the other seven bits stay i.i.d. noise.  Accessed
    sequentially, this produces the temporally predictable branch behaviour
    of real inputs.
    """
    rng = random.Random(seed)
    out: List[int] = []
    current = rng.random() < p_set
    for _ in range(n):
        if rng.random() < 1.0 / mean_run:
            # biased re-draw keeps the long-run set fraction at p_set
            current = rng.random() < p_set
        v = rng.randrange(256)
        v = (v | (1 << bit)) if current else (v & ~(1 << bit))
        out.append(v)
    return out


def smooth_floats(
    seed: int,
    n: int,
    lo: float,
    hi: float,
    step: float = 0.05,
) -> List[float]:
    """A reflected random walk inside [lo, hi] — a smooth field.

    Threshold branches over such data flip rarely, like physical quantities
    (densities, velocities) in simulation codes.
    """
    rng = random.Random(seed)
    span = hi - lo
    x = lo + rng.random() * span
    out: List[float] = []
    for _ in range(n):
        x += (rng.random() * 2 - 1) * step * span
        if x < lo:
            x = 2 * lo - x
        if x > hi:
            x = 2 * hi - x
        out.append(x)
    return out


def run_structured_values(
    seed: int,
    n: int,
    choices: List[int],
    mean_run: int = 16,
) -> List[int]:
    """Values drawn from ``choices`` held constant over geometric runs."""
    rng = random.Random(seed)
    out: List[int] = []
    cur = rng.choice(choices)
    for _ in range(n):
        if rng.random() < 1.0 / mean_run:
            cur = rng.choice(choices)
        out.append(cur)
    return out
