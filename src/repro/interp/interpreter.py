"""Concrete interpreter for the mini IR.

Executes modules instruction-by-instruction with LLVM-like semantics
(two's-complement integers, truncating division, parallel φ copies) and
reports dynamic behaviour through a :class:`~repro.interp.events.Tracer`.
This is the stand-in for native execution of the instrumented benchmark
binaries in the paper's toolchain.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Compare,
    CondBranch,
    Gep,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    UnaryOp,
)
from ..ir.module import Module
from ..ir.types import F32, F64, I1, I32, I64, PTR, Type
from ..ir.values import Argument, Constant, GlobalArray, UndefValue, Value
from .events import Tracer
from .memory import Memory


class InterpreterError(Exception):
    """Semantic error during execution (div by zero, bad call...)."""


class FuelExhausted(InterpreterError):
    """The run exceeded its dynamic-instruction budget."""


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer remainder by zero")
    return a - _sdiv(a, b) * b


_INT_BINOP_FNS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "sdiv": _sdiv,
    "srem": _srem,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "lshr": lambda a, b: (a & ((1 << 64) - 1)) >> (b & 63),
    "ashr": lambda a, b: a >> (b & 63),
    "smin": min,
    "smax": max,
}

_FP_BINOP_FNS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b if b != 0.0 else math.inf * (1 if a >= 0 else -1),
    "fmin": min,
    "fmax": max,
}

_ICMP_FNS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: (a & ((1 << 64) - 1)) < (b & ((1 << 64) - 1)),
    "ugt": lambda a, b: (a & ((1 << 64) - 1)) > (b & ((1 << 64) - 1)),
}

_FCMP_FNS = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


class Interpreter:
    """Executes functions of one module over a shared :class:`Memory`."""

    def __init__(
        self,
        module: Module,
        tracer: Optional[Tracer] = None,
        fuel: int = 50_000_000,
    ):
        self.module = module
        self.memory = Memory()
        self.tracer = tracer if tracer is not None else Tracer()
        self.fuel = fuel
        self.executed_instructions = 0
        self.global_base: Dict[GlobalArray, int] = {}
        self._materialise_globals()

    # -- setup -----------------------------------------------------------------

    def _materialise_globals(self) -> None:
        for g in self.module.globals.values():
            base = self.memory.alloc(g.size_bytes)
            self.global_base[g] = base
            if g.init is not None:
                self.memory.write_array(base, g.elem_type, g.init)

    def address_of(self, global_name: str) -> int:
        """Base address of a module global (for writing inputs)."""
        return self.global_base[self.module.get_global(global_name)]

    # -- execution ---------------------------------------------------------------

    def run(self, fn: "Function | str", args: Sequence = ()):
        """Execute ``fn`` with ``args``; returns the function's return value."""
        if isinstance(fn, str):
            fn = self.module.get_function(fn)
        return self._run_function(fn, list(args))

    def _run_function(self, fn: Function, args: List):
        if len(args) != len(fn.args):
            raise InterpreterError(
                "%s expects %d args, got %d" % (fn.name, len(fn.args), len(args))
            )
        env: Dict[Value, object] = {}
        for formal, actual in zip(fn.args, args):
            env[formal] = formal.type.wrap(actual)

        self.tracer.on_function_entry(fn)
        block = fn.entry
        prev: Optional[BasicBlock] = None
        tracer = self.tracer
        memory = self.memory

        while True:
            tracer.on_block(fn, block, prev)

            # φ-nodes: parallel copy from the incoming edge
            phis = block.phis
            if phis:
                staged = []
                for phi in phis:
                    val = phi.incoming_for(prev)
                    if val is None:
                        raise InterpreterError(
                            "phi %%%s in %s has no incoming for %s"
                            % (phi.name, block.name, prev.name if prev else "<entry>")
                        )
                    staged.append((phi, self._eval(val, env)))
                for phi, v in staged:
                    env[phi] = v

            next_block: Optional[BasicBlock] = None
            for inst in block.instructions[len(phis):]:
                self.executed_instructions += 1
                if self.executed_instructions > self.fuel:
                    raise FuelExhausted(
                        "exceeded %d dynamic instructions" % self.fuel
                    )

                if isinstance(inst, BinaryOp):
                    a = self._eval(inst.operands[0], env)
                    b = self._eval(inst.operands[1], env)
                    fn_ = _INT_BINOP_FNS.get(inst.opcode) or _FP_BINOP_FNS[inst.opcode]
                    env[inst] = inst.type.wrap(fn_(a, b))
                elif isinstance(inst, Compare):
                    a = self._eval(inst.operands[0], env)
                    b = self._eval(inst.operands[1], env)
                    table = _ICMP_FNS if inst.opcode == "icmp" else _FCMP_FNS
                    env[inst] = 1 if table[inst.predicate](a, b) else 0
                elif isinstance(inst, Load):
                    addr = self._eval(inst.address, env)
                    tracer.on_memory(fn, "load", addr)
                    env[inst] = memory.read(addr, inst.type)
                elif isinstance(inst, Store):
                    addr = self._eval(inst.address, env)
                    val = self._eval(inst.value, env)
                    tracer.on_memory(fn, "store", addr)
                    memory.write(addr, inst.value.type, val)
                elif isinstance(inst, Gep):
                    base = self._eval(inst.base, env)
                    index = self._eval(inst.index, env)
                    env[inst] = base + index * inst.elem_size
                elif isinstance(inst, Select):
                    c = self._eval(inst.operands[0], env)
                    env[inst] = self._eval(inst.operands[1 if c else 2], env)
                elif isinstance(inst, UnaryOp):
                    env[inst] = self._eval_unop(inst, env)
                elif isinstance(inst, Alloca):
                    env[inst] = memory.alloc(inst.size_bytes)
                elif isinstance(inst, CondBranch):
                    c = self._eval(inst.cond, env)
                    taken = bool(c)
                    tracer.on_branch(fn, block, taken)
                    next_block = inst.true_target if taken else inst.false_target
                    break
                elif isinstance(inst, Branch):
                    next_block = inst.target
                    break
                elif isinstance(inst, Ret):
                    result = (
                        self._eval(inst.value, env) if inst.value is not None else None
                    )
                    tracer.on_function_exit(fn)
                    return result
                elif isinstance(inst, Call):
                    call_args = [self._eval(a, env) for a in inst.operands]
                    result = self._run_function(inst.callee, call_args)
                    if not inst.type.is_void:
                        env[inst] = result
                else:  # pragma: no cover - inventory is closed
                    raise InterpreterError("cannot execute opcode %r" % inst.opcode)

            if next_block is None:
                raise InterpreterError(
                    "block %s in %s fell through without a terminator"
                    % (block.name, fn.name)
                )
            prev, block = block, next_block

    # -- helpers -----------------------------------------------------------------

    def _eval(self, value: Value, env: Dict[Value, object]):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalArray):
            return self.global_base[value]
        if isinstance(value, UndefValue):
            return 0
        try:
            return env[value]
        except KeyError:
            raise InterpreterError(
                "use of %s before definition" % getattr(value, "name", value)
            ) from None

    def _eval_unop(self, inst: UnaryOp, env: Dict[Value, object]):
        a = self._eval(inst.operands[0], env)
        op = inst.opcode
        if op == "fneg":
            return -a
        if op == "fabs":
            return abs(a)
        if op == "fsqrt":
            return math.sqrt(a) if a >= 0 else float("nan")
        if op == "sitofp":
            return float(a)
        if op == "fptosi":
            return inst.type.wrap(int(a))
        if op in ("zext", "sext", "trunc"):
            if op == "zext":
                src_bits = inst.operands[0].type.bits
                return inst.type.wrap(a & ((1 << src_bits) - 1))
            return inst.type.wrap(a)
        raise InterpreterError("cannot execute unop %r" % op)  # pragma: no cover
