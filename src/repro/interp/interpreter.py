"""Concrete interpreter for the mini IR.

Executes modules with LLVM-like semantics (two's-complement integers,
truncating division, parallel φ copies) and reports dynamic behaviour
through a :class:`~repro.interp.events.Tracer`.  This is the stand-in for
native execution of the instrumented benchmark binaries in the paper's
toolchain.

Execution is *closure-compiled*: the first time a function runs, every
instruction is compiled once into a small Python closure ("thunk") with its
operand accessors, opcode implementation and result slot pre-bound, and
each block becomes (φ-copy plan, body thunk list, terminator thunk).  The
hot loop then just walks thunk lists — no per-instruction ``isinstance``
dispatch, no opcode table lookups.  Compiled code is cached per interpreter
instance (thunks close over this interpreter's memory, tracer and global
addresses), which is the right granularity: one profiling run executes each
instruction thousands of times but compiles it once.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Compare,
    CondBranch,
    Gep,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    UnaryOp,
)
from ..ir.module import Module
from ..ir.types import Type
from ..ir.values import Constant, GlobalArray, UndefValue, Value
from ..obs import counter as _obs_counter, enabled as _obs_enabled
from ..resilience.faults import (
    SITE_INTERP_RUN,
    FaultInjected,
    consult as _flt_consult,
    enabled as _flt_enabled,
)
from .events import Tracer
from .memory import Memory


class InterpreterError(Exception):
    """Semantic error during execution (div by zero, bad call...)."""


class FuelExhausted(InterpreterError):
    """The run exceeded its dynamic-instruction budget."""


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer remainder by zero")
    return a - _sdiv(a, b) * b


_INT_BINOP_FNS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "sdiv": _sdiv,
    "srem": _srem,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "lshr": lambda a, b: (a & ((1 << 64) - 1)) >> (b & 63),
    "ashr": lambda a, b: a >> (b & 63),
    "smin": min,
    "smax": max,
}

_FP_BINOP_FNS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b if b != 0.0 else math.inf * (1 if a >= 0 else -1),
    "fmin": min,
    "fmax": max,
}

_ICMP_FNS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: (a & ((1 << 64) - 1)) < (b & ((1 << 64) - 1)),
    "ugt": lambda a, b: (a & ((1 << 64) - 1)) > (b & ((1 << 64) - 1)),
}

_FCMP_FNS = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


class Interpreter:
    """Executes functions of one module over a shared :class:`Memory`."""

    def __init__(
        self,
        module: Module,
        tracer: Optional[Tracer] = None,
        fuel: int = 50_000_000,
    ):
        self.module = module
        self.memory = Memory()
        self.tracer = tracer if tracer is not None else Tracer()
        self.fuel = fuel
        self.executed_instructions = 0
        self.global_base: Dict[GlobalArray, int] = {}
        #: per-function compiled code: block -> (phi_plan, body, term, n_insts)
        self._compiled: Dict[Function, Dict[BasicBlock, tuple]] = {}
        #: return-value cell written by Ret thunks; read immediately after a
        #: terminator signals return, before any other block executes, so
        #: recursive calls cannot clobber a pending value
        self._ret = None
        self._materialise_globals()

    # -- setup -----------------------------------------------------------------

    def _materialise_globals(self) -> None:
        for g in self.module.globals.values():
            base = self.memory.alloc(g.size_bytes)
            self.global_base[g] = base
            if g.init is not None:
                self.memory.write_array(base, g.elem_type, g.init)

    def address_of(self, global_name: str) -> int:
        """Base address of a module global (for writing inputs)."""
        return self.global_base[self.module.get_global(global_name)]

    # -- execution ---------------------------------------------------------------

    def run(self, fn: "Function | str", args: Sequence = ()):
        """Execute ``fn`` with ``args``; returns the function's return value.

        Observability is charged here, at the run boundary, never inside
        the thunk loop: when :mod:`repro.obs` is enabled the aggregate
        instruction count of the whole run is published as one counter
        increment, so the hot loop carries zero instrumentation cost.
        """
        if isinstance(fn, str):
            fn = self.module.get_function(fn)
        # chaos site at the run boundary (never inside the thunk loop):
        # proves profiling failures surface as clean workload failures
        if _flt_enabled():
            spec = _flt_consult(SITE_INTERP_RUN, fn.name)
            if spec is not None:
                raise FaultInjected(
                    "injected interpreter fault running %s" % fn.name
                )
        before = self.executed_instructions
        result = self._run_function(fn, list(args))
        if _obs_enabled():
            _obs_counter("interp.runtime.instructions",
                         self.executed_instructions - before,
                         help="instructions executed by live interpreter runs",
                         function=fn.name)
            _obs_counter("interp.runtime.runs", 1,
                         help="top-level interpreter runs", function=fn.name)
        return result

    def _run_function(self, fn: Function, args: List):
        if len(args) != len(fn.args):
            raise InterpreterError(
                "%s expects %d args, got %d" % (fn.name, len(fn.args), len(args))
            )
        env: Dict[Value, object] = {}
        for formal, actual in zip(fn.args, args):
            env[formal] = formal.type.wrap(actual)

        compiled = self._compiled.get(fn)
        if compiled is None:
            compiled = self._compile_function(fn)
            self._compiled[fn] = compiled

        tracer = self.tracer
        on_block = tracer.on_block
        fuel = self.fuel
        tracer.on_function_entry(fn)
        block = fn.entry
        prev: Optional[BasicBlock] = None

        while True:
            on_block(fn, block, prev)
            phi_plan, body, term, n_insts = compiled[block]

            # φ-nodes: parallel copy from the incoming edge
            if phi_plan is not None:
                plan = phi_plan.get(prev)
                if plan is None:
                    self._raise_missing_phi(block, prev)
                if len(plan) == 1:
                    phi, getter = plan[0]
                    env[phi] = getter(env)
                else:
                    staged = [getter(env) for _, getter in plan]
                    for (phi, _), v in zip(plan, staged):
                        env[phi] = v

            # fuel is charged per block (body + terminator); the run aborts
            # before executing the block that would exceed the budget, so
            # completed runs count exactly as many instructions as before
            self.executed_instructions += n_insts
            if self.executed_instructions > fuel:
                raise FuelExhausted(
                    "exceeded %d dynamic instructions" % self.fuel
                )

            for step in body:
                step(env)
            next_block = term(env)
            if next_block is None:
                return self._ret
            prev, block = block, next_block

    # -- closure compilation -------------------------------------------------

    def _raise_missing_phi(self, block: BasicBlock, prev: Optional[BasicBlock]):
        for phi in block.phis:
            if phi.incoming_for(prev) is None:
                raise InterpreterError(
                    "phi %%%s in %s has no incoming for %s"
                    % (phi.name, block.name, prev.name if prev else "<entry>")
                )
        raise InterpreterError(  # pragma: no cover - defensive
            "no φ-copy plan for edge %s -> %s"
            % (prev.name if prev else "<entry>", block.name)
        )

    def _compile_getter(self, value: Value):
        """An ``env -> runtime value`` accessor with constants pre-folded."""
        if isinstance(value, Constant):
            const = value.value
            return lambda env: const
        if isinstance(value, GlobalArray):
            base = self.global_base[value]
            return lambda env: base
        if isinstance(value, UndefValue):
            return lambda env: 0

        def get(env, _v=value):
            try:
                return env[_v]
            except KeyError:
                raise InterpreterError(
                    "use of %s before definition" % getattr(_v, "name", _v)
                ) from None

        return get

    def _compile_function(self, fn: Function) -> Dict[BasicBlock, tuple]:
        return {block: self._compile_block(fn, block) for block in fn.blocks}

    def _compile_block(self, fn: Function, block: BasicBlock) -> tuple:
        getter = self._compile_getter

        # φ-copy plans, one per incoming edge (only edges where every φ has
        # an incoming value; others fall through to the error path)
        phis = block.phis
        phi_plan = None
        if phis:
            phi_plan = {}
            preds = []
            for phi in phis:
                for pred, _val in phi.incoming:
                    if pred not in preds:
                        preds.append(pred)
            for pred in preds:
                incoming = [phi.incoming_for(pred) for phi in phis]
                if any(v is None for v in incoming):
                    continue
                phi_plan[pred] = [
                    (phi, getter(val)) for phi, val in zip(phis, incoming)
                ]

        body = []
        term = None
        n_insts = 0
        for inst in block.instructions:
            if isinstance(inst, Phi):
                continue
            n_insts += 1
            if isinstance(inst, (CondBranch, Branch, Ret)):
                term = self._compile_terminator(fn, block, inst)
                break
            body.append(self._compile_step(fn, inst))
        if term is None:
            def term(env, _b=block, _f=fn):
                raise InterpreterError(
                    "block %s in %s fell through without a terminator"
                    % (_b.name, _f.name)
                )

        return phi_plan, body, term, n_insts

    def _compile_terminator(self, fn: Function, block: BasicBlock, inst):
        if isinstance(inst, CondBranch):
            get_cond = self._compile_getter(inst.cond)
            true_t, false_t = inst.true_target, inst.false_target
            on_branch = self.tracer.on_branch

            def term(env):
                taken = bool(get_cond(env))
                on_branch(fn, block, taken)
                return true_t if taken else false_t

            return term
        if isinstance(inst, Branch):
            target = inst.target
            return lambda env: target
        # Ret: stash the value, signal return with None
        get_val = (
            self._compile_getter(inst.value) if inst.value is not None else None
        )
        on_exit = self.tracer.on_function_exit

        def term(env):
            self._ret = get_val(env) if get_val is not None else None
            on_exit(fn)
            return None

        return term

    def _compile_step(self, fn: Function, inst: Instruction):
        """Compile one non-terminator instruction into an ``env -> None``
        thunk with operands, opcode implementation and tracer pre-bound."""
        getter = self._compile_getter
        if isinstance(inst, BinaryOp):
            ga = getter(inst.operands[0])
            gb = getter(inst.operands[1])
            op_fn = _INT_BINOP_FNS.get(inst.opcode) or _FP_BINOP_FNS[inst.opcode]
            t = inst.type
            # inline Type.wrap's normalisation: it runs once per dynamic
            # binary op, the single hottest site in a profiling run
            if t.is_float:
                def step(env):
                    env[inst] = float(op_fn(ga(env), gb(env)))
            elif t.is_ptr:
                ptr_mask = (1 << 64) - 1

                def step(env):
                    env[inst] = op_fn(ga(env), gb(env)) & ptr_mask
            elif t.is_int and t.bits > 1:
                mask = (1 << t.bits) - 1
                sign = 1 << (t.bits - 1)

                def step(env):
                    env[inst] = ((op_fn(ga(env), gb(env)) & mask) ^ sign) - sign
            else:
                wrap = t.wrap

                def step(env):
                    env[inst] = wrap(op_fn(ga(env), gb(env)))

            return step
        if isinstance(inst, Compare):
            ga = getter(inst.operands[0])
            gb = getter(inst.operands[1])
            table = _ICMP_FNS if inst.opcode == "icmp" else _FCMP_FNS
            cmp_fn = table[inst.predicate]

            def step(env):
                env[inst] = 1 if cmp_fn(ga(env), gb(env)) else 0

            return step
        if isinstance(inst, Load):
            get_addr = getter(inst.address)
            read = self.memory.read
            on_memory = self.tracer.on_memory
            load_type = inst.type

            def step(env):
                addr = get_addr(env)
                on_memory(fn, "load", addr)
                env[inst] = read(addr, load_type)

            return step
        if isinstance(inst, Store):
            get_addr = getter(inst.address)
            get_val = getter(inst.value)
            write = self.memory.write
            on_memory = self.tracer.on_memory
            store_type = inst.value.type

            def step(env):
                addr = get_addr(env)
                val = get_val(env)
                on_memory(fn, "store", addr)
                write(addr, store_type, val)

            return step
        if isinstance(inst, Gep):
            get_base = getter(inst.base)
            get_index = getter(inst.index)
            elem_size = inst.elem_size

            def step(env):
                env[inst] = get_base(env) + get_index(env) * elem_size

            return step
        if isinstance(inst, Select):
            get_cond = getter(inst.operands[0])
            get_true = getter(inst.operands[1])
            get_false = getter(inst.operands[2])

            def step(env):
                # only the chosen arm is evaluated (matches the slow path)
                env[inst] = get_true(env) if get_cond(env) else get_false(env)

            return step
        if isinstance(inst, UnaryOp):
            return self._compile_unop(inst)
        if isinstance(inst, Alloca):
            alloc = self.memory.alloc
            size = inst.size_bytes

            def step(env):
                env[inst] = alloc(size)

            return step
        if isinstance(inst, Call):
            getters = [getter(a) for a in inst.operands]
            callee = inst.callee
            run = self._run_function
            is_void = inst.type.is_void

            def step(env):
                result = run(callee, [g(env) for g in getters])
                if not is_void:
                    env[inst] = result

            return step

        def step(env):  # pragma: no cover - inventory is closed
            raise InterpreterError("cannot execute opcode %r" % inst.opcode)

        return step

    def _compile_unop(self, inst: UnaryOp):
        ga = self._compile_getter(inst.operands[0])
        op = inst.opcode
        if op == "fneg":
            def step(env):
                env[inst] = -ga(env)
        elif op == "fabs":
            def step(env):
                env[inst] = abs(ga(env))
        elif op == "fsqrt":
            def step(env):
                a = ga(env)
                env[inst] = math.sqrt(a) if a >= 0 else float("nan")
        elif op == "sitofp":
            def step(env):
                env[inst] = float(ga(env))
        elif op == "fptosi":
            wrap = inst.type.wrap

            def step(env):
                env[inst] = wrap(int(ga(env)))
        elif op == "zext":
            wrap = inst.type.wrap
            mask = (1 << inst.operands[0].type.bits) - 1

            def step(env):
                env[inst] = wrap(ga(env) & mask)
        elif op in ("sext", "trunc"):
            wrap = inst.type.wrap

            def step(env):
                env[inst] = wrap(ga(env))
        else:
            def step(env):  # pragma: no cover - inventory is closed
                raise InterpreterError("cannot execute unop %r" % op)
        return step

    # -- helpers -----------------------------------------------------------------

    def _eval(self, value: Value, env: Dict[Value, object]):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalArray):
            return self.global_base[value]
        if isinstance(value, UndefValue):
            return 0
        try:
            return env[value]
        except KeyError:
            raise InterpreterError(
                "use of %s before definition" % getattr(value, "name", value)
            ) from None

    def _eval_unop(self, inst: UnaryOp, env: Dict[Value, object]):
        a = self._eval(inst.operands[0], env)
        op = inst.opcode
        if op == "fneg":
            return -a
        if op == "fabs":
            return abs(a)
        if op == "fsqrt":
            return math.sqrt(a) if a >= 0 else float("nan")
        if op == "sitofp":
            return float(a)
        if op == "fptosi":
            return inst.type.wrap(int(a))
        if op in ("zext", "sext", "trunc"):
            if op == "zext":
                src_bits = inst.operands[0].type.bits
                return inst.type.wrap(a & ((1 << src_bits) - 1))
            return inst.type.wrap(a)
        raise InterpreterError("cannot execute unop %r" % op)  # pragma: no cover
