"""Byte-addressed scalar memory for the IR interpreter.

Storage is a map ``address -> (size_bytes, value)``.  Workloads access each
address with a consistent scalar type, which the memory enforces: partially
overlapping accesses of different sizes raise :class:`MemoryError_`, turning
workload bugs into loud failures instead of silent corruption.

The memory supports snapshot/compare, which the undo-log property tests use
to prove that rollback restores externally visible state exactly.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..ir.types import Type


class MemoryError_(Exception):
    """Invalid memory access (unmapped read, mismatched access size...)."""


class Memory:
    """A flat address space with a bump allocator.

    Address 0 is never mapped, so 0 serves as a null pointer.
    """

    #: default base of the allocation arena
    ARENA_BASE = 0x1000

    def __init__(self):
        self._cells: Dict[int, Tuple[int, object]] = {}
        self._brk = self.ARENA_BASE

    # -- allocation -----------------------------------------------------------

    def alloc(self, size_bytes: int, align: int = 8) -> int:
        """Reserve ``size_bytes`` and return the base address."""
        if size_bytes < 0:
            raise MemoryError_("negative allocation")
        base = (self._brk + align - 1) // align * align
        self._brk = base + max(1, size_bytes)
        return base

    # -- scalar access ----------------------------------------------------------

    def write(self, addr: int, type_: Type, value) -> None:
        if addr <= 0:
            raise MemoryError_("store to null/negative address %#x" % addr)
        size = type_.size_bytes
        existing = self._cells.get(addr)
        if existing is not None and existing[0] != size:
            raise MemoryError_(
                "store size mismatch at %#x: %d vs %d bytes"
                % (addr, size, existing[0])
            )
        self._cells[addr] = (size, type_.wrap(value))

    def read(self, addr: int, type_: Type):
        if addr <= 0:
            raise MemoryError_("load from null/negative address %#x" % addr)
        cell = self._cells.get(addr)
        if cell is None:
            # Reading never-written memory yields zero (zero-initialised
            # globals / BSS semantics), matching what the workloads expect.
            return type_.wrap(0)
        size, value = cell
        if size != type_.size_bytes:
            raise MemoryError_(
                "load size mismatch at %#x: %d vs %d bytes"
                % (addr, type_.size_bytes, size)
            )
        return type_.wrap(value)

    def read_raw(self, addr: int) -> Optional[Tuple[int, object]]:
        """Raw cell contents (size, value), or None if unmapped."""
        return self._cells.get(addr)

    def write_raw(self, addr: int, size: int, value) -> None:
        self._cells[addr] = (size, value)

    def erase(self, addr: int) -> None:
        self._cells.pop(addr, None)

    # -- bulk helpers -----------------------------------------------------------

    def write_array(self, base: int, elem_type: Type, values) -> None:
        step = elem_type.size_bytes
        for i, v in enumerate(values):
            self.write(base + i * step, elem_type, v)

    def read_array(self, base: int, elem_type: Type, count: int) -> list:
        step = elem_type.size_bytes
        return [self.read(base + i * step, elem_type) for i in range(count)]

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> Dict[int, Tuple[int, object]]:
        return dict(self._cells)

    def diff(self, other_snapshot: Dict[int, Tuple[int, object]]) -> Dict[int, tuple]:
        """Addresses whose contents differ from ``other_snapshot``."""
        out = {}
        keys = set(self._cells) | set(other_snapshot)
        for addr in keys:
            a = self._cells.get(addr)
            b = other_snapshot.get(addr)
            if a != b:
                out[addr] = (b, a)
        return out

    def __iter__(self) -> Iterator[int]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)
