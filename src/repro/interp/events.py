"""Trace event types and collecting tracers for the interpreter.

The interpreter reports execution through a tracer object; any subset of the
hook methods may be implemented.  :class:`TraceRecorder` captures the full
dynamic structure (block sequence + memory address stream) that profiling
and the cycle simulators replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.function import Function


class Tracer:
    """Base tracer: all hooks are no-ops.  Subclass and override."""

    def on_function_entry(self, fn: Function) -> None:  # pragma: no cover
        pass

    def on_function_exit(self, fn: Function) -> None:  # pragma: no cover
        pass

    def on_block(self, fn: Function, block: BasicBlock, prev: Optional[BasicBlock]) -> None:
        pass

    def on_branch(self, fn: Function, block: BasicBlock, taken: bool) -> None:
        pass

    def on_memory(self, fn: Function, opcode: str, address: int) -> None:
        pass


class MultiTracer(Tracer):
    """Fan a trace out to several tracers."""

    def __init__(self, *tracers: Tracer):
        self.tracers = list(tracers)

    def on_function_entry(self, fn):
        for t in self.tracers:
            t.on_function_entry(fn)

    def on_function_exit(self, fn):
        for t in self.tracers:
            t.on_function_exit(fn)

    def on_block(self, fn, block, prev):
        for t in self.tracers:
            t.on_block(fn, block, prev)

    def on_branch(self, fn, block, taken):
        for t in self.tracers:
            t.on_branch(fn, block, taken)

    def on_memory(self, fn, opcode, address):
        for t in self.tracers:
            t.on_memory(fn, opcode, address)


@dataclass
class FunctionTrace:
    """Dynamic record of one function's execution(s).

    ``blocks`` is the concatenated block sequence over all invocations, with
    ``None`` sentinels separating invocations.  ``memory`` is the address
    stream, in program order, as ``(opcode, address)`` pairs.
    """

    function: Function
    blocks: List[Optional[BasicBlock]] = field(default_factory=list)
    memory: List[Tuple[str, int]] = field(default_factory=list)
    invocations: int = 0

    @property
    def dynamic_instructions(self) -> int:
        return sum(len(b) for b in self.blocks if b is not None)

    def block_counts(self) -> Dict[BasicBlock, int]:
        counts: Dict[BasicBlock, int] = {}
        for b in self.blocks:
            if b is not None:
                counts[b] = counts.get(b, 0) + 1
        return counts

    def invocation_sequences(self) -> List[List[BasicBlock]]:
        """Split the block stream back into per-invocation sequences."""
        out: List[List[BasicBlock]] = []
        current: List[BasicBlock] = []
        for b in self.blocks:
            if b is None:
                if current:
                    out.append(current)
                current = []
            else:
                current.append(b)
        if current:
            out.append(current)
        return out


class TraceRecorder(Tracer):
    """Records a :class:`FunctionTrace` per traced function."""

    def __init__(self, functions: Optional[List[Function]] = None):
        #: restrict recording to these functions (None = all)
        self.filter = set(functions) if functions is not None else None
        self.traces: Dict[Function, FunctionTrace] = {}

    def _trace(self, fn: Function) -> Optional[FunctionTrace]:
        if self.filter is not None and fn not in self.filter:
            return None
        trace = self.traces.get(fn)
        if trace is None:
            trace = FunctionTrace(fn)
            self.traces[fn] = trace
        return trace

    def on_function_entry(self, fn: Function) -> None:
        trace = self._trace(fn)
        if trace is not None:
            trace.invocations += 1
            if trace.blocks:
                trace.blocks.append(None)

    def on_block(self, fn, block, prev) -> None:
        trace = self._trace(fn)
        if trace is not None:
            trace.blocks.append(block)

    def on_memory(self, fn, opcode, address) -> None:
        trace = self._trace(fn)
        if trace is not None:
            trace.memory.append((opcode, address))
