"""Dynamic instruction-mix statistics tracer.

Characterises what a workload actually executes — INT vs FP vs memory vs
control — which is the first thing an accelerator architect asks about a
candidate region (and what drives the energy split in Fig. 10's
discussion of FP workloads).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import is_float_op
from .events import Tracer


@dataclass
class OpMix:
    """Dynamic opcode census of one function."""

    function: Function
    opcodes: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return sum(self.opcodes.values())

    def _share(self, predicate) -> float:
        if not self.total:
            return 0.0
        return sum(c for op, c in self.opcodes.items() if predicate(op)) / self.total

    @property
    def fp_share(self) -> float:
        return self._share(is_float_op)

    @property
    def memory_share(self) -> float:
        return self._share(lambda op: op in ("load", "store"))

    @property
    def control_share(self) -> float:
        return self._share(lambda op: op in ("br", "condbr", "ret", "phi"))

    @property
    def int_share(self) -> float:
        return max(
            0.0, 1.0 - self.fp_share - self.memory_share - self.control_share
        )

    def top(self, n: int = 5):
        return self.opcodes.most_common(n)


def opcode_census(trace) -> Counter:
    """Dynamic per-opcode execution counts reconstructed from a recorded
    :class:`~repro.interp.events.FunctionTrace`.

    Cost is static-instructions × distinct-blocks, not dynamic length:
    each block's opcode census is taken once and scaled by its execution
    count — cheap enough to run at profile-publication time without
    touching the interpreter's hot loop.
    """
    census: Counter = Counter()
    for block, count in trace.block_counts().items():
        for inst in block.instructions:
            census[inst.opcode] += count
    return census


class OpMixTracer(Tracer):
    """Accumulates per-function dynamic opcode counts."""

    def __init__(self, functions=None):
        self.filter = set(functions) if functions is not None else None
        self.mixes: Dict[Function, OpMix] = {}

    def mix_for(self, fn: Function) -> OpMix:
        mix = self.mixes.get(fn)
        if mix is None:
            mix = OpMix(fn)
            self.mixes[fn] = mix
        return mix

    def on_block(self, fn: Function, block: BasicBlock, prev) -> None:
        if self.filter is not None and fn not in self.filter:
            return
        mix = self.mix_for(fn)
        for inst in block.instructions:
            mix.opcodes[inst.opcode] += 1
