"""Concrete execution of the mini IR: memory model, interpreter, tracing."""

from .memory import Memory, MemoryError_
from .events import FunctionTrace, MultiTracer, TraceRecorder, Tracer
from .interpreter import FuelExhausted, Interpreter, InterpreterError
from .stats import OpMix, OpMixTracer

__all__ = [
    "FuelExhausted",
    "FunctionTrace",
    "Interpreter",
    "InterpreterError",
    "Memory",
    "MemoryError_",
    "MultiTracer",
    "OpMix",
    "OpMixTracer",
    "TraceRecorder",
    "Tracer",
]
