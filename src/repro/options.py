"""One options surface shared by the CLI and the Python API.

Every knob the pipeline accepts — parallelism, artifact-cache placement,
metrics collection — lives in :class:`PipelineOptions`.  ``cli.py`` builds
its argparse flags *from* this class and parses *back into* it, so the
command line and the programmatic API cannot drift: a new knob added here
shows up in both automatically.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, fields
from typing import Optional

from .artifacts import ArtifactCache
from .exec.pools import POOL_BACKENDS
from .sim.config import SystemConfig

#: valid ``pool`` values: ``auto`` (processes when the sweep is
#: parallel, inline serial otherwise) plus every real backend
POOL_CHOICES = ("auto",) + POOL_BACKENDS


def validate_pool(pool: Optional[str]) -> str:
    """Normalise a pool-backend request.

    ``None`` defers to ``$REPRO_POOL`` (how the CI matrix forces every
    backend through the full test suite) and then to ``"auto"``.
    Unknown names raise a ``ValueError`` naming the valid choices, so a
    typo fails loudly before any worker is spawned.
    """
    if pool is None:
        pool = os.environ.get("REPRO_POOL") or "auto"
    pool = str(pool).strip().lower()
    if pool not in POOL_CHOICES:
        raise ValueError(
            "unknown pool backend %r (choose from: %s)"
            % (pool, ", ".join(POOL_CHOICES))
        )
    return pool


def validate_jobs(jobs: Optional[int]) -> Optional[int]:
    """Normalise a ``jobs`` request.

    ``None`` and ``1`` mean serial; values below 1 are invalid — rather
    than handing them to ``ProcessPoolExecutor`` (which would raise a
    cryptic ``ValueError`` mid-sweep) we warn clearly and fall back to
    serial execution.
    """
    if jobs is None:
        return None
    jobs = int(jobs)
    if jobs < 1:
        warnings.warn(
            "jobs=%d is invalid (need >= 1); falling back to serial "
            "evaluation" % jobs,
            stacklevel=3,
        )
        return None
    return jobs


@dataclass
class PipelineOptions:
    """Everything configurable about a pipeline run.

    ``config``       Table V system parameters (``None`` = paper default).
    ``jobs``         worker-pool width for suite sweeps (``None``/1 = serial).
    ``pool``         execution backend for suite sweeps: ``serial``,
                     ``process`` (warm forked workers), ``thread``, or
                     ``None``/``auto`` (``$REPRO_POOL`` if set, else
                     processes when ``jobs > 1``).  Results are
                     bitwise-identical on every backend.
    ``cache_dir``    artifact cache root (``None`` = ``$REPRO_CACHE_DIR`` or
                     ``~/.cache/repro-needle``).
    ``no_cache``     bypass the persistent artifact cache entirely.
    ``metrics``      collect obs metrics/spans during the run.
    ``metrics_out``  write the metrics registry as JSON to this path.
    ``timeline_out`` write a Chrome trace-event JSON file (wall-clock
                     spans + simulated-cycle tracks; open in Perfetto)
                     to this path.
    ``timeout``      per-workload wall-clock budget in seconds for pool
                     sweeps (``None`` = unlimited).
    ``retries``      failed workload attempts retried before quarantine.
    ``fail_fast``    propagate the first workload failure instead of
                     retrying/quarantining.
    ``fault_plan``   a :class:`~repro.resilience.FaultPlan` (or a path to
                     its JSON form) injected into the run — chaos testing.
    ``trace_kernels`` offload-accounting kernels: ``"rle"`` (closed-form
                     run folds, the default), ``"events"`` (the
                     event-by-event reference path) or ``"array"``
                     (columnar batch kernels; numpy when available,
                     batched pure Python otherwise).  All modes give
                     bitwise-identical outcomes, property-tested.
    ``no_sim_memo``  disable the cross-strategy simulation memo (every
                     strategy recomputes calibration/path costs/schedules).
    ``journal_dir``  write a crash-safe run journal for suite sweeps
                     under this directory (``None`` = ``$REPRO_JOURNAL_DIR``
                     if set, else no journal).  See docs/resilience.md.
    ``run_id``       name the journaled run (``None`` = fresh generated id).
    ``resume``       resume the journaled run with this id: completed
                     workloads are restored from the journal, only
                     in-flight/quarantined ones re-run, and the merged
                     result is byte-identical to an uninterrupted run.
    ``drain_timeout`` bounded wait (seconds) for in-flight workloads
                     after SIGINT/SIGTERM before a journaled sweep exits
                     with its resume command.
    ``max_total_failures``       circuit breaker: abort the sweep after
                     this many failed attempts in total (``None`` = off).
    ``max_consecutive_failures`` circuit breaker: abort after this many
                     consecutive failed attempts (``None`` = off).
    ``serve_metrics`` serve ``/metrics`` (Prometheus), ``/progress``
                     (JSON) and ``/healthz`` over HTTP while the sweep
                     runs (``"[HOST:]PORT"``; binds 127.0.0.1 unless a
                     host is given).
    ``progress_out`` atomically rewrite a live ``progress.json``
                     snapshot at this path during the sweep (what
                     ``repro top`` reads without the endpoint).
    ``events_out``   append every telemetry event to this JSONL file
                     (complete, gapless, replayable).
    ``live``         repaint a one-screen live progress view on stderr
                     while the sweep runs.
    ``heartbeat``    worker heartbeat period in seconds for live
                     telemetry (preemptive pools only).
    ``stall_after``  flag a worker silent this long as stalled
                     (``None`` = 5x the heartbeat period).

    The ``serve_metrics``/``progress_out``/``events_out``/``live`` group
    is wall-clock-only telemetry: semantic output — evaluation records,
    semantic metrics, the attribution ledger — is byte-identical with it
    on or off.
    """

    config: Optional[SystemConfig] = None
    jobs: Optional[int] = None
    pool: Optional[str] = None
    cache_dir: Optional[str] = None
    no_cache: bool = False
    metrics: bool = False
    metrics_out: Optional[str] = None
    timeline_out: Optional[str] = None
    timeout: Optional[float] = None
    retries: int = 2
    fail_fast: bool = False
    fault_plan: "Optional[object]" = None  # FaultPlan | str path to JSON
    trace_kernels: str = "rle"
    no_sim_memo: bool = False
    journal_dir: Optional[str] = None
    run_id: Optional[str] = None
    resume: Optional[str] = None
    drain_timeout: float = 10.0
    max_total_failures: Optional[int] = None
    max_consecutive_failures: Optional[int] = None
    serve_metrics: Optional[str] = None
    progress_out: Optional[str] = None
    events_out: Optional[str] = None
    live: bool = False
    heartbeat: float = 1.0
    stall_after: Optional[float] = None

    # -- derived views -----------------------------------------------------

    @property
    def wants_metrics(self) -> bool:
        """Does this run need instrumentation turned on?

        The live endpoint implies it: ``/metrics`` scrapes the registry,
        so serving without collecting would expose an empty page.
        """
        return (
            self.metrics
            or self.metrics_out is not None
            or self.timeline_out is not None
            or self.serve_metrics is not None
        )

    @property
    def wants_telemetry(self) -> bool:
        """Should sweeps run inside a live telemetry session?"""
        return (
            self.serve_metrics is not None
            or self.progress_out is not None
            or self.events_out is not None
            or self.live
        )

    @property
    def heartbeat_period(self) -> Optional[float]:
        """Heartbeat period to arm on the pool, or ``None`` when live
        telemetry is off (heartbeats only exist to feed the bus)."""
        if not self.wants_telemetry:
            return None
        period = float(self.heartbeat)
        return period if period > 0 else None

    def normalized_jobs(self) -> Optional[int]:
        """``jobs`` validated for pool use (warns + serial on bad input)."""
        return validate_jobs(self.jobs)

    def normalized_pool(self) -> str:
        """``pool`` resolved against ``$REPRO_POOL`` and validated."""
        return validate_pool(self.pool)

    def build_cache(self) -> Optional[ArtifactCache]:
        """The artifact cache this run should use (``None`` when bypassed)."""
        if self.no_cache:
            return None
        return ArtifactCache(self.cache_dir)

    def build_pipeline(self):
        """A :class:`~repro.pipeline.NeedlePipeline` honouring these options."""
        from .pipeline import NeedlePipeline

        return NeedlePipeline(
            self.config, cache=self.build_cache(), options=self
        )

    def resolve_fault_plan(self):
        """The run's :class:`~repro.resilience.FaultPlan`, if any.

        Accepts a plan object or a path to its JSON form (the CLI's
        ``--fault-plan`` hands a path through unchanged).
        """
        if self.fault_plan is None:
            return None
        from .resilience.faults import FaultPlan

        if isinstance(self.fault_plan, FaultPlan):
            return self.fault_plan
        return FaultPlan.from_json_file(str(self.fault_plan))

    def failure_policy(self):
        """The :class:`~repro.resilience.FailurePolicy` for suite sweeps.

        Chaos runs reuse the fault plan's seed for retry jitter, so a
        seeded scenario replays with identical pacing decisions.
        """
        from .resilience.runner import FailurePolicy

        plan = self.resolve_fault_plan()
        return FailurePolicy(
            timeout=self.timeout,
            retries=max(0, int(self.retries)),
            fail_fast=self.fail_fast,
            seed=plan.seed if plan is not None else 0,
            max_total_failures=(
                None if self.max_total_failures is None
                else max(1, int(self.max_total_failures))
            ),
            max_consecutive_failures=(
                None if self.max_consecutive_failures is None
                else max(1, int(self.max_consecutive_failures))
            ),
        )

    # -- argparse bridge ---------------------------------------------------

    @classmethod
    def add_cli_arguments(cls, parser, jobs: bool = True) -> None:
        """Install this class's knobs as flags on an argparse parser."""
        if jobs:
            parser.add_argument(
                "--jobs",
                type=int,
                default=None,
                metavar="N",
                help="shard the suite across N pool workers",
            )
            parser.add_argument(
                "--pool",
                choices=POOL_CHOICES,
                default=None,
                help="suite-sweep execution backend (default: $REPRO_POOL "
                "if set, else 'auto' = warm worker processes when "
                "--jobs > 1); results are bitwise-identical on every "
                "backend",
            )
            parser.add_argument(
                "--journal-dir",
                default=None,
                metavar="DIR",
                help="write a crash-safe run journal under DIR; a killed "
                "sweep resumes with --resume (default: $REPRO_JOURNAL_DIR "
                "if set, else no journal)",
            )
            parser.add_argument(
                "--run-id",
                default=None,
                metavar="ID",
                help="name this journaled run (default: a fresh "
                "timestamped id)",
            )
            parser.add_argument(
                "--resume",
                default=None,
                metavar="RUN_ID",
                help="resume a journaled run: completed workloads are "
                "restored from the journal and only in-flight/quarantined "
                "ones re-run; the merged result is byte-identical to an "
                "uninterrupted run",
            )
            parser.add_argument(
                "--drain-timeout",
                type=float,
                default=cls.drain_timeout,
                metavar="SEC",
                help="bounded wait for in-flight workloads after "
                "SIGINT/SIGTERM before a journaled sweep exits with its "
                "resume command (default: %gs)" % cls.drain_timeout,
            )
            parser.add_argument(
                "--max-total-failures",
                type=int,
                default=None,
                metavar="N",
                help="circuit breaker: abort the sweep after N failed "
                "attempts in total instead of grinding through a doomed "
                "suite",
            )
            parser.add_argument(
                "--max-consecutive-failures",
                type=int,
                default=None,
                metavar="N",
                help="circuit breaker: abort after N consecutive failed "
                "attempts with no success in between",
            )
            parser.add_argument(
                "--serve-metrics",
                default=None,
                metavar="[HOST:]PORT",
                help="serve /metrics (Prometheus), /progress (JSON) and "
                "/healthz over HTTP while the sweep runs; binds "
                "127.0.0.1 unless HOST is given",
            )
            parser.add_argument(
                "--progress-out",
                default=None,
                metavar="PATH",
                help="atomically rewrite a live progress.json snapshot "
                "at PATH during the sweep (readable by 'repro top')",
            )
            parser.add_argument(
                "--events-out",
                default=None,
                metavar="PATH",
                help="append every telemetry event to PATH as JSONL "
                "(complete and gapless; replayable)",
            )
            parser.add_argument(
                "--live",
                action="store_true",
                help="repaint a one-screen live progress view on stderr "
                "while the sweep runs",
            )
            parser.add_argument(
                "--heartbeat",
                type=float,
                default=cls.heartbeat,
                metavar="SEC",
                help="worker heartbeat period for live telemetry "
                "(default: %gs; preemptive pools only)" % cls.heartbeat,
            )
            parser.add_argument(
                "--stall-after",
                type=float,
                default=None,
                metavar="SEC",
                help="flag a worker silent for SEC seconds as stalled "
                "(default: 5x the heartbeat period)",
            )
        parser.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="artifact cache root (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro-needle)",
        )
        parser.add_argument(
            "--no-cache",
            action="store_true",
            help="bypass the persistent artifact cache",
        )
        parser.add_argument(
            "--metrics",
            action="store_true",
            help="collect and print observability metrics for this run",
        )
        parser.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write the metrics registry as JSON to PATH",
        )
        parser.add_argument(
            "--timeline-out",
            default=None,
            metavar="PATH",
            help="write a Chrome trace-event JSON timeline to PATH "
            "(load it at https://ui.perfetto.dev)",
        )
        parser.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SEC",
            help="per-workload wall-clock budget for --jobs sweeps "
            "(default: unlimited)",
        )
        parser.add_argument(
            "--retries",
            type=int,
            default=cls.retries,
            metavar="N",
            help="failed workload attempts retried before quarantine "
            "(default: %d)" % cls.retries,
        )
        parser.add_argument(
            "--fail-fast",
            action="store_true",
            help="stop at the first workload failure instead of "
            "quarantining it",
        )
        parser.add_argument(
            "--fault-plan",
            default=None,
            metavar="PATH",
            help="inject the deterministic fault plan described by this "
            "JSON file (chaos testing; see docs/resilience.md)",
        )
        parser.add_argument(
            "--trace-kernels",
            choices=("rle", "events", "array"),
            default=cls.trace_kernels,
            help="offload-accounting kernels: closed-form run folds "
            "('rle', default), the event-by-event reference path "
            "('events'), or columnar batch kernels ('array'; numpy "
            "when available); outcomes are bitwise-identical",
        )
        parser.add_argument(
            "--no-sim-memo",
            action="store_true",
            help="disable the cross-strategy simulation memo (recompute "
            "calibration, path costs and schedules per strategy)",
        )

    @classmethod
    def from_args(cls, args) -> "PipelineOptions":
        """Build options from a parsed argparse namespace (missing flags
        keep their dataclass defaults, so every subcommand can share this)."""
        kwargs = {}
        for f in fields(cls):
            if f.name == "config":
                continue
            if hasattr(args, f.name):
                kwargs[f.name] = getattr(args, f.name)
        return cls(**kwargs)


__all__ = ["POOL_CHOICES", "PipelineOptions", "validate_jobs", "validate_pool"]
