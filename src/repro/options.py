"""One options surface shared by the CLI and the Python API.

Every knob the pipeline accepts — parallelism, artifact-cache placement,
metrics collection — lives in :class:`PipelineOptions`.  ``cli.py`` builds
its argparse flags *from* this class and parses *back into* it, so the
command line and the programmatic API cannot drift: a new knob added here
shows up in both automatically.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Optional

from .artifacts import ArtifactCache
from .sim.config import SystemConfig


def validate_jobs(jobs: Optional[int]) -> Optional[int]:
    """Normalise a ``jobs`` request.

    ``None`` and ``1`` mean serial; values below 1 are invalid — rather
    than handing them to ``ProcessPoolExecutor`` (which would raise a
    cryptic ``ValueError`` mid-sweep) we warn clearly and fall back to
    serial execution.
    """
    if jobs is None:
        return None
    jobs = int(jobs)
    if jobs < 1:
        warnings.warn(
            "jobs=%d is invalid (need >= 1); falling back to serial "
            "evaluation" % jobs,
            stacklevel=3,
        )
        return None
    return jobs


@dataclass
class PipelineOptions:
    """Everything configurable about a pipeline run.

    ``config``       Table V system parameters (``None`` = paper default).
    ``jobs``         process-pool width for suite sweeps (``None``/1 = serial).
    ``cache_dir``    artifact cache root (``None`` = ``$REPRO_CACHE_DIR`` or
                     ``~/.cache/repro-needle``).
    ``no_cache``     bypass the persistent artifact cache entirely.
    ``metrics``      collect obs metrics/spans during the run.
    ``metrics_out``  write the metrics registry as JSON to this path.
    """

    config: Optional[SystemConfig] = None
    jobs: Optional[int] = None
    cache_dir: Optional[str] = None
    no_cache: bool = False
    metrics: bool = False
    metrics_out: Optional[str] = None

    # -- derived views -----------------------------------------------------

    @property
    def wants_metrics(self) -> bool:
        """Does this run need instrumentation turned on?"""
        return self.metrics or self.metrics_out is not None

    def normalized_jobs(self) -> Optional[int]:
        """``jobs`` validated for pool use (warns + serial on bad input)."""
        return validate_jobs(self.jobs)

    def build_cache(self) -> Optional[ArtifactCache]:
        """The artifact cache this run should use (``None`` when bypassed)."""
        if self.no_cache:
            return None
        return ArtifactCache(self.cache_dir)

    def build_pipeline(self):
        """A :class:`~repro.pipeline.NeedlePipeline` honouring these options."""
        from .pipeline import NeedlePipeline

        return NeedlePipeline(
            self.config, cache=self.build_cache(), options=self
        )

    # -- argparse bridge ---------------------------------------------------

    @classmethod
    def add_cli_arguments(cls, parser, jobs: bool = True) -> None:
        """Install this class's knobs as flags on an argparse parser."""
        if jobs:
            parser.add_argument(
                "--jobs",
                type=int,
                default=None,
                metavar="N",
                help="shard the suite across N worker processes",
            )
        parser.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="artifact cache root (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro-needle)",
        )
        parser.add_argument(
            "--no-cache",
            action="store_true",
            help="bypass the persistent artifact cache",
        )
        parser.add_argument(
            "--metrics",
            action="store_true",
            help="collect and print observability metrics for this run",
        )
        parser.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write the metrics registry as JSON to PATH",
        )

    @classmethod
    def from_args(cls, args) -> "PipelineOptions":
        """Build options from a parsed argparse namespace (missing flags
        keep their dataclass defaults, so every subcommand can share this)."""
        kwargs = {}
        for f in fields(cls):
            if f.name == "config":
                continue
            if hasattr(args, f.name):
                kwargs[f.name] = getattr(args, f.name)
        return cls(**kwargs)


__all__ = ["PipelineOptions", "validate_jobs"]
