"""Needle (HPCA 2017) reproduction.

A from-scratch Python implementation of the Needle toolchain — Ball–Larus
path profiling, Braid formation, software-frame generation — plus every
substrate the paper's evaluation depends on: a mini SSA IR and interpreter,
Superblock/Hyperblock baselines, a CGRA + OOO-core + MESI-cache cycle
simulator, an energy model, an HLS feasibility estimator, and a 29-workload
synthetic suite shaped after SPEC/PARSEC/PERFECT.

Public API
----------
The names exported here are the supported surface; deep imports keep
working but may be rearranged between versions.

::

    from repro import NeedlePipeline, load_workload
    pipeline = NeedlePipeline()
    evaluation = pipeline.evaluate(load_workload("470.lbm"))
    print(evaluation.braid.performance_improvement)

    # suite sweep with caching, parallelism and metrics in one call
    from repro import evaluate_suite, obs
    obs.enable()
    rows = evaluate_suite(jobs=4, cache_dir="/tmp/needle-cache")
    print(obs.export.render_metrics(None))

    # the same sweep on a specific execution backend — results are
    # bitwise-identical across serial, process and thread pools
    rows = evaluate_suite(jobs=4, pool="thread")
"""

from typing import List, Optional

from . import analysis, frames, interp, ir, obs, profiling, regions
from . import accel, reporting, resilience, sim, transforms, workloads
from . import exec  # noqa: A004 - the execution-pool subsystem
from .artifacts import ArtifactCache
from .exec import (
    POOL_BACKENDS,
    Pool,
    ProcessPool,
    SerialPool,
    ThreadPool,
    make_pool,
)
from .options import POOL_CHOICES, PipelineOptions
from .pipeline import (
    NeedlePipeline,
    WorkloadAnalysis,
    WorkloadEvaluation,
    evaluate_suite,
)
from .resilience import (
    EXIT_DRAINED,
    FaultPlan,
    FaultSpec,
    RunJournal,
    SweepDrained,
    WorkloadFailure,
)
from .sim.config import DEFAULT_CONFIG, SystemConfig
from .workloads import Workload
from .workloads import get as load_workload

__version__ = "1.1.0"


def suite(name: Optional[str] = None) -> List[Workload]:
    """The workload suite in Table II order.

    ``suite()`` returns all 29 workloads; ``suite("spec")``,
    ``suite("parsec")`` or ``suite("perfect")`` narrows to one source suite.
    """
    if name is None:
        return workloads.all_workloads()
    return workloads.suite(name)


__all__ = [
    "ArtifactCache",
    "DEFAULT_CONFIG",
    "EXIT_DRAINED",
    "FaultPlan",
    "FaultSpec",
    "NeedlePipeline",
    "POOL_BACKENDS",
    "POOL_CHOICES",
    "PipelineOptions",
    "Pool",
    "ProcessPool",
    "RunJournal",
    "SerialPool",
    "SweepDrained",
    "SystemConfig",
    "ThreadPool",
    "Workload",
    "WorkloadAnalysis",
    "WorkloadEvaluation",
    "WorkloadFailure",
    "accel",
    "analysis",
    "evaluate_suite",
    "exec",
    "frames",
    "interp",
    "ir",
    "load_workload",
    "make_pool",
    "obs",
    "profiling",
    "regions",
    "reporting",
    "resilience",
    "sim",
    "suite",
    "transforms",
    "workloads",
]
