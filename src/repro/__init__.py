"""Needle (HPCA 2017) reproduction.

A from-scratch Python implementation of the Needle toolchain — Ball–Larus
path profiling, Braid formation, software-frame generation — plus every
substrate the paper's evaluation depends on: a mini SSA IR and interpreter,
Superblock/Hyperblock baselines, a CGRA + OOO-core + MESI-cache cycle
simulator, an energy model, an HLS feasibility estimator, and a 29-workload
synthetic suite shaped after SPEC/PARSEC/PERFECT.

Typical entry points::

    from repro import NeedlePipeline, workloads
    pipeline = NeedlePipeline()
    evaluation = pipeline.evaluate(workloads.get("470.lbm"))
    print(evaluation.braid.performance_improvement)
"""

from . import analysis, frames, interp, ir, profiling, regions, reporting, sim
from . import accel, transforms, workloads
from .artifacts import ArtifactCache
from .pipeline import NeedlePipeline, WorkloadAnalysis, WorkloadEvaluation

__version__ = "1.0.0"

__all__ = [
    "ArtifactCache",
    "NeedlePipeline",
    "WorkloadAnalysis",
    "WorkloadEvaluation",
    "accel",
    "analysis",
    "frames",
    "interp",
    "ir",
    "profiling",
    "regions",
    "reporting",
    "sim",
    "transforms",
    "workloads",
]
