"""Persistent, content-addressed artifact cache for pipeline products.

Profile-guided toolchains treat profiles and schedules as *build products*:
once computed for a given (source, inputs, configuration) triple they never
change, so re-running the toolchain should cost only a hash and a read.
This module gives the Needle pipeline that property.

Keys
----
An artifact key is the SHA-256 of four components:

* the workload's full IR text (``format_module`` of the built module) —
  any change to the synthetic kernel invalidates its artifacts;
* the ``repr`` of the run arguments — different inputs, different dynamic
  behaviour;
* a fingerprint of the :class:`~repro.sim.config.SystemConfig` — Table V
  parameter sweeps (ablations) must not share entries;
* :data:`CACHE_FORMAT_VERSION` — bumped whenever the pickled payload layout
  changes, so stale on-disk entries from older code are simply missed.

Layout is ``<root>/<kind>/<key[:2]>/<key>.pkl`` with atomic writes
(temp file + ``os.replace``).  Every read is defensive: a corrupt,
truncated or unreadable entry is treated as a miss (and evicted when
possible), never an error — the pipeline recomputes and overwrites.

The default root is ``~/.cache/repro-needle`` and may be overridden with
the ``REPRO_CACHE_DIR`` environment variable or per-instance ``root``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from typing import Optional, Tuple

from .obs import counter as _obs_counter, enabled as _obs_enabled
from .obs import events as _bus_events
from .resilience.faults import (
    SITE_CACHE_TRUNCATE,
    consult as _flt_consult,
    enabled as _flt_enabled,
)

#: bump when the pickled artifact layout changes incompatibly
#: (2: AnalysisSummary gained dynamic_instructions/memory_events and
#: OffloadOutcome gained per-level memory access censuses for the obs layer;
#: 3: ProfiledWorkload carries its artifact key, calibration/path-cost
#: tables are persisted, and the offload fold accumulates per charge class;
#: 4: OffloadOutcome carries attribution/baseline_attribution charge-class
#: decompositions, and needle totals are redefined as their canonical fold)
CACHE_FORMAT_VERSION = 4

#: environment variable overriding the default cache root
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: artifact kinds stored by the pipeline
PROFILE_KIND = "profile"
EVALUATION_KIND = "evaluation"
#: sub-simulation tables persisted by the simulation memo (repro.sim.memo)
CALIBRATION_KIND = "calibration"
PATH_COSTS_KIND = "pathcosts"
#: completed-evaluation payloads referenced by the crash-safe run journal
#: (repro.resilience.journal)
JOURNAL_KIND = "journal"

#: deep IR graphs (SSA chains, operand links) exceed the default
#: recursion limit during pickling; raised temporarily around dump/load
_PICKLE_RECURSION_LIMIT = 100_000


def default_cache_dir() -> str:
    """Resolve the cache root: env override, else ``~/.cache/repro-needle``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-needle")


def config_fingerprint(config) -> str:
    """Stable text form of a SystemConfig (frozen dataclasses repr cleanly)."""
    return repr(config)


def workload_key(workload, config, extra: str = "") -> Tuple[str, object]:
    """(artifact key, built (module, fn, args)) for one workload.

    Building the synthetic module is ~2 ms per workload — three orders of
    magnitude cheaper than profiling it — so the key hashes the *actual* IR
    text rather than trusting the workload name to pin content.  The built
    triple is returned so a cache miss can reuse it instead of rebuilding.
    """
    from .ir.printer import format_module

    built = workload.build()
    module, _fn, args = built
    h = hashlib.sha256()
    h.update(format_module(module).encode())
    h.update(b"\x00")
    h.update(repr(args).encode())
    h.update(b"\x00")
    h.update(config_fingerprint(config).encode())
    h.update(b"\x00")
    h.update(str(CACHE_FORMAT_VERSION).encode())
    return h.hexdigest(), built


class ArtifactCache:
    """Content-addressed on-disk store of pickled pipeline products.

    Writes are always *atomic* (temp file in the target directory +
    ``os.replace``): a reader can never observe a torn payload at the
    final path, whatever kills the writer.  ``fsync=True`` additionally
    makes each write *durable* before :meth:`put` returns — the run
    journal's payload store needs write-ahead ordering (payload on disk
    before the record referencing it), while the ordinary pipeline cache
    skips the sync cost because a lost entry is merely recomputed.
    """

    def __init__(self, root: Optional[str] = None, fsync: bool = False):
        self.root = root or default_cache_dir()
        self.fsync = fsync
        self.hits = 0
        self.misses = 0

    # -- paths -------------------------------------------------------------

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, kind, key[:2], key + ".pkl")

    # -- access ------------------------------------------------------------

    def get(self, kind: str, key: str):
        """Load an artifact, or ``None`` on miss/corruption (never raises)."""
        path = self._path(kind, key)
        try:
            with open(path, "rb") as fh:
                payload = fh.read()
        except OSError:
            self.misses += 1
            if _obs_enabled():
                _obs_counter("artifacts.misses", 1,
                             help="artifact cache misses", kind=kind)
            _bus_events.publish(_bus_events.CACHE_MISS, kind)
            return None
        old_limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(max(old_limit, _PICKLE_RECURSION_LIMIT))
            obj = pickle.loads(payload)
        except Exception:
            # corrupt/stale entry: evict and recompute
            self.misses += 1
            if _obs_enabled():
                _obs_counter("artifacts.misses", 1,
                             help="artifact cache misses", kind=kind)
                _obs_counter("artifacts.evictions", 1,
                             help="corrupt entries evicted", kind=kind)
            try:
                os.unlink(path)
            except OSError:
                pass
            _bus_events.publish(_bus_events.CACHE_MISS, kind)
            return None
        finally:
            sys.setrecursionlimit(old_limit)
        self.hits += 1
        if _obs_enabled():
            _obs_counter("artifacts.hits", 1,
                         help="artifact cache hits", kind=kind)
        _bus_events.publish(_bus_events.CACHE_HIT, kind)
        return obj

    def put(self, kind: str, key: str, obj) -> bool:
        """Atomically store an artifact; returns False if it cannot be
        serialised or written (the pipeline carries on uncached)."""
        path = self._path(kind, key)
        old_limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(max(old_limit, _PICKLE_RECURSION_LIMIT))
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        finally:
            sys.setrecursionlimit(old_limit)
        if _flt_enabled():
            # chaos site: ship a truncated payload to disk, proving the
            # defensive read path treats it as a clean miss + eviction
            spec = _flt_consult(SITE_CACHE_TRUNCATE, kind)
            if spec is not None:
                keep = int(spec.payload.get("keep", max(1, len(payload) // 2)))
                payload = payload[:keep]
        if _obs_enabled():
            _obs_counter("artifacts.writes", 1,
                         help="artifacts persisted", kind=kind)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                    if self.fsync:
                        fh.flush()
                        os.fsync(fh.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed."""
        removed = 0
        for kind in (PROFILE_KIND, EVALUATION_KIND,
                     CALIBRATION_KIND, PATH_COSTS_KIND, JOURNAL_KIND):
            base = os.path.join(self.root, kind)
            for dirpath, _dirs, files in os.walk(base):
                for name in files:
                    if name.endswith(".pkl"):
                        try:
                            os.unlink(os.path.join(dirpath, name))
                            removed += 1
                        except OSError:
                            pass
        return removed

    def __repr__(self) -> str:
        return "<ArtifactCache %s: %d hits, %d misses>" % (
            self.root,
            self.hits,
            self.misses,
        )


__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CALIBRATION_KIND",
    "EVALUATION_KIND",
    "JOURNAL_KIND",
    "PATH_COSTS_KIND",
    "PROFILE_KIND",
    "ArtifactCache",
    "config_fingerprint",
    "default_cache_dir",
    "workload_key",
]
