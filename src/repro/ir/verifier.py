"""Structural and SSA well-formedness checks for IR functions.

The verifier enforces the invariants every downstream analysis assumes:

* each block has exactly one terminator, at the end;
* φ-nodes appear only as a block prefix;
* φ incoming blocks exactly match the block's CFG predecessors;
* all referenced blocks belong to the function;
* every SSA definition dominates each of its uses (φ uses are checked at the
  end of the corresponding incoming block);
* all blocks are reachable from the entry.
"""

from __future__ import annotations

from typing import List

from .block import BasicBlock
from .function import Function
from .instructions import Instruction, Phi
from .values import Argument, Constant, GlobalArray, UndefValue, Value


class VerificationError(Exception):
    """Raised when an IR function violates a structural/SSA invariant."""

    def __init__(self, errors: List[str]):
        super().__init__("; ".join(errors))
        self.errors = errors


def verify_function(fn: Function) -> None:
    """Verify ``fn``; raises :class:`VerificationError` listing all issues."""
    errors: List[str] = []
    block_set = set(fn.blocks)

    preds = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        term = block.terminator
        if term is None:
            errors.append("block %s has no terminator" % block.name)
            continue
        for i, inst in enumerate(block.instructions):
            if inst.is_terminator and inst is not term:
                errors.append("block %s has terminator mid-block" % block.name)
        for succ in block.successors:
            if succ not in block_set:
                errors.append(
                    "block %s branches to foreign block %s" % (block.name, succ.name)
                )
            else:
                preds[succ].append(block)

    # phi placement + incoming consistency
    for block in fn.blocks:
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if seen_non_phi:
                    errors.append(
                        "phi %%%s after non-phi in block %s" % (inst.name, block.name)
                    )
            else:
                seen_non_phi = True
        bpreds = set(preds.get(block, []))
        for phi in block.phis:
            inc_blocks = [b for b, _ in phi.incoming]
            if len(set(map(id, inc_blocks))) != len(inc_blocks):
                errors.append("phi %%%s has duplicate incoming blocks" % phi.name)
            if set(inc_blocks) != bpreds:
                errors.append(
                    "phi %%%s incoming blocks do not match predecessors of %s"
                    % (phi.name, block.name)
                )

    # reachability
    reachable = set()
    if fn.blocks:
        stack = [fn.entry]
        while stack:
            b = stack.pop()
            if b in reachable:
                continue
            reachable.add(b)
            stack.extend(s for s in b.successors if s in block_set)
        for block in fn.blocks:
            if block not in reachable:
                errors.append("block %s is unreachable" % block.name)

    if errors:
        raise VerificationError(errors)

    _verify_dominance(fn, preds, errors)
    if errors:
        raise VerificationError(errors)


def _verify_dominance(fn: Function, preds, errors: List[str]) -> None:
    """Check defs dominate uses, using the analysis-package dominator tree."""
    from ..analysis.dominators import DominatorTree  # local import: avoid cycle

    dom = DominatorTree.compute(fn)
    positions = {}
    for block in fn.blocks:
        for i, inst in enumerate(block.instructions):
            positions[inst] = (block, i)

    def defined_before(defn: Instruction, use_block: BasicBlock, use_index: int) -> bool:
        dblock, dindex = positions[defn]
        if dblock is use_block:
            return dindex < use_index
        return dom.dominates(dblock, use_block)

    for block in fn.blocks:
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, Phi):
                for in_block, val in inst.incoming:
                    if isinstance(val, Instruction) and val in positions:
                        ib, ii = positions[val]
                        at_end = len(in_block.instructions)
                        if not defined_before(val, in_block, at_end):
                            errors.append(
                                "phi %%%s operand %%%s does not dominate edge %s->%s"
                                % (inst.name, val.name, in_block.name, block.name)
                            )
                continue
            for op in inst.operands:
                if isinstance(op, Instruction):
                    if op not in positions:
                        errors.append(
                            "%%%s uses instruction %%%s outside the function"
                            % (inst.name or inst.opcode, op.name)
                        )
                    elif not defined_before(op, block, index):
                        errors.append(
                            "use of %%%s in %s does not follow its definition"
                            % (op.name, block.name)
                        )
                elif not isinstance(
                    op, (Constant, Argument, GlobalArray, UndefValue, Value)
                ):
                    errors.append("non-Value operand on %%%s" % inst.name)


def verify_module(module) -> None:
    """Verify every function in ``module``."""
    for fn in module.functions.values():
        verify_function(fn)
