"""Scalar type system for the mini SSA IR.

The IR models the subset of LLVM types that Needle's analyses consume:
integers of a few widths, two floating point widths, a flat pointer type,
and ``void`` for functions without a return value.  Types are singletons;
identity comparison (``is``) is the intended equality check, though ``==``
also works because there is exactly one instance per kind/width.
"""

from __future__ import annotations


class Type:
    """A scalar IR type.

    Attributes:
        kind: one of ``"int"``, ``"float"``, ``"ptr"``, ``"void"``.
        bits: bit width (0 for void; pointers are 64-bit).
    """

    __slots__ = ("kind", "bits")

    def __init__(self, kind: str, bits: int):
        self.kind = kind
        self.bits = bits

    # -- predicates ---------------------------------------------------------

    @property
    def is_int(self) -> bool:
        return self.kind == "int"

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_ptr(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_void(self) -> bool:
        return self.kind == "void"

    @property
    def size_bytes(self) -> int:
        """Storage footprint of a value of this type."""
        if self.is_void:
            return 0
        return max(1, self.bits // 8)

    # -- value domain helpers ----------------------------------------------

    def wrap(self, value):
        """Normalise a Python number into this type's value domain.

        Integers wrap modulo 2**bits and are interpreted as signed
        (two's complement), matching the interpreter's arithmetic.
        """
        if self.is_float:
            return float(value)
        if self.is_ptr:
            return int(value) & ((1 << 64) - 1)
        if self.is_int:
            mask = (1 << self.bits) - 1
            v = int(value) & mask
            sign = 1 << (self.bits - 1)
            return (v ^ sign) - sign if self.bits > 1 else v
        raise TypeError("void has no values")

    def __repr__(self) -> str:
        return str(self)

    def __str__(self) -> str:
        if self.is_void:
            return "void"
        if self.is_ptr:
            return "ptr"
        if self.is_float:
            return "f%d" % self.bits
        return "i%d" % self.bits

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Type)
            and self.kind == other.kind
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.bits))


#: The boolean type produced by comparisons and consumed by conditional
#: branches and selects.
I1 = Type("int", 1)
I8 = Type("int", 8)
I16 = Type("int", 16)
I32 = Type("int", 32)
I64 = Type("int", 64)
F32 = Type("float", 32)
F64 = Type("float", 64)
PTR = Type("ptr", 64)
VOID = Type("void", 0)

_BY_NAME = {str(t): t for t in (I1, I8, I16, I32, I64, F32, F64, PTR, VOID)}


def type_from_name(name: str) -> Type:
    """Look a type up by its textual spelling (``"i32"``, ``"f64"`` ...)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError("unknown IR type: %r" % name) from None
