"""Value hierarchy for the mini SSA IR.

Everything an instruction can reference as an operand is a :class:`Value`:
constants, function arguments, global arrays, and other instructions.
"""

from __future__ import annotations

from .types import Type


class Value:
    """Base class of all IR values.

    Attributes:
        type: the :class:`~repro.ir.types.Type` of the value.
        name: SSA name (without sigils); may be empty for unnamed values.
    """

    __slots__ = ("type", "name")

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    @property
    def ref(self) -> str:
        """Textual reference used when this value appears as an operand."""
        return "%" + self.name if self.name else "%?"

    def __repr__(self) -> str:
        return "<%s %s %s>" % (type(self).__name__, self.type, self.ref)


class Constant(Value):
    """An immediate constant of integer, float or pointer type."""

    __slots__ = ("value",)

    def __init__(self, type_: Type, value):
        super().__init__(type_, "")
        self.value = type_.wrap(value)

    @property
    def ref(self) -> str:
        if self.type.is_float:
            return repr(self.value)
        return str(self.value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constant)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Argument(Value):
    """A formal parameter of a :class:`~repro.ir.function.Function`."""

    __slots__ = ("index",)

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name)
        self.index = index


class GlobalArray(Value):
    """A module-level array; its value is its base address (``ptr``).

    Attributes:
        elem_type: scalar element type.
        count: number of elements.
        init: optional list of initial element values (padded with zeros).
    """

    __slots__ = ("elem_type", "count", "init")

    def __init__(self, name: str, elem_type: Type, count: int, init=None):
        from .types import PTR

        super().__init__(PTR, name)
        self.elem_type = elem_type
        self.count = count
        self.init = list(init) if init is not None else None

    @property
    def ref(self) -> str:
        return "@" + self.name

    @property
    def size_bytes(self) -> int:
        return self.count * self.elem_type.size_bytes


class UndefValue(Value):
    """An undefined value (used for placeholder phi inputs)."""

    __slots__ = ()

    @property
    def ref(self) -> str:
        return "undef"
