"""Modules: top-level containers of functions and global arrays."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .function import Function
from .types import Type, VOID
from .values import GlobalArray


class Module:
    """A translation unit: named functions plus named global arrays."""

    __slots__ = ("name", "functions", "globals")

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalArray] = {}

    def add_function(
        self,
        name: str,
        arg_types: Sequence[Tuple[str, Type]] = (),
        return_type: Type = VOID,
    ) -> Function:
        if name in self.functions:
            raise ValueError("duplicate function %r" % name)
        fn = Function(name, arg_types, return_type, module=self)
        self.functions[name] = fn
        return fn

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError("no function named %r in module %s" % (name, self.name)) from None

    def add_global(
        self, name: str, elem_type: Type, count: int, init=None
    ) -> GlobalArray:
        if name in self.globals:
            raise ValueError("duplicate global %r" % name)
        g = GlobalArray(name, elem_type, count, init)
        self.globals[name] = g
        return g

    def get_global(self, name: str) -> GlobalArray:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError("no global named %r in module %s" % (name, self.name)) from None

    def __repr__(self) -> str:
        return "<Module %s (%d functions, %d globals)>" % (
            self.name,
            len(self.functions),
            len(self.globals),
        )
