"""Basic blocks: straight-line instruction sequences ended by a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from .instructions import Instruction, Phi


class BasicBlock:
    """A basic block within a function.

    Instructions are stored in execution order.  φ-nodes, if any, must be a
    prefix of the instruction list; the block must end with exactly one
    terminator (enforced by the verifier, not the container).
    """

    __slots__ = ("name", "instructions", "parent")

    def __init__(self, name: str, parent=None):
        self.name = name
        self.instructions: List[Instruction] = []
        self.parent = parent

    # -- structure -----------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's terminator, or None if the block is still open."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> list:
        term = self.terminator
        return list(term.successors) if term is not None else []

    @property
    def phis(self) -> List[Phi]:
        out = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                out.append(inst)
            else:
                break
        return out

    @property
    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return "<BasicBlock %s (%d insts)>" % (self.name, len(self.instructions))
