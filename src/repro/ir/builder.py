"""IRBuilder: the ergonomic construction API used by workloads and tests.

The builder tracks an insertion block and exposes one method per opcode.
Python ints/floats passed where a :class:`Value` is expected are coerced to
:class:`Constant` s of the appropriate type, which keeps workload kernels
compact and readable.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .block import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Compare,
    CondBranch,
    FP_BINOPS,
    Gep,
    INT_BINOPS,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    UnaryOp,
)
from .types import F64, I32, Type
from .values import Constant, Value

Operand = Union[Value, int, float]


class IRBuilder:
    """Builds instructions at the end of a current block."""

    def __init__(self, function: Function):
        self.function = function
        self.block: Optional[BasicBlock] = None

    # -- positioning ---------------------------------------------------------

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def add_block(self, name: str) -> BasicBlock:
        """Create a block (does not change the insertion point)."""
        return self.function.add_block(name)

    # -- operand coercion ----------------------------------------------------

    def _coerce(self, value: Operand, like: Optional[Value] = None, type_: Optional[Type] = None) -> Value:
        if isinstance(value, Value):
            return value
        if type_ is None:
            if like is not None and isinstance(like, Value):
                type_ = like.type
            elif isinstance(value, float):
                type_ = F64
            else:
                type_ = I32
        return Constant(type_, value)

    def _insert(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("IRBuilder has no insertion block")
        if self.block.terminator is not None:
            raise RuntimeError(
                "appending %s after terminator in block %s"
                % (inst.opcode, self.block.name)
            )
        if inst.name:
            inst.name = self.function.unique_name(inst.name)
        elif not inst.type.is_void:
            inst.name = self.function.unique_name(inst.opcode)
        return self.block.append(inst)

    # -- arithmetic ----------------------------------------------------------

    def binop(self, opcode: str, lhs: Operand, rhs: Operand, name: str = "") -> Instruction:
        lhs_v = self._coerce(lhs)
        rhs_v = self._coerce(rhs, like=lhs_v)
        if not isinstance(lhs, Value):
            lhs_v = self._coerce(lhs, like=rhs_v)
        return self._insert(BinaryOp(opcode, lhs_v, rhs_v, name))

    def unop(self, opcode: str, operand: Operand, result_type: Type, name: str = "") -> Instruction:
        return self._insert(UnaryOp(opcode, self._coerce(operand), result_type, name))

    def icmp(self, predicate: str, lhs: Operand, rhs: Operand, name: str = "") -> Instruction:
        lhs_v = self._coerce(lhs)
        rhs_v = self._coerce(rhs, like=lhs_v)
        if not isinstance(lhs, Value):
            lhs_v = self._coerce(lhs, like=rhs_v)
        return self._insert(Compare("icmp", predicate, lhs_v, rhs_v, name))

    def fcmp(self, predicate: str, lhs: Operand, rhs: Operand, name: str = "") -> Instruction:
        lhs_v = self._coerce(lhs, type_=F64 if not isinstance(lhs, Value) else None)
        rhs_v = self._coerce(rhs, like=lhs_v)
        return self._insert(Compare("fcmp", predicate, lhs_v, rhs_v, name))

    def select(self, cond: Value, true_val: Operand, false_val: Operand, name: str = "") -> Instruction:
        tv = self._coerce(true_val)
        fv = self._coerce(false_val, like=tv)
        return self._insert(Select(cond, tv, fv, name))

    # -- memory ---------------------------------------------------------------

    def load(self, type_: Type, address: Value, name: str = "") -> Instruction:
        return self._insert(Load(type_, address, name))

    def store(self, value: Operand, address: Value) -> Instruction:
        return self._insert(Store(self._coerce(value), address))

    def gep(self, base: Value, index: Operand, elem_size: int, name: str = "") -> Instruction:
        return self._insert(Gep(base, self._coerce(index), elem_size, name))

    def alloca(self, elem_type: Type, count: int = 1, name: str = "") -> Instruction:
        return self._insert(Alloca(elem_type, count, name))

    # -- ssa ------------------------------------------------------------------

    def phi(self, type_: Type, name: str = "") -> Phi:
        """Insert a φ at the *start* of the current block."""
        if self.block is None:
            raise RuntimeError("IRBuilder has no insertion block")
        node = Phi(type_, self.function.unique_name(name or "phi"))
        index = len(self.block.phis)
        self.block.insert(index, node)
        return node

    # -- control flow ----------------------------------------------------------

    def br(self, target: BasicBlock) -> Instruction:
        return self._insert(Branch(target))

    def condbr(self, cond: Value, true_target: BasicBlock, false_target: BasicBlock) -> Instruction:
        return self._insert(CondBranch(cond, true_target, false_target))

    def ret(self, value: Optional[Operand] = None) -> Instruction:
        v = None if value is None else self._coerce(value, type_=self.function.return_type)
        return self._insert(Ret(v))

    def call(self, callee: Function, args: Sequence[Operand], name: str = "") -> Instruction:
        coerced = [
            self._coerce(a, like=formal) for a, formal in zip(args, callee.args)
        ]
        if len(coerced) != len(callee.args):
            raise ValueError(
                "call to %s expects %d args, got %d"
                % (callee.name, len(callee.args), len(args))
            )
        return self._insert(Call(callee, coerced, name))

    # -- sugar: every binop as a method --------------------------------------


def _make_binop_method(opcode: str):
    def method(self: IRBuilder, lhs: Operand, rhs: Operand, name: str = "") -> Instruction:
        return self.binop(opcode, lhs, rhs, name)

    method.__name__ = opcode.rstrip("_")
    method.__doc__ = "Emit a %r instruction." % opcode
    return method


for _op in sorted(INT_BINOPS | FP_BINOPS):
    _name = {"and": "and_", "or": "or_"}.get(_op, _op)
    setattr(IRBuilder, _name, _make_binop_method(_op))
