"""Functions: ordered collections of basic blocks with typed arguments."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from .block import BasicBlock
from .instructions import CondBranch, Instruction
from .types import Type, VOID
from .values import Argument


class Function:
    """An IR function.

    The first block in ``blocks`` is the entry block.  Predecessor maps and
    other derived structure live in :mod:`repro.analysis.cfg`; the function
    itself stores only the program text.
    """

    __slots__ = ("name", "args", "return_type", "blocks", "module", "_names")

    def __init__(
        self,
        name: str,
        arg_types: Sequence[Tuple[str, Type]] = (),
        return_type: Type = VOID,
        module=None,
    ):
        self.name = name
        self.args: List[Argument] = [
            Argument(t, n, i) for i, (n, t) in enumerate(arg_types)
        ]
        self.return_type = return_type
        self.blocks: List[BasicBlock] = []
        self.module = module
        self._names: Dict[str, int] = {}

    # -- blocks --------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError("function %s has no blocks" % self.name)
        return self.blocks[0]

    def add_block(self, name: str) -> BasicBlock:
        block = BasicBlock(self.unique_name(name), parent=self)
        self.blocks.append(block)
        return block

    def get_block(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError("no block named %r in %s" % (name, self.name))

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    # -- naming --------------------------------------------------------------

    def unique_name(self, hint: str) -> str:
        """Return ``hint``, suffixed if needed to be unique in the function."""
        base = hint or "v"
        n = self._names.get(base)
        if n is None:
            self._names[base] = 1
            return base
        self._names[base] = n + 1
        return "%s.%d" % (base, n)

    # -- queries -------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    @property
    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def branches(self) -> List[CondBranch]:
        """All conditional branches in the function."""
        return [i for i in self.instructions() if isinstance(i, CondBranch)]

    def arg(self, name: str) -> Argument:
        for a in self.args:
            if a.name == name:
                return a
        raise KeyError("no argument named %r in %s" % (name, self.name))

    def __repr__(self) -> str:
        return "<Function %s (%d blocks, %d insts)>" % (
            self.name,
            len(self.blocks),
            self.instruction_count,
        )
