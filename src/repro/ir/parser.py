"""Textual IR parser: the inverse of :mod:`repro.ir.printer`.

Parses the LLVM-flavoured syntax the printer emits, so modules round-trip
through text.  Useful for writing kernels as text fixtures, diffing
transformed IR, and persisting extracted regions.

Grammar (one construct per line)::

    ; comment
    @name = global [N x ty]
    define ty @fn(ty %a, ty %b) {
    label:
      %x = add ty %a, %b          | binops / unops
      %c = icmp slt ty %a, %b     | fcmp likewise
      %s = select %c, ty %a, %b
      %v = load ty, %ptr
      store ty %v, %ptr
      %p = gep %base, %i, 8
      %m = alloca ty, N
      %f = phi ty [ %v, %bb ], ...
      br label %bb
      condbr %c, label %t, label %f
      ret ty %v                   | ret void
      %r = call ty @g(ty %a, ...)
    }
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .block import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Compare,
    CondBranch,
    FP_BINOPS,
    Gep,
    INT_BINOPS,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    UNOPS,
    UnaryOp,
)
from .module import Module
from .types import Type, type_from_name
from .values import Constant, UndefValue, Value


class ParseError(Exception):
    """Syntax or semantic error while parsing IR text."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        if line_no is not None:
            message = "line %d: %s" % (line_no, message)
        super().__init__(message)


_GLOBAL_RE = re.compile(r"@([\w.\-]+)\s*=\s*global\s*\[(\d+)\s*x\s*(\w+)\]")
_DEFINE_RE = re.compile(r"define\s+(\w+)\s+@([\w.\-]+)\((.*)\)\s*\{")
_LABEL_RE = re.compile(r"([\w.\-]+):\s*$")
_PHI_INC_RE = re.compile(r"\[\s*([^,\]]+)\s*,\s*%([\w.\-]+)\s*\]")


class _FunctionParser:
    """Parses one function body with forward-reference patching."""

    def __init__(self, module: Module, fn: Function):
        self.module = module
        self.fn = fn
        self.values: Dict[str, Value] = {a.name: a for a in fn.args}
        self.blocks: Dict[str, BasicBlock] = {}
        #: (instruction, operand slot filler) patched after all lines parse
        self.pending: List = []

    # -- operand handling --------------------------------------------------------

    def block_ref(self, name: str) -> BasicBlock:
        block = self.blocks.get(name)
        if block is None:
            block = self.fn.add_block(name)
            self.blocks[name] = block
        return block

    def operand(self, token: str, type_: Optional[Type], line_no: int) -> Value:
        token = token.strip()
        if token == "undef":
            return UndefValue(type_ or type_from_name("i32"))
        if token.startswith("%"):
            name = token[1:]
            val = self.values.get(name)
            if val is None:
                raise ParseError("use of undefined value %%%s" % name, line_no)
            return val
        if token.startswith("@"):
            try:
                return self.module.get_global(token[1:])
            except KeyError:
                raise ParseError(
                    "reference to undeclared global %s" % token, line_no
                ) from None
        # numeric constant
        try:
            if type_ is not None and type_.is_float:
                return Constant(type_, float(token))
            if "." in token or "e" in token or "inf" in token or "nan" in token:
                return Constant(type_ or type_from_name("f64"), float(token))
            return Constant(type_ or type_from_name("i32"), int(token))
        except ValueError:
            raise ParseError("bad operand %r" % token, line_no) from None

    def define(self, name: str, value: Value, line_no: int) -> None:
        if name in self.values:
            raise ParseError("redefinition of %%%s" % name, line_no)
        value.name = name
        self.values[name] = value


def parse_module(text: str, name: Optional[str] = None) -> Module:
    """Parse a whole module from text.

    The printer's leading ``; module <name>`` comment, when present, names
    the module so print->parse->print is a fixpoint.
    """
    if name is None:
        name = "module"
        for raw in text.splitlines():
            line = raw.strip()
            if not line:
                continue
            m = re.match(r";\s*module\s+(\S+)", line)
            if m:
                name = m.group(1)
            break
    return parse_module_into(text, Module(name))


def parse_function(text: str, module: Optional[Module] = None) -> Function:
    """Parse a single ``define ... { ... }`` into (a fresh) module."""
    module = module or Module("parsed")
    before = set(module.functions)
    parse_module_into(text, module)
    new = [f for n, f in module.functions.items() if n not in before]
    if len(new) != 1:
        raise ParseError("expected exactly one function definition")
    return new[0]


def parse_module_into(text: str, module: Module) -> Module:
    """Parse definitions into an existing module (for multi-step setup)."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = _strip(lines[i])
        i += 1
        if not line:
            continue
        g = _GLOBAL_RE.match(line)
        if g:
            gname, count, elem = g.groups()
            module.add_global(gname, type_from_name(elem), int(count))
            continue
        d = _DEFINE_RE.match(line)
        if d:
            i = _parse_function(module, d, lines, i)
            continue
        raise ParseError("unexpected top-level syntax: %r" % line, i)
    return module


def _strip(line: str) -> str:
    if ";" in line:
        line = line.split(";", 1)[0]
    return line.strip()


def _parse_args(spec: str) -> List[Tuple[str, Type]]:
    spec = spec.strip()
    if not spec:
        return []
    args = []
    for part in spec.split(","):
        tokens = part.split()
        if len(tokens) != 2 or not tokens[1].startswith("%"):
            raise ParseError("bad argument spec %r" % part)
        args.append((tokens[1][1:], type_from_name(tokens[0])))
    return args


def _parse_function(module: Module, header, lines: List[str], i: int) -> int:
    ret_name, fn_name, arg_spec = header.groups()
    fn = module.add_function(
        fn_name, _parse_args(arg_spec), type_from_name(ret_name)
    )
    ctx = _FunctionParser(module, fn)
    current: Optional[BasicBlock] = None

    while i < len(lines):
        raw = lines[i]
        line = _strip(raw)
        i += 1
        if not line:
            continue
        if line == "}":
            _patch_phis(ctx)
            _reorder_blocks(ctx, fn)
            return i
        label = _LABEL_RE.match(line)
        if label:
            current = ctx.block_ref(label.group(1))
            if current.instructions:
                raise ParseError("block %s defined twice" % current.name, i)
            # mark as "defined" by tagging order of appearance
            ctx.pending.append(("block-order", current))
            continue
        if current is None:
            raise ParseError("instruction before first label", i)
        _parse_instruction(ctx, current, line, i)
    raise ParseError("unexpected EOF inside @%s" % fn_name)


def _reorder_blocks(ctx: _FunctionParser, fn: Function) -> None:
    """Blocks appear in `fn.blocks` in first-reference order (forward branch
    targets get created early); restore textual definition order."""
    order = [e[1] for e in ctx.pending if e[0] == "block-order"]
    rest = [b for b in fn.blocks if b not in order]
    if rest:
        raise ParseError(
            "blocks referenced but never defined: %s"
            % ", ".join(b.name for b in rest)
        )
    fn.blocks[:] = order


def _patch_phis(ctx: _FunctionParser) -> None:
    for entry in ctx.pending:
        if entry[0] != "phi":
            continue
        _, phi, pairs, line_no = entry
        for val_token, blk_name in pairs:
            block = ctx.blocks.get(blk_name)
            if block is None:
                raise ParseError("phi references unknown block %s" % blk_name, line_no)
            phi.add_incoming(block, ctx.operand(val_token, phi.type, line_no))


def _parse_instruction(ctx: _FunctionParser, block: BasicBlock, line: str, ln: int) -> None:
    fn = ctx.fn

    # -- void instructions --------------------------------------------------
    if line.startswith("store "):
        m = re.match(r"store\s+(\w+)\s+([^,]+),\s*(.+)", line)
        if not m:
            raise ParseError("bad store: %r" % line, ln)
        ty = type_from_name(m.group(1))
        value = ctx.operand(m.group(2), ty, ln)
        address = ctx.operand(m.group(3), None, ln)
        block.append(Store(value, address))
        return
    if line.startswith("br "):
        m = re.match(r"br\s+label\s+%([\w.\-]+)", line)
        if not m:
            raise ParseError("bad br: %r" % line, ln)
        block.append(Branch(ctx.block_ref(m.group(1))))
        return
    if line.startswith("condbr "):
        m = re.match(
            r"condbr\s+([^,]+),\s*label\s+%([\w.\-]+),\s*label\s+%([\w.\-]+)", line
        )
        if not m:
            raise ParseError("bad condbr: %r" % line, ln)
        cond = ctx.operand(m.group(1), None, ln)
        block.append(
            CondBranch(cond, ctx.block_ref(m.group(2)), ctx.block_ref(m.group(3)))
        )
        return
    if line == "ret void":
        block.append(Ret())
        return
    if line.startswith("ret "):
        m = re.match(r"ret\s+(\w+)\s+(.+)", line)
        if not m:
            raise ParseError("bad ret: %r" % line, ln)
        block.append(Ret(ctx.operand(m.group(2), type_from_name(m.group(1)), ln)))
        return
    if line.startswith("call ") or " = call " in line:
        _parse_call(ctx, block, line, ln)
        return

    # -- value-producing instructions ------------------------------------------
    m = re.match(r"%([\w.\-]+)\s*=\s*(.+)", line)
    if not m:
        raise ParseError("cannot parse %r" % line, ln)
    dest, rest = m.groups()

    if rest.startswith("phi "):
        pm = re.match(r"phi\s+(\w+)\s+(.+)", rest)
        if not pm:
            raise ParseError("bad phi: %r" % line, ln)
        phi = Phi(type_from_name(pm.group(1)))
        pairs = _PHI_INC_RE.findall(pm.group(2))
        if not pairs:
            raise ParseError("phi with no incoming: %r" % line, ln)
        ctx.define(dest, phi, ln)
        ctx.pending.append(("phi", phi, pairs, ln))
        block.append(phi)
        return

    if rest.startswith(("icmp ", "fcmp ")):
        cm = re.match(r"(icmp|fcmp)\s+(\w+)\s+(\w+)\s+([^,]+),\s*(.+)", rest)
        if not cm:
            raise ParseError("bad compare: %r" % line, ln)
        op, pred, ty_name, lhs_t, rhs_t = cm.groups()
        ty = type_from_name(ty_name)
        inst = Compare(
            op, pred, ctx.operand(lhs_t, ty, ln), ctx.operand(rhs_t, ty, ln)
        )
        ctx.define(dest, inst, ln)
        block.append(inst)
        return

    if rest.startswith("select "):
        sm = re.match(r"select\s+([^,]+),\s*(\w+)\s+([^,]+),\s*(.+)", rest)
        if not sm:
            raise ParseError("bad select: %r" % line, ln)
        cond_t, ty_name, t_t, f_t = sm.groups()
        ty = type_from_name(ty_name)
        inst = Select(
            ctx.operand(cond_t, None, ln),
            ctx.operand(t_t, ty, ln),
            ctx.operand(f_t, ty, ln),
        )
        ctx.define(dest, inst, ln)
        block.append(inst)
        return

    if rest.startswith("load "):
        lm = re.match(r"load\s+(\w+),\s*(.+)", rest)
        if not lm:
            raise ParseError("bad load: %r" % line, ln)
        inst = Load(type_from_name(lm.group(1)), ctx.operand(lm.group(2), None, ln))
        ctx.define(dest, inst, ln)
        block.append(inst)
        return

    if rest.startswith("gep "):
        gm = re.match(r"gep\s+([^,]+),\s*([^,]+),\s*(\d+)", rest)
        if not gm:
            raise ParseError("bad gep: %r" % line, ln)
        inst = Gep(
            ctx.operand(gm.group(1), None, ln),
            ctx.operand(gm.group(2), None, ln),
            int(gm.group(3)),
        )
        ctx.define(dest, inst, ln)
        block.append(inst)
        return

    if rest.startswith("alloca "):
        am = re.match(r"alloca\s+(\w+),\s*(\d+)", rest)
        if not am:
            raise ParseError("bad alloca: %r" % line, ln)
        inst = Alloca(type_from_name(am.group(1)), int(am.group(2)))
        ctx.define(dest, inst, ln)
        block.append(inst)
        return

    # binop / unop: "<opcode> <ty> <op1>[, <op2>]"
    om = re.match(r"([\w.]+)\s+(\w+)\s+(.+)", rest)
    if not om:
        raise ParseError("cannot parse %r" % line, ln)
    opcode, ty_name, operand_spec = om.groups()
    ty = type_from_name(ty_name)
    operands = [t.strip() for t in operand_spec.split(",")]
    if opcode in INT_BINOPS or opcode in FP_BINOPS:
        if len(operands) != 2:
            raise ParseError("binop needs two operands: %r" % line, ln)
        inst = BinaryOp(
            opcode, ctx.operand(operands[0], ty, ln), ctx.operand(operands[1], ty, ln)
        )
    elif opcode in UNOPS:
        if len(operands) != 1:
            raise ParseError("unop needs one operand: %r" % line, ln)
        # for conversions the printed type is the *result* type
        inst = UnaryOp(opcode, ctx.operand(operands[0], None, ln), ty)
    else:
        raise ParseError("unknown opcode %r" % opcode, ln)
    ctx.define(dest, inst, ln)
    block.append(inst)


def _parse_call(ctx: _FunctionParser, block: BasicBlock, line: str, ln: int) -> None:
    m = re.match(
        r"(?:%([\w.\-]+)\s*=\s*)?call\s+(\w+)\s+@([\w.\-]+)\((.*)\)", line
    )
    if not m:
        raise ParseError("bad call: %r" % line, ln)
    dest, ret_ty, callee_name, arg_spec = m.groups()
    callee = ctx.module.get_function(callee_name)
    args: List[Value] = []
    if arg_spec.strip():
        for part in arg_spec.split(","):
            tokens = part.strip().split(None, 1)
            if len(tokens) != 2:
                raise ParseError("bad call argument %r" % part, ln)
            args.append(ctx.operand(tokens[1], type_from_name(tokens[0]), ln))
    inst = Call(callee, args)
    if dest:
        ctx.define(dest, inst, ln)
    block.append(inst)
