"""Textual (LLVM-flavoured) printing of IR modules and functions."""

from __future__ import annotations

from typing import List

from .function import Function
from .instructions import (
    Alloca,
    Branch,
    Call,
    Compare,
    CondBranch,
    Gep,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)


def format_instruction(inst: Instruction) -> str:
    """Render one instruction as a single line of IR text."""
    if isinstance(inst, Phi):
        pairs = ", ".join(
            "[ %s, %%%s ]" % (v.ref, b.name) for b, v in inst.incoming
        )
        return "%%%s = phi %s %s" % (inst.name, inst.type, pairs)
    if isinstance(inst, Compare):
        return "%%%s = %s %s %s %s, %s" % (
            inst.name,
            inst.opcode,
            inst.predicate,
            inst.operands[0].type,
            inst.operands[0].ref,
            inst.operands[1].ref,
        )
    if isinstance(inst, Select):
        c, t, f = inst.operands
        return "%%%s = select %s, %s %s, %s" % (inst.name, c.ref, t.type, t.ref, f.ref)
    if isinstance(inst, Load):
        return "%%%s = load %s, %s" % (inst.name, inst.type, inst.address.ref)
    if isinstance(inst, Store):
        return "store %s %s, %s" % (inst.value.type, inst.value.ref, inst.address.ref)
    if isinstance(inst, Gep):
        return "%%%s = gep %s, %s, %d" % (
            inst.name,
            inst.base.ref,
            inst.index.ref,
            inst.elem_size,
        )
    if isinstance(inst, Alloca):
        return "%%%s = alloca %s, %d" % (inst.name, inst.elem_type, inst.count)
    if isinstance(inst, Branch):
        return "br label %%%s" % inst.target.name
    if isinstance(inst, CondBranch):
        return "condbr %s, label %%%s, label %%%s" % (
            inst.cond.ref,
            inst.true_target.name,
            inst.false_target.name,
        )
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret void"
        return "ret %s %s" % (inst.value.type, inst.value.ref)
    if isinstance(inst, Call):
        args = ", ".join("%s %s" % (a.type, a.ref) for a in inst.operands)
        lhs = "%%%s = " % inst.name if not inst.type.is_void else ""
        return "%scall %s @%s(%s)" % (lhs, inst.type, inst.callee.name, args)
    # generic binop/unop
    ops = ", ".join(o.ref for o in inst.operands)
    return "%%%s = %s %s %s" % (inst.name, inst.opcode, inst.type, ops)


def format_function(fn: Function) -> str:
    """Render a whole function."""
    args = ", ".join("%s %%%s" % (a.type, a.name) for a in fn.args)
    lines: List[str] = ["define %s @%s(%s) {" % (fn.return_type, fn.name, args)]
    for block in fn.blocks:
        lines.append("%s:" % block.name)
        for inst in block.instructions:
            lines.append("  " + format_instruction(inst))
    lines.append("}")
    return "\n".join(lines)


def format_module(module) -> str:
    """Render a whole module: globals then functions."""
    lines: List[str] = ["; module %s" % module.name]
    for g in module.globals.values():
        lines.append(
            "@%s = global [%d x %s]" % (g.name, g.count, g.elem_type)
        )
    for fn in module.functions.values():
        lines.append("")
        lines.append(format_function(fn))
    return "\n".join(lines)
