"""Instruction set of the mini SSA IR.

The opcode inventory mirrors the LLVM subset Needle operates on: integer and
floating point arithmetic, comparisons, selects, loads/stores with simple
address arithmetic (``gep``), φ-nodes, and the three terminators
(unconditional branch, conditional branch, return).  ``call`` is supported so
call sequences can be written and then inlined, matching the paper's
"aggressive inlining of call sequences" before analysis.

Each opcode carries static metadata used throughout the stack:

* ``LATENCY`` — default execution latency in cycles (host FU and CGRA FU),
* ``ENERGY_CLASS`` — which per-op energy bucket it bills to,
* category predicates (:func:`is_memory_op`, :func:`is_float_op`, ...).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .types import I1, Type
from .values import Value

# --------------------------------------------------------------------------
# Opcode inventory
# --------------------------------------------------------------------------

INT_BINOPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "sdiv",
        "srem",
        "and",
        "or",
        "xor",
        "shl",
        "lshr",
        "ashr",
        "smin",
        "smax",
    }
)

FP_BINOPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "fmin", "fmax"})

#: unary value-to-value operations, including conversions
UNOPS = frozenset(
    {"fneg", "fabs", "fsqrt", "sitofp", "fptosi", "zext", "sext", "trunc"}
)

ICMP_PREDICATES = frozenset({"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ugt"})
FCMP_PREDICATES = frozenset({"oeq", "one", "olt", "ole", "ogt", "oge"})

TERMINATORS = frozenset({"br", "condbr", "ret"})

MEMORY_OPS = frozenset({"load", "store"})

ALL_OPCODES = (
    INT_BINOPS
    | FP_BINOPS
    | UNOPS
    | MEMORY_OPS
    | TERMINATORS
    | {"icmp", "fcmp", "select", "gep", "alloca", "phi", "call"}
)

#: Default per-opcode latency (cycles).  Shared by the OOO host model and the
#: CGRA scheduler; either may override via its own latency table.
LATENCY = {
    "add": 1,
    "sub": 1,
    "and": 1,
    "or": 1,
    "xor": 1,
    "shl": 1,
    "lshr": 1,
    "ashr": 1,
    "smin": 1,
    "smax": 1,
    "mul": 3,
    "sdiv": 12,
    "srem": 12,
    "fadd": 3,
    "fsub": 3,
    "fmin": 2,
    "fmax": 2,
    "fmul": 4,
    "fdiv": 16,
    "fneg": 1,
    "fabs": 1,
    "fsqrt": 20,
    "sitofp": 3,
    "fptosi": 3,
    "zext": 1,
    "sext": 1,
    "trunc": 1,
    "icmp": 1,
    "fcmp": 2,
    "select": 1,
    "gep": 1,
    "alloca": 1,
    "phi": 0,
    "br": 1,
    "condbr": 1,
    "ret": 1,
    "call": 1,
    "load": 2,  # plus memory-system latency beyond the L1 hit baked in here
    "store": 1,
}


def is_float_op(opcode: str) -> bool:
    """True if the opcode executes on a floating point unit."""
    return opcode in FP_BINOPS or opcode in {
        "fneg",
        "fabs",
        "fsqrt",
        "fcmp",
        "sitofp",
        "fptosi",
        "fmin",
        "fmax",
    }


def is_memory_op(opcode: str) -> bool:
    return opcode in MEMORY_OPS


def is_terminator_op(opcode: str) -> bool:
    return opcode in TERMINATORS


# --------------------------------------------------------------------------
# Instruction classes
# --------------------------------------------------------------------------


class Instruction(Value):
    """Base class for all instructions.

    An instruction is itself a :class:`Value` (its result).  ``operands``
    holds data operands only; control successors are separate attributes of
    terminator subclasses.

    Attributes:
        opcode: opcode string from :data:`ALL_OPCODES`.
        operands: list of operand :class:`Value` s.
        parent: owning :class:`~repro.ir.block.BasicBlock` (set on insert).
    """

    __slots__ = ("opcode", "operands", "parent")

    def __init__(self, opcode: str, type_: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name)
        if opcode not in ALL_OPCODES:
            raise ValueError("unknown opcode: %r" % opcode)
        self.opcode = opcode
        self.operands = list(operands)
        self.parent = None

    # -- category predicates -------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPS

    @property
    def is_float(self) -> bool:
        return is_float_op(self.opcode)

    @property
    def latency(self) -> int:
        return LATENCY[self.opcode]

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` among operands; returns count."""
        n = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                n += 1
        return n

    def __repr__(self) -> str:
        return "<%s %s>" % (self.opcode, self.ref)


class BinaryOp(Instruction):
    """Two-operand arithmetic/logical operation."""

    __slots__ = ()

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in INT_BINOPS and opcode not in FP_BINOPS:
            raise ValueError("not a binary opcode: %r" % opcode)
        super().__init__(opcode, lhs.type, [lhs, rhs], name)


class UnaryOp(Instruction):
    """One-operand operation, including numeric conversions."""

    __slots__ = ()

    def __init__(self, opcode: str, operand: Value, result_type: Type, name: str = ""):
        if opcode not in UNOPS:
            raise ValueError("not a unary opcode: %r" % opcode)
        super().__init__(opcode, result_type, [operand], name)


class Compare(Instruction):
    """Integer (``icmp``) or float (``fcmp``) comparison yielding ``i1``."""

    __slots__ = ("predicate",)

    def __init__(self, opcode: str, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode == "icmp":
            if predicate not in ICMP_PREDICATES:
                raise ValueError("bad icmp predicate: %r" % predicate)
        elif opcode == "fcmp":
            if predicate not in FCMP_PREDICATES:
                raise ValueError("bad fcmp predicate: %r" % predicate)
        else:
            raise ValueError("not a compare opcode: %r" % opcode)
        super().__init__(opcode, I1, [lhs, rhs], name)
        self.predicate = predicate


class Select(Instruction):
    """``select cond, a, b`` — the IR-level conditional move."""

    __slots__ = ()

    def __init__(self, cond: Value, true_val: Value, false_val: Value, name: str = ""):
        super().__init__("select", true_val.type, [cond, true_val, false_val], name)


class Load(Instruction):
    """Load a scalar of ``type_`` from the address operand."""

    __slots__ = ()

    def __init__(self, type_: Type, address: Value, name: str = ""):
        super().__init__("load", type_, [address], name)

    @property
    def address(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Store ``value`` to ``address``; produces no result."""

    __slots__ = ()

    def __init__(self, value: Value, address: Value):
        from .types import VOID

        super().__init__("store", VOID, [value, address])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def address(self) -> Value:
        return self.operands[1]


class Gep(Instruction):
    """Address computation: ``base + index * elem_size`` (flat arrays)."""

    __slots__ = ("elem_size",)

    def __init__(self, base: Value, index: Value, elem_size: int, name: str = ""):
        from .types import PTR

        super().__init__("gep", PTR, [base, index], name)
        self.elem_size = int(elem_size)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class Alloca(Instruction):
    """Reserve ``count`` elements of ``elem_type`` in the function frame."""

    __slots__ = ("elem_type", "count")

    def __init__(self, elem_type: Type, count: int = 1, name: str = ""):
        from .types import PTR

        super().__init__("alloca", PTR, [], name)
        self.elem_type = elem_type
        self.count = int(count)

    @property
    def size_bytes(self) -> int:
        return self.count * self.elem_type.size_bytes


class Phi(Instruction):
    """SSA φ-node.  ``incoming`` pairs (block, value); blocks must be preds."""

    __slots__ = ("incoming",)

    def __init__(self, type_: Type, name: str = ""):
        super().__init__("phi", type_, [], name)
        self.incoming: List[Tuple[object, Value]] = []

    def add_incoming(self, block, value: Value) -> None:
        self.incoming.append((block, value))
        self.operands.append(value)

    def incoming_for(self, block) -> Optional[Value]:
        for blk, val in self.incoming:
            if blk is block:
                return val
        return None

    def remove_incoming(self, block) -> None:
        kept = [(b, v) for (b, v) in self.incoming if b is not block]
        self.incoming = kept
        self.operands = [v for (_, v) in kept]


class Branch(Instruction):
    """Unconditional branch."""

    __slots__ = ("target",)

    def __init__(self, target):
        from .types import VOID

        super().__init__("br", VOID, [])
        self.target = target

    @property
    def successors(self):
        return [self.target]


class CondBranch(Instruction):
    """Conditional two-way branch on an ``i1`` condition."""

    __slots__ = ("true_target", "false_target")

    def __init__(self, cond: Value, true_target, false_target):
        from .types import VOID

        super().__init__("condbr", VOID, [cond])
        self.true_target = true_target
        self.false_target = false_target

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def successors(self):
        return [self.true_target, self.false_target]


class Ret(Instruction):
    """Return from the function, optionally with a value."""

    __slots__ = ()

    def __init__(self, value: Optional[Value] = None):
        from .types import VOID

        super().__init__("ret", VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def successors(self):
        return []


class Call(Instruction):
    """Direct call to another function in the same module."""

    __slots__ = ("callee",)

    def __init__(self, callee, args: Sequence[Value], name: str = ""):
        super().__init__("call", callee.return_type, list(args), name)
        self.callee = callee
