"""Function inlining (the paper's "aggressive inlining of call sequences").

Needle analyses a fully inlined hot function: Ball–Larus paths, predication
statistics (§II: "our predication statistics differ from prior work because
of aggressive inlining") and region formation all operate post-inline.
:func:`inline_all` saturates a function by repeatedly splicing direct,
non-recursive callees into the caller.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.function import Function
from ..ir.instructions import Branch, Call, Phi, Ret
from ..ir.values import Value
from .clone import clone_body_into


class InlineError(Exception):
    """The call site cannot be inlined (recursion, malformed callee...)."""


def _replace_uses(fn: Function, old: Value, new: Value) -> None:
    for block in fn.blocks:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                changed = False
                for i, (blk, val) in enumerate(inst.incoming):
                    if val is old:
                        inst.incoming[i] = (blk, new)
                        changed = True
                if changed:
                    inst.operands = [v for _, v in inst.incoming]
            else:
                inst.replace_operand(old, new)


def inline_call(fn: Function, call: Call) -> None:
    """Splice ``call``'s callee into ``fn`` at the call site."""
    callee = call.callee
    if callee is fn:
        raise InlineError("direct recursion cannot be inlined")
    host_block = call.parent
    if host_block is None or host_block.parent is not fn:
        raise InlineError("call site does not belong to the function")
    if not callee.blocks:
        raise InlineError("callee %s has no body" % callee.name)

    # 1. split the host block at the call
    index = host_block.instructions.index(call)
    tail = host_block.instructions[index + 1 :]
    del host_block.instructions[index:]
    cont_block = fn.add_block("%s.cont" % host_block.name)
    for inst in tail:
        inst.parent = cont_block
        cont_block.instructions.append(inst)
    # successors' φs now arrive from cont_block instead of host_block
    for succ_block in cont_block.successors:
        for phi in succ_block.phis:
            phi.incoming = [
                (cont_block if blk is host_block else blk, val)
                for blk, val in phi.incoming
            ]

    # 2. clone the callee with arguments bound to the actual operands
    value_map: Dict[Value, Value] = {
        formal: actual for formal, actual in zip(callee.args, call.operands)
    }
    block_map = clone_body_into(callee, fn, value_map, "inl.%s" % callee.name)

    # 3. jump into the cloned entry
    host_block.append(Branch(block_map[callee.entry]))

    # 4. rewire every cloned return to the continuation
    ret_values = []
    for cloned in block_map.values():
        term = cloned.terminator
        if isinstance(term, Ret):
            ret_values.append((cloned, term.value))
            cloned.remove(term)
            cloned.append(Branch(cont_block))

    # 5. substitute the call's result
    if not call.type.is_void:
        if not ret_values:
            raise InlineError("callee %s never returns a value" % callee.name)
        if len(ret_values) == 1:
            replacement: Value = ret_values[0][1]
        else:
            phi = Phi(call.type, fn.unique_name("%s.ret" % callee.name))
            for blk, val in ret_values:
                phi.add_incoming(blk, val)
            cont_block.insert(0, phi)
            replacement = phi
        _replace_uses(fn, call, replacement)


def inline_all(fn: Function, max_rounds: int = 10) -> int:
    """Inline every direct non-recursive call, repeatedly, to saturation.

    Returns the number of call sites inlined.  Call chains up to
    ``max_rounds`` deep are flattened; (mutual) recursion is left alone.
    """
    inlined = 0
    for _ in range(max_rounds):
        sites: List[Call] = [
            inst
            for inst in fn.instructions()
            if isinstance(inst, Call) and inst.callee is not fn
        ]
        sites = [s for s in sites if not _reaches(s.callee, fn)]
        if not sites:
            break
        for call in sites:
            inline_call(fn, call)
            inlined += 1
    return inlined


def _reaches(callee: Function, target: Function, seen: Optional[Set] = None) -> bool:
    """Does ``callee`` (transitively) call ``target``?  (recursion guard)"""
    seen = seen or set()
    if callee in seen:
        return False
    seen.add(callee)
    for inst in callee.instructions():
        if isinstance(inst, Call):
            if inst.callee is target or _reaches(inst.callee, target, seen):
                return True
    return False
