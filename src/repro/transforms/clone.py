"""Instruction/block cloning with value remapping (the inliner's engine)."""

from __future__ import annotations

from typing import Dict

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Compare,
    CondBranch,
    Gep,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    UnaryOp,
)
from ..ir.values import Value


def remap(value: Value, value_map: Dict[Value, Value]) -> Value:
    """Map a value through the clone substitution (identity if unmapped)."""
    return value_map.get(value, value)


def clone_instruction(
    inst: Instruction,
    value_map: Dict[Value, Value],
    block_map: Dict[BasicBlock, BasicBlock],
) -> Instruction:
    """Deep-copy ``inst`` with operands/targets remapped.

    φ incomings are cloned with remapped *values*; their incoming blocks are
    remapped too (the caller guarantees all predecessor blocks are cloned
    before φ patch-up, which holds because we clone blocks first and
    instructions after).
    """

    def op(i: int) -> Value:
        return remap(inst.operands[i], value_map)

    if isinstance(inst, BinaryOp):
        out: Instruction = BinaryOp(inst.opcode, op(0), op(1), inst.name)
    elif isinstance(inst, UnaryOp):
        out = UnaryOp(inst.opcode, op(0), inst.type, inst.name)
    elif isinstance(inst, Compare):
        out = Compare(inst.opcode, inst.predicate, op(0), op(1), inst.name)
    elif isinstance(inst, Select):
        out = Select(op(0), op(1), op(2), inst.name)
    elif isinstance(inst, Load):
        out = Load(inst.type, op(0), inst.name)
    elif isinstance(inst, Store):
        out = Store(op(0), op(1))
    elif isinstance(inst, Gep):
        out = Gep(op(0), op(1), inst.elem_size, inst.name)
    elif isinstance(inst, Alloca):
        out = Alloca(inst.elem_type, inst.count, inst.name)
    elif isinstance(inst, Phi):
        phi = Phi(inst.type, inst.name)
        for blk, val in inst.incoming:
            phi.add_incoming(block_map.get(blk, blk), remap(val, value_map))
        out = phi
    elif isinstance(inst, Branch):
        out = Branch(block_map.get(inst.target, inst.target))
    elif isinstance(inst, CondBranch):
        out = CondBranch(
            op(0),
            block_map.get(inst.true_target, inst.true_target),
            block_map.get(inst.false_target, inst.false_target),
        )
    elif isinstance(inst, Ret):
        out = Ret(remap(inst.value, value_map) if inst.value is not None else None)
    elif isinstance(inst, Call):
        out = Call(inst.callee, [remap(a, value_map) for a in inst.operands], inst.name)
    else:  # pragma: no cover - closed hierarchy
        raise TypeError("cannot clone %r" % inst)
    value_map[inst] = out
    return out


def clone_body_into(
    callee: Function,
    host: Function,
    value_map: Dict[Value, Value],
    name_prefix: str,
) -> Dict[BasicBlock, BasicBlock]:
    """Clone every block of ``callee`` into ``host``.

    ``value_map`` must already bind the callee's arguments.  Returns the
    block map; the cloned blocks are appended to ``host.blocks`` and all
    internal references point at the clones.
    """
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in callee.blocks:
        block_map[block] = host.add_block("%s.%s" % (name_prefix, block.name))
    for block in callee.blocks:
        clone = block_map[block]
        for inst in block.instructions:
            new = clone_instruction(inst, value_map, block_map)
            if new.name:
                new.name = host.unique_name(new.name)
            clone.append(new)
    return block_map
