"""Scalar and CFG clean-up passes: constant folding, dead code elimination,
unreachable-block removal and trivial φ simplification.

These run after inlining (constant-bound arguments create foldable trees)
and before profiling/region formation, mirroring the -O pipeline position
of the LLVM passes Needle assumes.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..interp.interpreter import (
    _FCMP_FNS,
    _FP_BINOP_FNS,
    _ICMP_FNS,
    _INT_BINOP_FNS,
)
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryOp,
    Branch,
    Compare,
    CondBranch,
    Instruction,
    Phi,
    Select,
    UnaryOp,
)
from ..ir.values import Constant, Value


# --------------------------------------------------------------------------
# constant folding
# --------------------------------------------------------------------------


def _fold_one(inst: Instruction) -> Optional[Constant]:
    ops = inst.operands
    if isinstance(inst, BinaryOp) and all(isinstance(o, Constant) for o in ops):
        fn = _INT_BINOP_FNS.get(inst.opcode) or _FP_BINOP_FNS.get(inst.opcode)
        if fn is None:
            return None
        try:
            return Constant(inst.type, fn(ops[0].value, ops[1].value))
        except Exception:
            return None  # division by zero etc. must stay dynamic
    if isinstance(inst, Compare) and all(isinstance(o, Constant) for o in ops):
        table = _ICMP_FNS if inst.opcode == "icmp" else _FCMP_FNS
        return Constant(inst.type, 1 if table[inst.predicate](ops[0].value, ops[1].value) else 0)
    if isinstance(inst, Select) and isinstance(ops[0], Constant):
        chosen = ops[1] if ops[0].value else ops[2]
        if isinstance(chosen, Constant):
            return chosen
        return None
    if isinstance(inst, UnaryOp) and isinstance(ops[0], Constant):
        import math

        v = ops[0].value
        try:
            if inst.opcode == "fneg":
                return Constant(inst.type, -v)
            if inst.opcode == "fabs":
                return Constant(inst.type, abs(v))
            if inst.opcode == "fsqrt" and v >= 0:
                return Constant(inst.type, math.sqrt(v))
            if inst.opcode == "sitofp":
                return Constant(inst.type, float(v))
            if inst.opcode == "fptosi":
                return Constant(inst.type, int(v))
            if inst.opcode in ("zext", "sext", "trunc"):
                return Constant(inst.type, v)
        except Exception:
            return None
    return None


def constant_fold(fn: Function) -> int:
    """Fold constant expressions; returns the number of folded instructions."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                c = _fold_one(inst)
                if c is None:
                    continue
                _replace_all_uses(fn, inst, c)
                block.remove(inst)
                folded += 1
                changed = True
    return folded


def _replace_all_uses(fn: Function, old: Value, new: Value) -> None:
    for block in fn.blocks:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                hit = False
                for i, (blk, val) in enumerate(inst.incoming):
                    if val is old:
                        inst.incoming[i] = (blk, new)
                        hit = True
                if hit:
                    inst.operands = [v for _, v in inst.incoming]
            else:
                inst.replace_operand(old, new)


# --------------------------------------------------------------------------
# dead code elimination
# --------------------------------------------------------------------------

_SIDE_EFFECT_OPCODES = {"store", "call", "alloca"}


def dead_code_eliminate(fn: Function) -> int:
    """Remove value-producing instructions with no uses; returns count."""
    removed = 0
    changed = True
    while changed:
        changed = False
        used: Set[Value] = set()
        for block in fn.blocks:
            for inst in block.instructions:
                operands = (
                    [v for _, v in inst.incoming]
                    if isinstance(inst, Phi)
                    else inst.operands
                )
                used.update(operands)
        for block in fn.blocks:
            for inst in list(block.instructions):
                if inst.is_terminator or inst.opcode in _SIDE_EFFECT_OPCODES:
                    continue
                if inst.type.is_void:
                    continue
                if inst not in used:
                    block.remove(inst)
                    removed += 1
                    changed = True
    return removed


# --------------------------------------------------------------------------
# CFG simplification
# --------------------------------------------------------------------------


def simplify_cfg(fn: Function) -> int:
    """Fold constant branches, drop unreachable blocks, simplify φs.

    Returns the number of structural changes made.
    """
    changes = 0

    # constant condbr -> br
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, CondBranch) and isinstance(term.cond, Constant):
            target = term.true_target if term.cond.value else term.false_target
            dead_side = term.false_target if term.cond.value else term.true_target
            block.remove(term)
            block.append(Branch(target))
            if dead_side is not target:
                for phi in dead_side.phis:
                    phi.remove_incoming(block)
            changes += 1

    # unreachable block removal
    reachable: Set[BasicBlock] = set()
    stack = [fn.entry] if fn.blocks else []
    while stack:
        b = stack.pop()
        if b in reachable:
            continue
        reachable.add(b)
        stack.extend(b.successors)
    for block in list(fn.blocks):
        if block not in reachable:
            for succ in block.successors:
                if succ in reachable:
                    for phi in succ.phis:
                        phi.remove_incoming(block)
            fn.remove_block(block)
            changes += 1

    # single-incoming φ simplification
    for block in fn.blocks:
        for phi in list(block.phis):
            if len(phi.incoming) == 1:
                _replace_all_uses(fn, phi, phi.incoming[0][1])
                block.remove(phi)
                changes += 1
    return changes


def optimize(fn: Function, rounds: int = 4) -> Dict[str, int]:
    """Run fold → simplify → DCE to fixpoint; returns per-pass counts."""
    totals = {"folded": 0, "cfg": 0, "dce": 0}
    for _ in range(rounds):
        f = constant_fold(fn)
        c = simplify_cfg(fn)
        d = dead_code_eliminate(fn)
        totals["folded"] += f
        totals["cfg"] += c
        totals["dce"] += d
        if f == c == d == 0:
            break
    return totals
