"""IR-to-IR transformations: inlining (the paper's pre-analysis step) and
the scalar/CFG clean-up passes that follow it."""

from .clone import clone_body_into, clone_instruction, remap
from .inline import InlineError, inline_all, inline_call
from .optimize import (
    constant_fold,
    dead_code_eliminate,
    optimize,
    simplify_cfg,
)
from .unroll import UnrollError, unroll_hottest_loop, unroll_loop

__all__ = [
    "InlineError",
    "UnrollError",
    "unroll_hottest_loop",
    "unroll_loop",
    "clone_body_into",
    "clone_instruction",
    "constant_fold",
    "dead_code_eliminate",
    "inline_all",
    "inline_call",
    "optimize",
    "remap",
    "simplify_cfg",
]
