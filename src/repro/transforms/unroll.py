"""Loop unrolling (paper §VI: blackscholes' "aggressive loop unrolling
(4x)"; §II: TRIPS "relies on aggressive loop unrolling").

Unrolling a natural loop by factor *k* clones the loop body k−1 times and
chains the copies: each copy's header re-tests the exit condition, so any
trip count remains correct (no remainder loop needed).  Every loop-carried
φ threads through the copies; exit-block φs gain one incoming edge per
cloned exit.

The transform handles the common shape our kernels (and most hot loops)
have — a single-header natural loop whose back edges all re-enter the
header — and refuses anything more exotic rather than miscompiling it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.cfg import CFG
from ..analysis.loops import Loop, LoopInfo
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, CondBranch, Instruction, Phi
from ..ir.values import Value
from .clone import clone_instruction


class UnrollError(Exception):
    """The loop shape is not supported for unrolling."""


def unroll_loop(fn: Function, loop: Loop, factor: int) -> None:
    """Unroll ``loop`` in place by ``factor`` (>= 2)."""
    if factor < 2:
        raise UnrollError("factor must be >= 2")
    header = loop.header
    body_blocks = [b for b in fn.blocks if b in loop.blocks]  # stable order
    cfg = CFG(fn)

    # preconditions: all latches jump straight to the header; nothing outside
    # the loop (except the preheader edges) enters a non-header loop block
    for blk in body_blocks:
        if blk is header:
            continue
        for pred in cfg.preds(blk):
            if pred not in loop.blocks:
                raise UnrollError(
                    "block %s is entered from outside the loop" % blk.name
                )

    exit_targets = {succ for _, succ in loop.exits(cfg)}
    _make_lcssa(fn, loop, cfg, exit_targets)

    # the values flowing into header φs along back edges, per latch
    header_phis = header.phis

    # -- phase 1: clone every copy from the PRISTINE originals -----------------
    # Each copy is initially a self-contained cycle through its own header;
    # chaining happens afterwards so originals are never cloned post-mutation.
    identity_bm: Dict[BasicBlock, BasicBlock] = {b: b for b in body_blocks}
    copies: List[Tuple[Dict[BasicBlock, BasicBlock], Dict[Value, Value]]] = [
        (identity_bm, {})
    ]
    for copy in range(1, factor):
        value_map: Dict[Value, Value] = {}
        block_map: Dict[BasicBlock, BasicBlock] = {}
        for blk in body_blocks:
            block_map[blk] = fn.add_block("%s.u%d" % (blk.name, copy))
        for blk in body_blocks:
            clone = block_map[blk]
            for inst in blk.instructions:
                new = clone_instruction(inst, value_map, block_map)
                if new.name:
                    new.name = fn.unique_name("u%d.%s" % (copy, inst.name))
                clone.append(new)
        copies.append((block_map, value_map))

    # -- phase 2: exit φs gain incomings from every copy's exiting blocks -------
    for block_map, value_map in copies[1:]:
        for blk in body_blocks:
            clone = block_map[blk]
            for succ in clone.successors:
                if succ in exit_targets:
                    for phi in succ.phis:
                        orig_val = phi.incoming_for(blk)
                        if orig_val is not None:
                            phi.add_incoming(
                                clone, value_map.get(orig_val, orig_val)
                            )

    # -- phase 3: chain the copies ------------------------------------------------
    # latch of copy i jumps to header of copy i+1 (mod factor); header φs of
    # copy i take the loop-carried values from copy i-1 (mod factor).
    def header_of(i: int) -> BasicBlock:
        return copies[i][0][header]

    for i in range(factor):
        bm_i, _ = copies[i]
        nxt = header_of((i + 1) % factor)
        for latch in loop.latches:
            _redirect(bm_i[latch].terminator, header_of(i), nxt)

    original_incomings = {phi: list(phi.incoming) for phi in header_phis}
    for i in range(factor):
        bm_prev, vm_prev = copies[(i - 1) % factor]
        this_header = header_of(i)
        this_phis = this_header.phis if i else header_phis
        for phi_orig, phi_here in zip(header_phis, this_phis):
            incoming: List[Tuple[BasicBlock, Value]] = []
            for blk, val in original_incomings[phi_orig]:
                if blk in loop.blocks:  # back edge: comes from the prev copy
                    incoming.append((bm_prev[blk], vm_prev.get(val, val)))
                elif i == 0:  # preheader edges only exist on the original
                    incoming.append((blk, val))
            phi_here.incoming = incoming
            phi_here.operands = [v for _, v in incoming]


def _make_lcssa(fn: Function, loop: Loop, cfg: CFG, exit_targets) -> None:
    """Insert loop-closed SSA φs: every loop-defined value used outside the
    loop flows through a φ in the exit block, so unrolling only needs to add
    incoming edges for the cloned exits."""
    loop_defs = [
        inst
        for blk in loop.blocks
        for inst in blk.instructions
        if not inst.type.is_void
    ]
    loop_def_set = set(loop_defs)

    for exit_block in exit_targets:
        preds = cfg.preds(exit_block)
        loop_preds = [p for p in preds if p in loop.blocks]
        if not loop_preds:
            continue
        mixed = len(loop_preds) != len(preds)

        for v in loop_defs:
            # collect uses of v outside the loop; φ-uses along loop edges
            # are already loop-closed and stay as they are
            plain_uses: List[Instruction] = []
            phi_edge_uses: List[Tuple[Phi, int]] = []
            for blk in fn.blocks:
                if blk in loop.blocks:
                    continue
                for inst in blk.instructions:
                    if isinstance(inst, Phi):
                        for idx, (in_blk, val) in enumerate(inst.incoming):
                            if val is v and in_blk not in loop.blocks:
                                phi_edge_uses.append((inst, idx))
                    elif any(op is v for op in inst.operands):
                        plain_uses.append(inst)
            if not plain_uses and not phi_edge_uses:
                continue
            if mixed:
                raise UnrollError(
                    "value %%%s is used outside the loop but exit %s has "
                    "non-loop predecessors" % (v.name, exit_block.name)
                )
            if len(exit_targets) > 1:
                raise UnrollError(
                    "value %%%s is used outside a multi-exit loop" % v.name
                )
            lcssa = Phi(v.type, fn.unique_name("%s.lcssa" % (v.name or "v")))
            for p in loop_preds:
                lcssa.add_incoming(p, v)
            exit_block.insert(len(exit_block.phis), lcssa)
            for inst in plain_uses:
                inst.replace_operand(v, lcssa)
            for phi, idx in phi_edge_uses:
                blk, _ = phi.incoming[idx]
                phi.incoming[idx] = (blk, lcssa)
                phi.operands = [val for _, val in phi.incoming]


def _redirect(term: Instruction, old: BasicBlock, new: BasicBlock) -> None:
    if isinstance(term, Branch):
        if term.target is old:
            term.target = new
    elif isinstance(term, CondBranch):
        if term.true_target is old:
            term.true_target = new
        if term.false_target is old:
            term.false_target = new


def unroll_hottest_loop(fn: Function, factor: int = 2) -> Optional[Loop]:
    """Unroll the innermost loop with the most blocks; returns it or None."""
    loops = LoopInfo.compute(fn).innermost_loops()
    if not loops:
        return None
    loop = max(loops, key=lambda l: len(l.blocks))
    unroll_loop(fn, loop, factor)
    return loop
