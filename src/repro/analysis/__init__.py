"""Static analyses over the mini IR: CFG, dominators, loops, liveness,
dataflow graphs, and the control-flow characterisation used by Table I."""

from .alias import may_alias, must_alias, same_value
from .cfg import CFG
from .dominators import DominatorTree, PostDominatorTree, VIRTUAL_EXIT
from .loops import Loop, LoopInfo, back_edges
from .liveness import Liveness, region_live_values
from .dfg import DataflowGraph, DFGNode
from .dependence import (
    BranchMemStats,
    backward_slice,
    branch_memory_stats,
    control_dependence,
)
from .predication import (
    HyperblockSizeStats,
    PredicationStats,
    hyperblock_size_stats,
    predication_stats,
)

__all__ = [
    "CFG",
    "BranchMemStats",
    "DataflowGraph",
    "DFGNode",
    "DominatorTree",
    "HyperblockSizeStats",
    "Liveness",
    "Loop",
    "LoopInfo",
    "PostDominatorTree",
    "PredicationStats",
    "VIRTUAL_EXIT",
    "back_edges",
    "backward_slice",
    "branch_memory_stats",
    "control_dependence",
    "hyperblock_size_stats",
    "may_alias",
    "must_alias",
    "predication_stats",
    "region_live_values",
    "same_value",
]
