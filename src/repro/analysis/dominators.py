"""Dominator and post-dominator trees (Cooper–Harvey–Kennedy algorithm).

Both trees share the same iterative-idom core; the post-dominator variant
runs it over the reversed CFG with a virtual sink joining all exit blocks
(functions may have several ``ret`` blocks).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence

from .cfg import CFG

Node = Hashable

#: Virtual node used as the single sink for post-dominance.
VIRTUAL_EXIT = "<virtual-exit>"


def _compute_idoms(
    order: Sequence[Node],
    preds: Callable[[Node], Sequence[Node]],
    entry: Node,
) -> Dict[Node, Node]:
    """Cooper–Harvey–Kennedy iterative idom computation.

    ``order`` must be a reverse post-order starting with ``entry``.
    Returns an idom map where ``idom[entry] is entry``.
    """
    index = {node: i for i, node in enumerate(order)}
    idom: Dict[Node, Optional[Node]] = {node: None for node in order}
    idom[entry] = entry

    def intersect(a: Node, b: Node) -> Node:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node is entry:
                continue
            candidates = [p for p in preds(node) if idom.get(p) is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom[node] is not new_idom:
                idom[node] = new_idom
                changed = True
    return {n: d for n, d in idom.items() if d is not None}


class DominatorTree:
    """Dominator tree over a function's CFG."""

    def __init__(self, cfg: CFG, idom: Dict[Node, Node]):
        self.cfg = cfg
        self.idom = idom
        self.children: Dict[Node, List[Node]] = {n: [] for n in idom}
        for node, parent in idom.items():
            if node is not parent:
                self.children[parent].append(node)
        self._depth: Dict[Node, int] = {}
        self._compute_depths()

    @classmethod
    def compute(cls, fn_or_cfg) -> "DominatorTree":
        cfg = fn_or_cfg if isinstance(fn_or_cfg, CFG) else CFG(fn_or_cfg)
        idom = _compute_idoms(cfg.rpo, cfg.preds, cfg.entry)
        return cls(cfg, idom)

    def _compute_depths(self) -> None:
        roots = [n for n, p in self.idom.items() if n is p]
        stack = [(r, 0) for r in roots]
        while stack:
            node, d = stack.pop()
            self._depth[node] = d
            for c in self.children.get(node, []):
                stack.append((c, d + 1))

    def depth(self, node: Node) -> int:
        return self._depth[node]

    def dominates(self, a: Node, b: Node) -> bool:
        """True iff ``a`` dominates ``b`` (reflexively)."""
        while True:
            if a is b:
                return True
            parent = self.idom.get(b)
            if parent is None or parent is b:
                return False
            b = parent

    def strictly_dominates(self, a: Node, b: Node) -> bool:
        return a is not b and self.dominates(a, b)

    def immediate_dominator(self, node: Node) -> Optional[Node]:
        parent = self.idom.get(node)
        return None if parent is node else parent

    def dominance_frontier(self) -> Dict[Node, List[Node]]:
        """Classic dominance frontiers (per Cooper–Harvey–Kennedy)."""
        df: Dict[Node, List[Node]] = {n: [] for n in self.idom}
        for block in self.cfg.blocks:
            preds = self.cfg.preds(block)
            if len(preds) < 2:
                continue
            for p in preds:
                runner = p
                while runner is not self.idom[block] and runner in self.idom:
                    if block not in df[runner]:
                        df[runner].append(block)
                    if runner is self.idom[runner]:
                        break
                    runner = self.idom[runner]
        return df


class PostDominatorTree:
    """Post-dominator tree computed over the reversed CFG.

    A virtual sink (:data:`VIRTUAL_EXIT`) joins all exit blocks so that
    functions with multiple returns — or infinite loops, which simply end up
    unpostdominated — are handled uniformly.
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        exits = cfg.exits()
        nodes: List[Node] = [VIRTUAL_EXIT] + list(cfg.blocks)

        def rsuccs(n: Node) -> Sequence[Node]:
            # successors in the *reversed* graph = predecessors in the CFG
            if n is VIRTUAL_EXIT:
                return exits
            return cfg.preds(n)

        # reverse post-order of the reversed graph, from the virtual exit
        post: List[Node] = []
        visited = {VIRTUAL_EXIT}
        order_stack: List[tuple] = [(VIRTUAL_EXIT, 0)]
        while order_stack:
            node, i = order_stack[-1]
            nxt_list = rsuccs(node)
            if i < len(nxt_list):
                order_stack[-1] = (node, i + 1)
                nxt = nxt_list[i]
                if nxt not in visited:
                    visited.add(nxt)
                    order_stack.append((nxt, 0))
            else:
                post.append(node)
                order_stack.pop()
        rpo = list(reversed(post))

        # Predecessors in the reversed graph = CFG successors; exit blocks'
        # only reversed-graph predecessor is the virtual sink.
        def rpreds(n: Node) -> Sequence[Node]:
            if n is VIRTUAL_EXIT:
                return []
            succs = cfg.succs(n)
            if not succs:
                return [VIRTUAL_EXIT]
            return succs

        self.ipdom = _compute_idoms(rpo, rpreds, VIRTUAL_EXIT)

    @classmethod
    def compute(cls, fn_or_cfg) -> "PostDominatorTree":
        cfg = fn_or_cfg if isinstance(fn_or_cfg, CFG) else CFG(fn_or_cfg)
        return cls(cfg)

    def post_dominates(self, a: Node, b: Node) -> bool:
        """True iff ``a`` post-dominates ``b`` (reflexively)."""
        while True:
            if a is b:
                return True
            parent = self.ipdom.get(b)
            if parent is None or parent is b:
                return False
            b = parent

    def immediate_post_dominator(self, node: Node) -> Optional[Node]:
        parent = self.ipdom.get(node)
        return None if parent is node else parent
