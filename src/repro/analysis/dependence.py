"""Branch <-> memory dependence statistics (paper Table I).

Two per-function statistics drive the paper's argument that accelerators
need full (memory-inclusive) speculation support:

* **Branch=>Mem** — for each conditional branch, the number of memory
  operations *control-dependent* on it (Ferrante–Ottenstein–Warren control
  dependence via post-dominators).  Averaged over branches.
* **Mem=>Branch** — for each conditional branch, the number of memory
  operations its condition *data-depends* on, transitively through the SSA
  backward slice of the condition.  Averaged over branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import CondBranch, Instruction, Load, Phi
from .cfg import CFG
from .dominators import PostDominatorTree


def control_dependence(fn_or_cfg) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map each conditional-branch block to the blocks control-dependent on it.

    Block ``n`` is control-dependent on branch block ``b`` iff ``b`` has a
    successor ``s`` with ``n`` post-dominating ``s`` (or ``n is s``) while
    ``n`` does not post-dominate ``b``.
    """
    cfg = fn_or_cfg if isinstance(fn_or_cfg, CFG) else CFG(fn_or_cfg)
    pdom = PostDominatorTree.compute(cfg)
    result: Dict[BasicBlock, List[BasicBlock]] = {}
    for block in cfg.blocks:
        if not isinstance(block.terminator, CondBranch):
            continue
        dependent: List[BasicBlock] = []
        for n in cfg.blocks:
            if pdom.post_dominates(n, block):
                continue
            for s in cfg.succs(block):
                if n is s or pdom.post_dominates(n, s):
                    dependent.append(n)
                    break
        result[block] = dependent
    return result


def backward_slice(value: Instruction, max_depth: int = 10_000) -> Set[Instruction]:
    """Transitive SSA backward slice of ``value`` (instructions only)."""
    seen: Set[Instruction] = set()
    stack = [value]
    while stack and len(seen) < max_depth:
        inst = stack.pop()
        if inst in seen:
            continue
        seen.add(inst)
        operands = (
            [v for _, v in inst.incoming] if isinstance(inst, Phi) else inst.operands
        )
        for op in operands:
            if isinstance(op, Instruction) and op not in seen:
                stack.append(op)
    return seen


@dataclass
class BranchMemStats:
    """Per-function Table I row."""

    function: str
    branch_count: int
    avg_mem_dependent_on_branch: float  # Branch => Mem
    avg_mem_branch_depends_on: float  # Mem => Branch
    max_mem_dependent_on_branch: int
    max_mem_branch_depends_on: int


def branch_memory_stats(fn: Function) -> BranchMemStats:
    """Compute both Table I dependence statistics for one function."""
    cfg = CFG(fn)
    cd = control_dependence(cfg)

    branch_to_mem: List[int] = []
    mem_to_branch: List[int] = []
    for block in cfg.blocks:
        term = block.terminator
        if not isinstance(term, CondBranch):
            continue
        dependent_blocks = cd.get(block, [])
        n_mem = sum(
            1
            for dblk in dependent_blocks
            for inst in dblk.instructions
            if inst.is_memory
        )
        branch_to_mem.append(n_mem)

        cond = term.cond
        if isinstance(cond, Instruction):
            slice_ = backward_slice(cond)
            mem_to_branch.append(sum(1 for i in slice_ if isinstance(i, Load)))
        else:
            mem_to_branch.append(0)

    def avg(xs: List[int]) -> float:
        return sum(xs) / len(xs) if xs else 0.0

    return BranchMemStats(
        function=fn.name,
        branch_count=len(branch_to_mem),
        avg_mem_dependent_on_branch=avg(branch_to_mem),
        avg_mem_branch_depends_on=avg(mem_to_branch),
        max_mem_dependent_on_branch=max(branch_to_mem, default=0),
        max_mem_branch_depends_on=max(mem_to_branch, default=0),
    )
