"""Dataflow graph (DFG) construction over instruction sequences.

The DFG is the program representation both execution models consume: the
OOO host extracts ILP from it within a ROB window, and the CGRA scheduler
maps it onto the fabric.  Nodes are instructions; edges are

* SSA data dependences (operand -> user),
* memory ordering dependences (conservative: store -> later load/store,
  load -> later store), and
* control dependences from guards when requested by the frame builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.instructions import Instruction, Load, Phi, Store


@dataclass
class DFGNode:
    """One instruction plus its dependence edges (by node index)."""

    index: int
    inst: Instruction
    deps: List[int] = field(default_factory=list)
    users: List[int] = field(default_factory=list)


class DataflowGraph:
    """A dependence DAG over a straight-line instruction sequence."""

    def __init__(self, nodes: List[DFGNode]):
        self.nodes = nodes
        self._by_inst: Dict[Instruction, DFGNode] = {n.inst: n for n in nodes}

    @classmethod
    def build(
        cls,
        instructions: Sequence[Instruction],
        memory_ordering: bool = True,
        speculative_memory: bool = False,
        use_alias_analysis: bool = False,
    ) -> "DataflowGraph":
        """Build the DFG of ``instructions`` (program order).

        Args:
            memory_ordering: add conservative store/load ordering edges.
            speculative_memory: when True (software-frame semantics), loads
                may hoist above earlier stores — only store->store ordering
                is kept, because the undo log serialises store commit order.
            use_alias_analysis: prune ordering edges between memory ops the
                alias analysis proves disjoint (different global arrays,
                same-base indices differing by a constant).
        """
        nodes = [DFGNode(i, inst) for i, inst in enumerate(instructions)]
        index_of = {inst: i for i, inst in enumerate(instructions)}

        def add_edge(src: int, dst: int) -> None:
            if src == dst:
                return
            node = nodes[dst]
            if src not in node.deps:
                node.deps.append(src)
                nodes[src].users.append(dst)

        for i, inst in enumerate(instructions):
            operands = (
                [v for _, v in inst.incoming] if isinstance(inst, Phi) else inst.operands
            )
            for op in operands:
                j = index_of.get(op)
                if j is not None and j < i:
                    add_edge(j, i)

        if memory_ordering:
            if use_alias_analysis:
                from .alias import may_alias
            else:
                may_alias = None
            all_stores: List[int] = []
            last_store: Optional[int] = None
            pending_loads: List[int] = []
            for i, inst in enumerate(instructions):
                if isinstance(inst, Load):
                    if not speculative_memory:
                        if may_alias is None:
                            if last_store is not None:
                                add_edge(last_store, i)
                        else:
                            for s in all_stores:
                                if may_alias(instructions[s], inst):
                                    add_edge(s, i)
                    pending_loads.append(i)
                elif isinstance(inst, Store):
                    if may_alias is None:
                        if last_store is not None:
                            add_edge(last_store, i)
                    else:
                        for s in all_stores:
                            if may_alias(instructions[s], inst):
                                add_edge(s, i)
                    if not speculative_memory:
                        for l in pending_loads:
                            if may_alias is None or may_alias(
                                instructions[l], inst
                            ):
                                add_edge(l, i)
                    pending_loads = [] if may_alias is None else pending_loads
                    all_stores.append(i)
                    last_store = i
        return cls(nodes)

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node_for(self, inst: Instruction) -> DFGNode:
        return self._by_inst[inst]

    def roots(self) -> List[DFGNode]:
        return [n for n in self.nodes if not n.deps]

    def critical_path_length(self, latency=None) -> int:
        """Length (cycles) of the longest latency-weighted dependence chain."""
        if latency is None:
            latency = lambda inst: inst.latency
        finish = [0] * len(self.nodes)
        for node in self.nodes:  # nodes are in program order = topo order
            start = max((finish[d] for d in node.deps), default=0)
            finish[node.index] = start + max(1, latency(node.inst))
        return max(finish, default=0)

    def depth_levels(self) -> List[int]:
        """ASAP level (unit latency) of each node."""
        level = [0] * len(self.nodes)
        for node in self.nodes:
            level[node.index] = 1 + max((level[d] for d in node.deps), default=-1)
        return level

    def average_parallelism(self) -> float:
        """Instruction count / critical path with unit latencies — a cheap
        ILP figure of merit used to characterise frames."""
        if not self.nodes:
            return 0.0
        depth = max(self.depth_levels()) + 1 if self.nodes else 1
        # depth_levels are 0-based; the +1 above converts to a level count
        return len(self.nodes) / float(max(1, depth))
