"""Lightweight alias analysis for memory dependence pruning.

The conservative DFG serialises every load after every store.  Most of
that ordering is noise: accesses to *different global arrays* can never
alias (distinct allocations), and ``a[i]`` vs ``a[i+1]`` differ by a known
constant.  This module proves such pairs disjoint so the dataflow graph —
and with it the host ILP model and CGRA schedule — only keeps real memory
dependences.

The analysis is strictly *may-alias*: ``may_alias`` returning True never
breaks correctness, it only costs parallelism.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..ir.instructions import BinaryOp, Gep, Instruction, Load, Store
from ..ir.values import Constant, GlobalArray, Value

#: structural-equality recursion bound
_MAX_DEPTH = 8


def same_value(a: Value, b: Value, depth: int = _MAX_DEPTH) -> bool:
    """Structural SSA equality: identical defs, or syntactically equal
    expression trees over identical leaves."""
    if a is b:
        return True
    if depth <= 0:
        return False
    if isinstance(a, Constant) and isinstance(b, Constant):
        return a.type == b.type and a.value == b.value
    if isinstance(a, BinaryOp) and isinstance(b, BinaryOp):
        if a.opcode != b.opcode:
            return False
        return all(
            same_value(x, y, depth - 1)
            for x, y in zip(a.operands, b.operands)
        )
    if isinstance(a, Gep) and isinstance(b, Gep):
        return (
            a.elem_size == b.elem_size
            and same_value(a.base, b.base, depth - 1)
            and same_value(a.index, b.index, depth - 1)
        )
    return False


def _base_and_offset(index: Value) -> Tuple[Value, Optional[int]]:
    """Decompose ``x + c`` / ``x`` into (x, c); (index, None) if unknown."""
    if isinstance(index, BinaryOp) and index.opcode == "add":
        lhs, rhs = index.operands
        if isinstance(rhs, Constant):
            return lhs, int(rhs.value)
        if isinstance(lhs, Constant):
            return rhs, int(lhs.value)
    return index, 0 if not isinstance(index, Constant) else None


def _address_of(inst: Instruction) -> Optional[Value]:
    if isinstance(inst, Load):
        return inst.address
    if isinstance(inst, Store):
        return inst.address
    return None


def may_alias(a: Instruction, b: Instruction) -> bool:
    """Can the memory ops ``a`` and ``b`` touch overlapping bytes?

    Proven-disjoint cases (returns False):

    * both addresses are ``gep`` s off *different* global arrays;
    * same base and element size with indices ``x + c1`` vs ``x + c2``
      where ``x`` is structurally identical and ``c1 != c2``;
    * both indices constant and different.
    """
    addr_a = _address_of(a)
    addr_b = _address_of(b)
    if addr_a is None or addr_b is None:
        return True
    if not isinstance(addr_a, Gep) or not isinstance(addr_b, Gep):
        # identical SSA address => definitely aliases; otherwise unknown
        return True

    base_a, base_b = addr_a.base, addr_b.base
    if isinstance(base_a, GlobalArray) and isinstance(base_b, GlobalArray):
        if base_a is not base_b:
            return False
    elif not same_value(base_a, base_b):
        return True  # unknown bases: assume aliasing

    if addr_a.elem_size != addr_b.elem_size:
        return True  # mixed strides: byte-overlap math is not worth it

    ia, ib = addr_a.index, addr_b.index
    if isinstance(ia, Constant) and isinstance(ib, Constant):
        return ia.value == ib.value

    xa, ca = _base_and_offset(ia)
    xb, cb = _base_and_offset(ib)
    if ca is not None and cb is not None and same_value(xa, xb):
        return ca == cb
    return True


def must_alias(a: Instruction, b: Instruction) -> bool:
    """Do ``a`` and ``b`` certainly touch the same address?"""
    addr_a = _address_of(a)
    addr_b = _address_of(b)
    if addr_a is None or addr_b is None:
        return False
    return same_value(addr_a, addr_b)
