"""If-conversion predication cost analysis (paper Table I, §II).

The paper reports the number of predication bits required to fully
if-convert the (aggressively inlined) hottest function: one predicate per
forward conditional branch.  It also measures how much larger Hyperblocks
get relative to basic blocks when inner loops are if-converted assuming a
2-bit predication budget per block (following DySER's encoding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..ir.function import Function
from ..ir.instructions import CondBranch
from .cfg import CFG
from .dominators import DominatorTree
from .loops import LoopInfo, back_edges


@dataclass
class PredicationStats:
    """Table I predication row for one function."""

    function: str
    forward_branches: int  # == predication bits to if-convert fully
    backward_branches: int  # loop back edges
    total_cond_branches: int


def predication_stats(fn: Function) -> PredicationStats:
    """Count predication bits needed to if-convert ``fn``.

    Every forward conditional branch needs one predicate bit; loop-back
    branches cannot be predicated away and are reported separately
    (Table I "Loops").
    """
    cfg = CFG(fn)
    dom = DominatorTree.compute(cfg)
    backs = {(u, v) for u, v in back_edges(cfg, dom)}

    forward = 0
    backward = 0
    total = 0
    for block in cfg.blocks:
        term = block.terminator
        if not isinstance(term, CondBranch):
            continue
        total += 1
        is_back = any((block, succ) in backs for succ in cfg.succs(block))
        if is_back:
            backward += 1
        else:
            forward += 1
    return PredicationStats(
        function=fn.name,
        forward_branches=forward,
        backward_branches=backward,
        total_cond_branches=total,
    )


@dataclass
class HyperblockSizeStats:
    """§II hyperblock-vs-basic-block granularity measurement."""

    function: str
    avg_basic_block_ops: float
    avg_hyperblock_ops: float

    @property
    def expansion_ratio(self) -> float:
        if self.avg_basic_block_ops == 0:
            return 0.0
        return self.avg_hyperblock_ops / self.avg_basic_block_ops


def hyperblock_size_stats(fn: Function) -> HyperblockSizeStats:
    """Compare inner-loop hyperblock size against mean basic block size.

    Each innermost loop body, fully if-converted, forms one hyperblock
    (φs and terminators excluded from op counts, matching how the paper
    counts "operations").
    """
    cfg = CFG(fn)
    loops = LoopInfo.compute(cfg)

    def op_count(block) -> int:
        return sum(
            1
            for inst in block.instructions
            if not inst.is_terminator and inst.opcode != "phi"
        )

    block_sizes = [op_count(b) for b in fn.blocks]
    avg_bb = sum(block_sizes) / len(block_sizes) if block_sizes else 0.0

    hb_sizes: List[int] = []
    for loop in loops.innermost_loops():
        hb_sizes.append(sum(op_count(b) for b in loop.blocks))
    if not hb_sizes:
        # no loops: the whole acyclic body forms one hyperblock
        hb_sizes = [sum(block_sizes)]
    avg_hb = sum(hb_sizes) / len(hb_sizes)
    return HyperblockSizeStats(
        function=fn.name, avg_basic_block_ops=avg_bb, avg_hyperblock_ops=avg_hb
    )
