"""Control-flow graph view over an IR function.

:class:`CFG` is a cheap, immutable-by-convention snapshot of block
successor/predecessor structure plus the standard orderings (reverse
post-order) that the dominator and loop analyses need.  Build a fresh CFG
after mutating a function.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..ir.block import BasicBlock
from ..ir.function import Function


class CFG:
    """Successor/predecessor maps and orderings for one function."""

    def __init__(self, fn: Function):
        self.function = fn
        self.blocks: List[BasicBlock] = list(fn.blocks)
        self.successors: Dict[BasicBlock, List[BasicBlock]] = {}
        self.predecessors: Dict[BasicBlock, List[BasicBlock]] = {
            b: [] for b in self.blocks
        }
        for block in self.blocks:
            succs = block.successors
            self.successors[block] = succs
            for s in succs:
                self.predecessors[s].append(block)
        self._rpo: List[BasicBlock] = self._compute_rpo()
        self._rpo_index: Dict[BasicBlock, int] = {
            b: i for i, b in enumerate(self._rpo)
        }

    # -- orderings ------------------------------------------------------------

    def _compute_rpo(self) -> List[BasicBlock]:
        """Reverse post-order via iterative DFS from the entry block."""
        if not self.blocks:
            return []
        post: List[BasicBlock] = []
        visited = set()
        # Iterative DFS keeping an explicit successor cursor per frame.
        stack: List[Tuple[BasicBlock, int]] = [(self.function.entry, 0)]
        visited.add(self.function.entry)
        while stack:
            block, idx = stack[-1]
            succs = self.successors[block]
            if idx < len(succs):
                stack[-1] = (block, idx + 1)
                nxt = succs[idx]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                post.append(block)
                stack.pop()
        return list(reversed(post))

    @property
    def rpo(self) -> List[BasicBlock]:
        """Blocks in reverse post-order (entry first)."""
        return self._rpo

    def rpo_index(self, block: BasicBlock) -> int:
        return self._rpo_index[block]

    @property
    def entry(self) -> BasicBlock:
        return self.function.entry

    def exits(self) -> List[BasicBlock]:
        """Blocks with no successors (``ret`` blocks)."""
        return [b for b in self.blocks if not self.successors[b]]

    def edges(self) -> Iterable[Tuple[BasicBlock, BasicBlock]]:
        for block in self.blocks:
            for succ in self.successors[block]:
                yield (block, succ)

    def preds(self, block: BasicBlock) -> List[BasicBlock]:
        return self.predecessors[block]

    def succs(self, block: BasicBlock) -> List[BasicBlock]:
        return self.successors[block]

    def __repr__(self) -> str:
        return "<CFG of %s: %d blocks, %d edges>" % (
            self.function.name,
            len(self.blocks),
            sum(len(s) for s in self.successors.values()),
        )
