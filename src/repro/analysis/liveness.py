"""Liveness: per-block live-in/out sets and region live value computation.

Region live-ins/outs size the accelerator's data transfer (Table II:C5 and
Table IV:C7): live-ins are values defined outside the region (or arguments)
used inside it; live-outs are values defined inside the region that are used
after it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, Phi
from ..ir.values import Argument, Value
from .cfg import CFG


def _uses_of(inst: Instruction) -> Iterable[Value]:
    return inst.operands


class Liveness:
    """Classic backward may-liveness over SSA values."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.live_in: Dict[BasicBlock, Set[Value]] = {}
        self.live_out: Dict[BasicBlock, Set[Value]] = {}
        self._compute()

    @classmethod
    def compute(cls, fn_or_cfg) -> "Liveness":
        cfg = fn_or_cfg if isinstance(fn_or_cfg, CFG) else CFG(fn_or_cfg)
        return cls(cfg)

    def _block_use_def(self, block: BasicBlock) -> Tuple[Set[Value], Set[Value]]:
        """(upward-exposed uses, defs) of a block.

        φ-uses are charged to the incoming edge (handled in :meth:`_compute`),
        not here.
        """
        uses: Set[Value] = set()
        defs: Set[Value] = set()
        for inst in block.instructions:
            if isinstance(inst, Phi):
                defs.add(inst)
                continue
            for op in _uses_of(inst):
                if isinstance(op, (Instruction, Argument)) and op not in defs:
                    uses.add(op)
            if not inst.type.is_void:
                defs.add(inst)
        return uses, defs

    def _compute(self) -> None:
        cfg = self.cfg
        use: Dict[BasicBlock, Set[Value]] = {}
        dfn: Dict[BasicBlock, Set[Value]] = {}
        for b in cfg.blocks:
            use[b], dfn[b] = self._block_use_def(b)
        live_in = {b: set() for b in cfg.blocks}
        live_out = {b: set() for b in cfg.blocks}
        changed = True
        while changed:
            changed = False
            for block in reversed(cfg.rpo):
                out: Set[Value] = set()
                for succ in cfg.succs(block):
                    # ordinary live-ins of the successor, minus its φ defs
                    out |= live_in[succ]
                    # φ operands flowing along this particular edge are live
                    # at the end of this block
                    for phi in succ.phis:
                        val = phi.incoming_for(block)
                        if isinstance(val, (Instruction, Argument)):
                            out.add(val)
                new_in = use[block] | (out - dfn[block])
                if out != live_out[block] or new_in != live_in[block]:
                    live_out[block] = out
                    live_in[block] = new_in
                    changed = True
        self.live_in = live_in
        self.live_out = live_out


def region_live_values(
    fn: Function, region_blocks: Sequence[BasicBlock]
) -> Tuple[List[Value], List[Value]]:
    """(live_ins, live_outs) of a block region.

    live-ins: arguments or out-of-region instruction results used in-region
    (including φ incoming values along in-region edges).
    live-outs: in-region instruction results used by out-of-region
    instructions (including as φ incomings of out-of-region blocks).
    """
    region = set(region_blocks)
    in_region_defs: Set[Value] = set()
    for block in region_blocks:
        for inst in block.instructions:
            if not inst.type.is_void:
                in_region_defs.add(inst)

    live_ins: List[Value] = []
    seen_in: Set[Value] = set()
    for block in region_blocks:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                candidates = [
                    v for b, v in inst.incoming if b in region
                ] or [v for _, v in inst.incoming]
            else:
                candidates = inst.operands
            for op in candidates:
                if (
                    isinstance(op, (Instruction, Argument))
                    and op not in in_region_defs
                    and op not in seen_in
                ):
                    seen_in.add(op)
                    live_ins.append(op)

    live_outs: List[Value] = []
    seen_out: Set[Value] = set()
    for block in fn.blocks:
        if block in region:
            continue
        for inst in block.instructions:
            for op in inst.operands:
                if op in in_region_defs and op not in seen_out:
                    seen_out.add(op)
                    live_outs.append(op)
    return live_ins, live_outs
