"""Natural loop detection and loop-nest structure.

A back edge is an edge ``u -> v`` where ``v`` dominates ``u``.  The natural
loop of a back edge is ``v`` plus all blocks that can reach ``u`` without
passing through ``v``.  Loops sharing a header are merged, and nesting is
derived by body inclusion.  Table I's "number of backward branches in the
hot function" statistic comes straight from :func:`back_edges`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.block import BasicBlock
from .cfg import CFG
from .dominators import DominatorTree


@dataclass
class Loop:
    """A natural loop: header, body blocks, latches, and nesting links."""

    header: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    latches: List[BasicBlock] = field(default_factory=list)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        d, cur = 1, self.parent
        while cur is not None:
            d += 1
            cur = cur.parent
        return d

    @property
    def is_innermost(self) -> bool:
        return not self.children

    def exits(self, cfg: CFG) -> List[Tuple[BasicBlock, BasicBlock]]:
        """Edges leaving the loop body."""
        out = []
        for block in self.blocks:
            for succ in cfg.succs(block):
                if succ not in self.blocks:
                    out.append((block, succ))
        return out

    def __repr__(self) -> str:
        return "<Loop header=%s blocks=%d depth=%d>" % (
            self.header.name,
            len(self.blocks),
            self.depth,
        )


def back_edges(fn_or_cfg, dom: Optional[DominatorTree] = None) -> List[Tuple[BasicBlock, BasicBlock]]:
    """All back edges ``(source, header)`` of the function."""
    cfg = fn_or_cfg if isinstance(fn_or_cfg, CFG) else CFG(fn_or_cfg)
    if dom is None:
        dom = DominatorTree.compute(cfg)
    edges = []
    for u, v in cfg.edges():
        if dom.dominates(v, u):
            edges.append((u, v))
    return edges


class LoopInfo:
    """All natural loops of a function, with nesting."""

    def __init__(self, cfg: CFG, loops: List[Loop]):
        self.cfg = cfg
        self.loops = loops
        self._header_map: Dict[BasicBlock, Loop] = {l.header: l for l in loops}

    @classmethod
    def compute(cls, fn_or_cfg) -> "LoopInfo":
        cfg = fn_or_cfg if isinstance(fn_or_cfg, CFG) else CFG(fn_or_cfg)
        dom = DominatorTree.compute(cfg)
        by_header: Dict[BasicBlock, Loop] = {}
        for latch, header in back_edges(cfg, dom):
            loop = by_header.setdefault(header, Loop(header=header))
            loop.latches.append(latch)
            loop.blocks.add(header)
            # walk predecessors back from the latch up to the header
            stack = [latch]
            while stack:
                block = stack.pop()
                if block in loop.blocks:
                    continue
                loop.blocks.add(block)
                stack.extend(cfg.preds(block))
        loops = list(by_header.values())
        # nesting: smallest enclosing loop by body inclusion
        for inner in loops:
            best: Optional[Loop] = None
            for outer in loops:
                if outer is inner:
                    continue
                if inner.header in outer.blocks and inner.blocks <= outer.blocks:
                    if best is None or len(outer.blocks) < len(best.blocks):
                        best = outer
            inner.parent = best
            if best is not None:
                best.children.append(inner)
        return cls(cfg, loops)

    def loop_for_header(self, header: BasicBlock) -> Optional[Loop]:
        return self._header_map.get(header)

    def innermost_loop_containing(self, block: BasicBlock) -> Optional[Loop]:
        best: Optional[Loop] = None
        for loop in self.loops:
            if block in loop.blocks:
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def innermost_loops(self) -> List[Loop]:
        return [l for l in self.loops if l.is_innermost]

    @property
    def backward_branch_count(self) -> int:
        """Number of back edges (Table I "Loops" statistic)."""
        return sum(len(l.latches) for l in self.loops)

    def __repr__(self) -> str:
        return "<LoopInfo %d loops>" % len(self.loops)
