"""Command line interface: ``python -m repro <command>``.

Commands
--------
list                 enumerate the 29-workload suite
analyze WORKLOAD     per-workload Needle report (paths, braids, frames)
evaluate [WORKLOAD]  Fig. 9 / Fig. 10 style numbers (one workload or all)
dump WORKLOAD        print the workload's hot function as IR text
metrics [WORKLOAD]   evaluate with instrumentation on; print the registry
trace [WORKLOAD]     evaluate with instrumentation on; print the span tree

``analyze`` and ``evaluate`` persist profiles and evaluation results in a
content-addressed artifact cache (default ``~/.cache/repro-needle``, or
``$REPRO_CACHE_DIR``), so repeat invocations skip re-profiling; ``--no-cache``
bypasses it and ``--cache-dir`` relocates it.  ``evaluate --jobs N`` shards
the suite across N worker processes.  Every pipeline command accepts
``--metrics`` (print the observability registry afterwards) and
``--metrics-out PATH`` (write it as JSON); the flags come from
:class:`~repro.options.PipelineOptions`, the same options surface the
Python API uses.  Suite sweeps are fail-safe: ``--timeout``,
``--retries`` and ``--fail-fast`` control the retry/quarantine policy
(quarantined workloads render as ``failed:<kind>`` rows), and
``--fault-plan plan.json`` injects a deterministic chaos plan
(docs/resilience.md).  ``--trace-kernels events`` selects the
event-by-event reference accounting and ``--no-sim-memo`` disables the
cross-strategy simulation memo — both bitwise-neutral, perf-only knobs
(docs/performance.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import obs, workloads
from .obs import export as obs_export
from .options import PipelineOptions
from .pipeline import NeedlePipeline, WorkloadEvaluation
from .resilience import WorkloadFailure


def _options_from_args(args) -> PipelineOptions:
    opts = PipelineOptions.from_args(args)
    if opts.wants_metrics:
        obs.enable(reset=True)
    return opts


def _make_pipeline(args) -> NeedlePipeline:
    return _options_from_args(args).build_pipeline()


def _finish_metrics(opts: PipelineOptions) -> None:
    """Emit whatever metrics output the run asked for."""
    if opts.metrics_out is not None:
        with open(opts.metrics_out, "w") as fh:
            fh.write(obs_export.to_json(None))
    if opts.metrics:
        print()
        print(obs_export.render_metrics(None))


def _cmd_list(_args) -> int:
    from .reporting import format_table

    rows = []
    for name in workloads.all_names():
        w = workloads.get(name)
        rows.append((name, w.suite, w.flavor, w.description))
    print(format_table(["workload", "suite", "flavor", "description"], rows))
    return 0


def _cmd_dump(args) -> int:
    w = workloads.get(args.workload)
    module, fn, _ = w.build()
    from .ir import format_module

    print(format_module(module))
    return 0


def _cmd_analyze(args) -> int:
    from .interp import Interpreter, OpMixTracer
    from .reporting import format_table

    opts = _options_from_args(args)
    pipeline = opts.build_pipeline()
    w = workloads.get(args.workload)
    a = pipeline.analyse(w)
    print("%s: %d executed paths, top braid merges %d paths for %.1f%% coverage"
          % (w.name, a.profiled.paths.executed_paths,
             a.top_braid.n_paths if a.top_braid else 0,
             (a.top_braid.coverage if a.top_braid else 0) * 100))

    module, fn, run_args = w.build()
    tracer = OpMixTracer([fn])
    Interpreter(module, tracer=tracer).run(fn, run_args)
    mix = tracer.mix_for(fn)
    print("dynamic mix: %.0f%% int, %.0f%% fp, %.0f%% memory, %.0f%% control"
          % (mix.int_share * 100, mix.fp_share * 100,
             mix.memory_share * 100, mix.control_share * 100))
    rows = [
        (p.path_id, p.freq, p.ops, p.branch_count, p.memory_op_count,
         p.coverage * 100)
        for p in a.ranked[: args.top]
    ]
    print(format_table(
        ["path", "freq", "ops", "branches", "mem", "coverage %"], rows))
    if a.braid_frame is not None:
        f = a.braid_frame
        print("braid frame: %d ops, %d guards, %d psi, %d live-in, %d live-out"
              % (f.op_count, f.guard_count, len(f.psis),
                 len(f.live_ins), len(f.live_outs)))
    _finish_metrics(opts)
    return 0


#: printed for outcomes a workload did not produce (no path/braid frame)
MISSING_CELL = "—"


def _percent_cell(outcome, attr: str):
    """``value * 100`` of an outcome attribute, or an em-dash when the
    workload produced no frame for that strategy."""
    if outcome is None:
        return MISSING_CELL
    return getattr(outcome, attr) * 100


def evaluation_row(name: str, ev: WorkloadEvaluation) -> tuple:
    """One table row; missing outcomes render as em-dashes, never crash.

    A quarantined workload (its slot holds a
    :class:`~repro.resilience.WorkloadFailure`) renders as a failure
    marker instead of numbers — the sweep reports it, it does not
    abort the table.
    """
    if isinstance(ev, WorkloadFailure):
        return (
            name,
            "failed:%s x%d" % (ev.kind, ev.attempts),
            MISSING_CELL,
            MISSING_CELL,
            MISSING_CELL,
            MISSING_CELL,
        )
    return (
        name,
        _percent_cell(ev.path_oracle, "performance_improvement"),
        _percent_cell(ev.path_history, "performance_improvement"),
        _percent_cell(ev.braid, "performance_improvement"),
        _percent_cell(ev.braid, "energy_reduction"),
        _percent_cell(ev.hls, "alm_fraction"),
    )


def _run_evaluations(args, opts: PipelineOptions):
    pipeline = _make_pipeline(args)
    names = [args.workload] if args.workload else workloads.all_names()
    evaluations = pipeline.evaluate_all(
        [workloads.get(name) for name in names], jobs=opts.jobs
    )
    return names, evaluations


def _cmd_evaluate(args) -> int:
    from .reporting import format_table

    opts = _options_from_args(args)
    names, evaluations = _run_evaluations(args, opts)
    rows = [evaluation_row(name, ev) for name, ev in zip(names, evaluations)]
    print(format_table(
        ["workload", "path oracle %", "path hist %", "braid %",
         "energy %", "ALM %"],
        rows,
        title="Needle offload evaluation",
    ))
    _finish_metrics(opts)
    return 0


def _cmd_metrics(args) -> int:
    opts = _options_from_args(args)
    obs.enable(reset=True)
    _run_evaluations(args, opts)
    if args.format == "json":
        print(obs_export.to_json(None))
    elif args.format == "prom":
        print(obs_export.to_prometheus(None))
    else:
        print(obs_export.render_metrics(None))
    if opts.metrics_out is not None:
        with open(opts.metrics_out, "w") as fh:
            fh.write(obs_export.to_json(None))
    return 0


def _cmd_trace(args) -> int:
    opts = _options_from_args(args)
    obs.enable(reset=True)
    _run_evaluations(args, opts)
    print(obs_export.render_trace(None))
    if opts.metrics_out is not None:
        with open(opts.metrics_out, "w") as fh:
            fh.write(obs_export.to_json(None))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Needle (HPCA 2017) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite").set_defaults(
        func=_cmd_list
    )

    p = sub.add_parser("dump", help="print a workload's hot function IR")
    p.add_argument("workload")
    p.set_defaults(func=_cmd_dump)

    p = sub.add_parser("analyze", help="per-workload Needle analysis")
    p.add_argument("workload")
    p.add_argument("--top", type=int, default=5)
    PipelineOptions.add_cli_arguments(p, jobs=False)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("evaluate", help="simulate offload (Fig. 9/10 numbers)")
    p.add_argument("workload", nargs="?", default=None)
    PipelineOptions.add_cli_arguments(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "metrics",
        help="evaluate with instrumentation on and print the metric registry",
    )
    p.add_argument("workload", nargs="?", default=None)
    p.add_argument(
        "--format",
        choices=("table", "json", "prom"),
        default="table",
        help="output format (human table, JSON, or Prometheus text)",
    )
    PipelineOptions.add_cli_arguments(p)
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "trace",
        help="evaluate with instrumentation on and print the span tree",
    )
    p.add_argument("workload", nargs="?", default=None)
    PipelineOptions.add_cli_arguments(p)
    p.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


__all__ = ["build_parser", "evaluation_row", "main"]


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
