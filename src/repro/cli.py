"""Command line interface: ``python -m repro <command>``.

Commands
--------
list                 enumerate the 29-workload suite
analyze WORKLOAD     per-workload Needle report (paths, braids, frames)
evaluate [WORKLOAD]  Fig. 9 / Fig. 10 style numbers (one workload or all)
dump WORKLOAD        print the workload's hot function as IR text
metrics [WORKLOAD]   evaluate with instrumentation on; print the registry
trace [WORKLOAD]     evaluate with instrumentation on; print the span tree
                     (or --format chrome for a Perfetto-loadable trace)
report table [W]     paper-style cycle/energy attribution tables (ledger)
report diff A B      compare two metric snapshots; exit 1 on regression
top SOURCE           live one-screen view of a running sweep (reads a
                     --serve-metrics endpoint or a --progress-out file)

``analyze`` and ``evaluate`` persist profiles and evaluation results in a
content-addressed artifact cache (default ``~/.cache/repro-needle``, or
``$REPRO_CACHE_DIR``), so repeat invocations skip re-profiling; ``--no-cache``
bypasses it and ``--cache-dir`` relocates it.  ``evaluate --jobs N`` shards
the suite across N pool workers; ``--pool {serial,process,thread}``
picks the execution backend (default: warm worker processes, results
bitwise-identical on every backend).  Every pipeline command accepts
``--metrics`` (print the observability registry afterwards) and
``--metrics-out PATH`` (write it as JSON); the flags come from
:class:`~repro.options.PipelineOptions`, the same options surface the
Python API uses.  Suite sweeps are fail-safe: ``--timeout``,
``--retries`` and ``--fail-fast`` control the retry/quarantine policy
(quarantined workloads render as ``failed:<kind>`` rows), and
``--fault-plan plan.json`` injects a deterministic chaos plan
(docs/resilience.md).  ``--trace-kernels events`` selects the
event-by-event reference accounting and ``--no-sim-memo`` disables the
cross-strategy simulation memo — both bitwise-neutral, perf-only knobs
(docs/performance.md).

Suite sweeps are also *crash-safe*: ``--journal-dir DIR`` (or
``$REPRO_JOURNAL_DIR``) writes a write-ahead run journal, and
``evaluate --resume RUN_ID`` continues a killed run — completed
workloads are restored from the journal and the merged output is
byte-identical to an uninterrupted sweep.  SIGINT/SIGTERM during a
journaled sweep drains in-flight work (bounded by ``--drain-timeout``),
prints the resume command, and exits with code 75; the
``--max-total-failures`` / ``--max-consecutive-failures`` circuit
breaker aborts a doomed suite early (docs/resilience.md).

Suite sweeps can carry *live telemetry* (docs/observability.md): a
typed event bus with worker heartbeats and stall detection, exposed via
``--serve-metrics [HOST:]PORT`` (Prometheus ``/metrics`` + JSON
``/progress`` + ``/healthz``, loopback-bound by default),
``--progress-out progress.json`` (atomic snapshots), ``--events-out``
(gapless JSONL event log) and ``--live`` (in-terminal view).  ``repro
top SOURCE`` renders the same view from a running sweep's endpoint or
progress file.  All of it is wall-clock-only: semantic output is
byte-identical with telemetry on or off.  The global ``--log-level``
flag (or ``$REPRO_LOG_LEVEL``) configures logging in one place.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import obs, workloads
from .obs import export as obs_export
from .obs import timeline as obs_timeline
from .options import PipelineOptions
from .pipeline import NeedlePipeline, WorkloadEvaluation
from .resilience import WorkloadFailure
from .resilience.journal import JournalError, RunJournal, resolve_journal_dir
from .resilience.shutdown import EXIT_DRAINED, SweepDrained


def _load_metrics_file(path: str) -> dict:
    """Load a saved metrics/snapshot JSON file for ``--from`` style flags.

    A missing, unreadable or corrupt file is an *expected* operator
    error: it exits with a clean one-line message on stderr (exit code
    1 via :class:`SystemExit`), never a traceback.
    """
    import json as _json

    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = _json.load(fh)
    except OSError as exc:
        raise SystemExit(
            "error: cannot read metrics file %s: %s"
            % (path, exc.strerror or exc))
    except ValueError as exc:
        raise SystemExit(
            "error: metrics file %s is not valid JSON: %s" % (path, exc))
    if not isinstance(data, dict):
        raise SystemExit(
            "error: metrics file %s is not a metrics snapshot "
            "(expected a JSON object)" % path)
    return data


def _options_from_args(args) -> PipelineOptions:
    opts = PipelineOptions.from_args(args)
    if opts.wants_metrics:
        obs.enable(reset=True)
    return opts


def _make_pipeline(args) -> NeedlePipeline:
    return _options_from_args(args).build_pipeline()


def _finish_metrics(
    opts: PipelineOptions,
    pipeline: Optional[NeedlePipeline] = None,
    names: Optional[List[str]] = None,
) -> None:
    """Emit whatever metrics/timeline output the run asked for."""
    if opts.metrics_out is not None:
        with open(opts.metrics_out, "w") as fh:
            fh.write(obs_export.to_json(None))
    if opts.timeline_out is not None:
        obs_timeline.write_chrome_trace(
            opts.timeline_out,
            span_roots=obs.registry().span_roots,
            sim_tracks=_sim_tracks(pipeline, names),
        )
    if opts.metrics:
        print()
        print(obs_export.render_metrics(None))


def _sim_tracks(
    pipeline: Optional[NeedlePipeline], names: Optional[List[str]]
) -> dict:
    """"workload/strategy" -> simulated timeline events for the chrome
    trace (empty when the command has no pipeline to replay)."""
    tracks: dict = {}
    if pipeline is None or not names:
        return tracks
    for name in names:
        per_strategy = pipeline.timeline(workloads.get(name))
        for strategy, events in per_strategy.items():
            tracks["%s/%s" % (name, strategy)] = events
    return tracks


def _cmd_list(_args) -> int:
    from .reporting import format_table

    rows = []
    for name in workloads.all_names():
        w = workloads.get(name)
        rows.append((name, w.suite, w.flavor, w.description))
    print(format_table(["workload", "suite", "flavor", "description"], rows))
    return 0


def _cmd_dump(args) -> int:
    w = workloads.get(args.workload)
    module, fn, _ = w.build()
    from .ir import format_module

    print(format_module(module))
    return 0


def _cmd_analyze(args) -> int:
    from .interp import Interpreter, OpMixTracer
    from .reporting import format_table

    opts = _options_from_args(args)
    pipeline = opts.build_pipeline()
    w = workloads.get(args.workload)
    a = pipeline.analyse(w)
    print("%s: %d executed paths, top braid merges %d paths for %.1f%% coverage"
          % (w.name, a.profiled.paths.executed_paths,
             a.top_braid.n_paths if a.top_braid else 0,
             (a.top_braid.coverage if a.top_braid else 0) * 100))

    module, fn, run_args = w.build()
    tracer = OpMixTracer([fn])
    Interpreter(module, tracer=tracer).run(fn, run_args)
    mix = tracer.mix_for(fn)
    print("dynamic mix: %.0f%% int, %.0f%% fp, %.0f%% memory, %.0f%% control"
          % (mix.int_share * 100, mix.fp_share * 100,
             mix.memory_share * 100, mix.control_share * 100))
    rows = [
        (p.path_id, p.freq, p.ops, p.branch_count, p.memory_op_count,
         p.coverage * 100)
        for p in a.ranked[: args.top]
    ]
    print(format_table(
        ["path", "freq", "ops", "branches", "mem", "coverage %"], rows))
    if a.braid_frame is not None:
        f = a.braid_frame
        print("braid frame: %d ops, %d guards, %d psi, %d live-in, %d live-out"
              % (f.op_count, f.guard_count, len(f.psis),
                 len(f.live_ins), len(f.live_outs)))
    _finish_metrics(opts, pipeline, [w.name])
    return 0


#: printed for outcomes a workload did not produce (no path/braid frame)
MISSING_CELL = "—"


def _percent_cell(outcome, attr: str):
    """``value * 100`` of an outcome attribute, or an em-dash when the
    workload produced no frame for that strategy."""
    if outcome is None:
        return MISSING_CELL
    return getattr(outcome, attr) * 100


def evaluation_row(name: str, ev: WorkloadEvaluation) -> tuple:
    """One table row; missing outcomes render as em-dashes, never crash.

    A quarantined workload (its slot holds a
    :class:`~repro.resilience.WorkloadFailure`) renders as a failure
    marker instead of numbers — the sweep reports it, it does not
    abort the table.
    """
    if isinstance(ev, WorkloadFailure):
        return (
            name,
            "failed:%s x%d" % (ev.kind, ev.attempts),
            MISSING_CELL,
            MISSING_CELL,
            MISSING_CELL,
            MISSING_CELL,
        )
    return (
        name,
        _percent_cell(ev.path_oracle, "performance_improvement"),
        _percent_cell(ev.path_history, "performance_improvement"),
        _percent_cell(ev.braid, "performance_improvement"),
        _percent_cell(ev.braid, "energy_reduction"),
        _percent_cell(ev.hls, "alm_fraction"),
    )


def _resume_manifest(opts: PipelineOptions) -> List[str]:
    """The workload names a ``--resume`` run must evaluate: exactly the
    manifest its journal header recorded (anything else is a mismatch)."""
    journal_dir = resolve_journal_dir(opts.journal_dir)
    if journal_dir is None:
        raise SystemExit(
            "--resume needs --journal-dir or $REPRO_JOURNAL_DIR to find "
            "the journal")
    try:
        header = RunJournal.peek(journal_dir, opts.resume)
    except JournalError as exc:
        raise SystemExit(str(exc))
    return list(header.get("manifest") or workloads.all_names())


def _run_evaluations(args, opts: PipelineOptions):
    pipeline = _make_pipeline(args)
    if getattr(args, "resume", None):
        if args.workload:
            raise SystemExit(
                "--resume replays the journaled suite manifest; drop the "
                "workload argument")
        names = _resume_manifest(opts)
    elif args.workload:
        # a single name or a comma-separated subset — handy for smoke
        # runs and for journaled sweeps that should stay small
        names = [n.strip() for n in args.workload.split(",") if n.strip()]
    else:
        names = workloads.all_names()
    evaluations = pipeline.evaluate_all(
        [workloads.get(name) for name in names]
    )
    return names, evaluations, pipeline


def _cmd_evaluate(args) -> int:
    from .reporting import format_table

    opts = _options_from_args(args)
    names, evaluations, pipeline = _run_evaluations(args, opts)
    rows = [evaluation_row(name, ev) for name, ev in zip(names, evaluations)]
    print(format_table(
        ["workload", "path oracle %", "path hist %", "braid %",
         "energy %", "ALM %"],
        rows,
        title="Needle offload evaluation",
    ))
    _finish_metrics(opts, pipeline, names)
    return 0


def _cmd_metrics(args) -> int:
    if args.snapshot is not None:
        data = _load_metrics_file(args.snapshot)
        if args.format == "json":
            print(obs_export.to_json(data))
        elif args.format == "prom":
            print(obs_export.to_prometheus(data))
        else:
            print(obs_export.render_metrics(data))
        return 0
    opts = _options_from_args(args)
    obs.enable(reset=True)
    names, _evaluations, pipeline = _run_evaluations(args, opts)
    if args.format == "json":
        print(obs_export.to_json(None))
    elif args.format == "prom":
        print(obs_export.to_prometheus(None))
    else:
        print(obs_export.render_metrics(None))
    if opts.metrics_out is not None:
        with open(opts.metrics_out, "w") as fh:
            fh.write(obs_export.to_json(None))
    if opts.timeline_out is not None:
        obs_timeline.write_chrome_trace(
            opts.timeline_out,
            span_roots=obs.registry().span_roots,
            sim_tracks=_sim_tracks(pipeline, names),
        )
    return 0


def _cmd_trace(args) -> int:
    """Span/timeline views of an instrumented run.

    ``--format tree`` (default) prints the indented wall-clock span
    tree; ``--format json`` prints the span forest as JSON; ``--format
    chrome`` prints a Chrome trace-event document (wall-clock spans plus
    simulated-cycle tracks) for Perfetto.  When no span data was
    recorded the command prints a clean message to stderr and exits 1 —
    never a traceback.  ``--from PATH`` renders a saved snapshot
    (``tree``/``json`` formats) instead of re-evaluating.
    """
    if args.snapshot is not None:
        data = _load_metrics_file(args.snapshot)
        spans = data.get("spans") or []
        if args.format == "chrome":
            print("--from renders saved wall-clock spans only; the chrome "
                  "format needs a live run (use --format tree or json)",
                  file=sys.stderr)
            return 1
        if not spans:
            print("no span data in %s — nothing to trace" % args.snapshot,
                  file=sys.stderr)
            return 1
        if args.format == "json":
            import json as _json

            print(_json.dumps(spans, indent=2, sort_keys=True))
        else:
            print(obs_export.render_trace(data))
        return 0
    opts = _options_from_args(args)
    obs.enable(reset=True)
    names, _evaluations, pipeline = _run_evaluations(args, opts)
    roots = obs.registry().span_roots
    if args.format == "chrome":
        tracks = _sim_tracks(pipeline, names)
        if not roots and not tracks:
            print("no span or timeline data recorded — nothing to trace",
                  file=sys.stderr)
            return 1
        print(obs_timeline.render_chrome(roots, tracks))
    elif args.format == "json":
        if not roots:
            print("no span data recorded — nothing to trace",
                  file=sys.stderr)
            return 1
        import json as _json

        print(_json.dumps([n.to_dict() for n in roots],
                          indent=2, sort_keys=True))
    else:
        if not roots:
            print("no span data recorded — nothing to trace",
                  file=sys.stderr)
            return 1
        print(obs_export.render_trace(None))
    if opts.metrics_out is not None:
        with open(opts.metrics_out, "w") as fh:
            fh.write(obs_export.to_json(None))
    if opts.timeline_out is not None:
        obs_timeline.write_chrome_trace(
            opts.timeline_out,
            span_roots=roots,
            sim_tracks=_sim_tracks(pipeline, names),
        )
    return 0


def _cmd_report_table(args) -> int:
    """Render the Fig. 9/10-style attribution tables from a run's ledger.

    Either re-evaluates (default; honours the pipeline flags and the
    artifact cache) or renders from a saved ``--metrics-out`` /
    ``semantic_json`` snapshot via ``--from``.
    """
    from .obs.ledger import AttributionLedger
    from .reporting import render_attribution

    if args.snapshot is not None:
        data = _load_metrics_file(args.snapshot)
        ledger = AttributionLedger()
        ledger.merge_snapshot(data.get("ledger"))
        print(render_attribution(ledger, args.workload))
        return 0
    opts = _options_from_args(args)
    obs.enable(reset=True)
    _run_evaluations(args, opts)
    print(render_attribution(obs.ledger(), args.workload))
    _finish_metrics(opts)
    return 0


def _parse_threshold_overrides(pairs) -> list:
    """``PATTERN=FRACTION`` CLI forms -> (pattern, fraction) tuples."""
    overrides = []
    for pair in pairs or ():
        pattern, sep, fraction = pair.partition("=")
        if not sep:
            raise SystemExit(
                "--threshold expects PATTERN=FRACTION, got %r" % pair)
        try:
            overrides.append((pattern, float(fraction)))
        except ValueError:
            raise SystemExit(
                "--threshold fraction must be numeric, got %r" % pair)
    return overrides


def _cmd_report_diff(args) -> int:
    """Diff two snapshots; exit 1 when any metric regressed."""
    from .reporting import Thresholds, diff_snapshots, load_snapshot, \
        render_diff

    thresholds = Thresholds(
        default=args.default_threshold,
        overrides=_parse_threshold_overrides(args.threshold),
        ignore=list(args.ignore or ()),
    )
    def _load(path):
        try:
            return load_snapshot(path)
        except OSError as exc:
            raise SystemExit(
                "error: cannot read snapshot %s: %s"
                % (path, exc.strerror or exc))
        except ValueError as exc:
            raise SystemExit(
                "error: snapshot %s is not valid JSON: %s" % (path, exc))

    result = diff_snapshots(_load(args.old), _load(args.new), thresholds)
    print(render_diff(result, verbose=args.verbose))
    return result.exit_code


def _cmd_top(args) -> int:
    """Render the live sweep view from an endpoint or progress file."""
    from .obs.top import run_top

    try:
        return run_top(args.source, interval=args.interval, once=args.once)
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Needle (HPCA 2017) reproduction CLI"
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="logging level for every repro.* logger (DEBUG, INFO, "
        "WARNING, ERROR; default: $REPRO_LOG_LEVEL or WARNING)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite").set_defaults(
        func=_cmd_list
    )

    p = sub.add_parser("dump", help="print a workload's hot function IR")
    p.add_argument("workload")
    p.set_defaults(func=_cmd_dump)

    p = sub.add_parser("analyze", help="per-workload Needle analysis")
    p.add_argument("workload")
    p.add_argument("--top", type=int, default=5)
    PipelineOptions.add_cli_arguments(p, jobs=False)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("evaluate", help="simulate offload (Fig. 9/10 numbers)")
    p.add_argument("workload", nargs="?", default=None,
                   help="one workload, or a comma-separated subset "
                        "(default: the whole suite)")
    PipelineOptions.add_cli_arguments(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "metrics",
        help="evaluate with instrumentation on and print the metric registry",
    )
    p.add_argument("workload", nargs="?", default=None)
    p.add_argument(
        "--format",
        choices=("table", "json", "prom"),
        default="table",
        help="output format (human table, JSON, or Prometheus text)",
    )
    p.add_argument(
        "--from",
        dest="snapshot",
        default=None,
        metavar="PATH",
        help="render a saved --metrics-out JSON snapshot instead of "
        "re-evaluating",
    )
    PipelineOptions.add_cli_arguments(p)
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "trace",
        help="evaluate with instrumentation on and print the span tree "
        "or a Chrome trace",
    )
    p.add_argument("workload", nargs="?", default=None)
    p.add_argument(
        "--format",
        choices=("tree", "chrome", "json"),
        default="tree",
        help="tree: indented wall-clock spans (default); chrome: "
        "trace-event JSON with simulated-cycle tracks (Perfetto); "
        "json: raw span forest",
    )
    p.add_argument(
        "--from",
        dest="snapshot",
        default=None,
        metavar="PATH",
        help="render spans from a saved --metrics-out JSON snapshot "
        "instead of re-evaluating (tree/json formats)",
    )
    PipelineOptions.add_cli_arguments(p)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "report",
        help="attribution tables and snapshot regression diffing",
    )
    report_sub = p.add_subparsers(dest="report_command", required=True)

    p = report_sub.add_parser(
        "table",
        help="paper-style cycle/energy attribution tables from the ledger",
    )
    p.add_argument("workload", nargs="?", default=None)
    p.add_argument(
        "--from",
        dest="snapshot",
        default=None,
        metavar="PATH",
        help="render from a saved metrics JSON snapshot instead of "
        "re-evaluating",
    )
    PipelineOptions.add_cli_arguments(p)
    p.set_defaults(func=_cmd_report_table)

    p = report_sub.add_parser(
        "diff",
        help="compare two metric snapshots; exit 1 on regression",
    )
    p.add_argument("old", help="baseline snapshot JSON (metrics or BENCH_*)")
    p.add_argument("new", help="candidate snapshot JSON")
    p.add_argument(
        "--default-threshold",
        type=float,
        default=0.05,
        metavar="FRAC",
        help="relative change tolerated per metric (default: 0.05)",
    )
    p.add_argument(
        "--threshold",
        action="append",
        metavar="PATTERN=FRAC",
        help="per-metric tolerance override (fnmatch pattern, repeatable)",
    )
    p.add_argument(
        "--ignore",
        action="append",
        metavar="PATTERN",
        help="metrics matching this fnmatch pattern never gate (repeatable)",
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="show every metric, not just changed ones",
    )
    p.set_defaults(func=_cmd_report_diff)

    p = sub.add_parser(
        "top",
        help="live one-screen view of a running sweep",
    )
    p.add_argument(
        "source",
        help="progress source: a --serve-metrics PORT / HOST:PORT / URL, "
        "or a --progress-out progress.json path",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SEC",
        help="refresh period in seconds (default: 1.0)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit",
    )
    p.set_defaults(func=_cmd_top)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        obs.logging_setup(getattr(args, "log_level", None))
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    try:
        return args.func(args)
    except SweepDrained as exc:
        # a journaled sweep drained on SIGINT/SIGTERM: everything that
        # finished is durable; say how to pick the run back up
        print(
            "\nsweep interrupted: %d workload(s) completed and journaled, "
            "%d outstanding (drained in %.1fs)"
            % (exc.completed, len(exc.outstanding), exc.drain_seconds),
            file=sys.stderr,
        )
        resume = exc.resume_command()
        if resume is not None:
            print("resume with:\n  %s" % resume, file=sys.stderr)
        return EXIT_DRAINED
    except JournalError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


__all__ = ["build_parser", "evaluation_row", "main"]


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
