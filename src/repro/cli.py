"""Command line interface: ``python -m repro <command>``.

Commands
--------
list                 enumerate the 29-workload suite
analyze WORKLOAD     per-workload Needle report (paths, braids, frames)
evaluate [WORKLOAD]  Fig. 9 / Fig. 10 style numbers (one workload or all)
dump WORKLOAD        print the workload's hot function as IR text
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import workloads
from .ir import format_function
from .pipeline import NeedlePipeline
from .reporting import format_table


def _cmd_list(_args) -> int:
    rows = []
    for name in workloads.all_names():
        w = workloads.get(name)
        rows.append((name, w.suite, w.flavor, w.description))
    print(format_table(["workload", "suite", "flavor", "description"], rows))
    return 0


def _cmd_dump(args) -> int:
    w = workloads.get(args.workload)
    module, fn, _ = w.build()
    from .ir import format_module

    print(format_module(module))
    return 0


def _cmd_analyze(args) -> int:
    from .interp import Interpreter, OpMixTracer

    pipeline = NeedlePipeline()
    w = workloads.get(args.workload)
    a = pipeline.analyse(w)
    print("%s: %d executed paths, top braid merges %d paths for %.1f%% coverage"
          % (w.name, a.profiled.paths.executed_paths,
             a.top_braid.n_paths if a.top_braid else 0,
             (a.top_braid.coverage if a.top_braid else 0) * 100))

    module, fn, run_args = w.build()
    tracer = OpMixTracer([fn])
    Interpreter(module, tracer=tracer).run(fn, run_args)
    mix = tracer.mix_for(fn)
    print("dynamic mix: %.0f%% int, %.0f%% fp, %.0f%% memory, %.0f%% control"
          % (mix.int_share * 100, mix.fp_share * 100,
             mix.memory_share * 100, mix.control_share * 100))
    rows = [
        (p.path_id, p.freq, p.ops, p.branch_count, p.memory_op_count,
         p.coverage * 100)
        for p in a.ranked[: args.top]
    ]
    print(format_table(
        ["path", "freq", "ops", "branches", "mem", "coverage %"], rows))
    if a.braid_frame is not None:
        f = a.braid_frame
        print("braid frame: %d ops, %d guards, %d psi, %d live-in, %d live-out"
              % (f.op_count, f.guard_count, len(f.psis),
                 len(f.live_ins), len(f.live_outs)))
    return 0


def _cmd_evaluate(args) -> int:
    pipeline = NeedlePipeline()
    names = [args.workload] if args.workload else workloads.all_names()
    rows = []
    for name in names:
        ev = pipeline.evaluate(workloads.get(name))
        rows.append(
            (
                name,
                ev.path_oracle.performance_improvement * 100,
                ev.path_history.performance_improvement * 100,
                ev.braid.performance_improvement * 100,
                ev.braid.energy_reduction * 100,
                ev.hls.alm_fraction * 100,
            )
        )
    print(format_table(
        ["workload", "path oracle %", "path hist %", "braid %",
         "energy %", "ALM %"],
        rows,
        title="Needle offload evaluation",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Needle (HPCA 2017) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite").set_defaults(
        func=_cmd_list
    )

    p = sub.add_parser("dump", help="print a workload's hot function IR")
    p.add_argument("workload")
    p.set_defaults(func=_cmd_dump)

    p = sub.add_parser("analyze", help="per-workload Needle analysis")
    p.add_argument("workload")
    p.add_argument("--top", type=int, default=5)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("evaluate", help="simulate offload (Fig. 9/10 numbers)")
    p.add_argument("workload", nargs="?", default=None)
    p.set_defaults(func=_cmd_evaluate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
