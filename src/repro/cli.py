"""Command line interface: ``python -m repro <command>``.

Commands
--------
list                 enumerate the 29-workload suite
analyze WORKLOAD     per-workload Needle report (paths, braids, frames)
evaluate [WORKLOAD]  Fig. 9 / Fig. 10 style numbers (one workload or all)
dump WORKLOAD        print the workload's hot function as IR text

``analyze`` and ``evaluate`` persist profiles and evaluation results in a
content-addressed artifact cache (default ``~/.cache/repro-needle``, or
``$REPRO_CACHE_DIR``), so repeat invocations skip re-profiling; ``--no-cache``
bypasses it and ``--cache-dir`` relocates it.  ``evaluate --jobs N`` shards
the suite across N worker processes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import workloads
from .artifacts import ArtifactCache
from .pipeline import NeedlePipeline, WorkloadEvaluation


def _make_pipeline(args) -> NeedlePipeline:
    cache = None
    if not getattr(args, "no_cache", False):
        cache = ArtifactCache(getattr(args, "cache_dir", None))
    return NeedlePipeline(cache=cache)


def _cmd_list(_args) -> int:
    from .reporting import format_table

    rows = []
    for name in workloads.all_names():
        w = workloads.get(name)
        rows.append((name, w.suite, w.flavor, w.description))
    print(format_table(["workload", "suite", "flavor", "description"], rows))
    return 0


def _cmd_dump(args) -> int:
    w = workloads.get(args.workload)
    module, fn, _ = w.build()
    from .ir import format_module

    print(format_module(module))
    return 0


def _cmd_analyze(args) -> int:
    from .interp import Interpreter, OpMixTracer
    from .reporting import format_table

    pipeline = _make_pipeline(args)
    w = workloads.get(args.workload)
    a = pipeline.analyse(w)
    print("%s: %d executed paths, top braid merges %d paths for %.1f%% coverage"
          % (w.name, a.profiled.paths.executed_paths,
             a.top_braid.n_paths if a.top_braid else 0,
             (a.top_braid.coverage if a.top_braid else 0) * 100))

    module, fn, run_args = w.build()
    tracer = OpMixTracer([fn])
    Interpreter(module, tracer=tracer).run(fn, run_args)
    mix = tracer.mix_for(fn)
    print("dynamic mix: %.0f%% int, %.0f%% fp, %.0f%% memory, %.0f%% control"
          % (mix.int_share * 100, mix.fp_share * 100,
             mix.memory_share * 100, mix.control_share * 100))
    rows = [
        (p.path_id, p.freq, p.ops, p.branch_count, p.memory_op_count,
         p.coverage * 100)
        for p in a.ranked[: args.top]
    ]
    print(format_table(
        ["path", "freq", "ops", "branches", "mem", "coverage %"], rows))
    if a.braid_frame is not None:
        f = a.braid_frame
        print("braid frame: %d ops, %d guards, %d psi, %d live-in, %d live-out"
              % (f.op_count, f.guard_count, len(f.psis),
                 len(f.live_ins), len(f.live_outs)))
    return 0


#: printed for outcomes a workload did not produce (no path/braid frame)
MISSING_CELL = "—"


def _percent_cell(outcome, attr: str):
    """``value * 100`` of an outcome attribute, or an em-dash when the
    workload produced no frame for that strategy."""
    if outcome is None:
        return MISSING_CELL
    return getattr(outcome, attr) * 100


def evaluation_row(name: str, ev: WorkloadEvaluation) -> tuple:
    """One table row; missing outcomes render as em-dashes, never crash."""
    return (
        name,
        _percent_cell(ev.path_oracle, "performance_improvement"),
        _percent_cell(ev.path_history, "performance_improvement"),
        _percent_cell(ev.braid, "performance_improvement"),
        _percent_cell(ev.braid, "energy_reduction"),
        _percent_cell(ev.hls, "alm_fraction"),
    )


def _cmd_evaluate(args) -> int:
    from .reporting import format_table

    pipeline = _make_pipeline(args)
    names = [args.workload] if args.workload else workloads.all_names()
    evaluations = pipeline.evaluate_all(
        [workloads.get(name) for name in names], jobs=args.jobs
    )
    rows = [evaluation_row(name, ev) for name, ev in zip(names, evaluations)]
    print(format_table(
        ["workload", "path oracle %", "path hist %", "braid %",
         "energy %", "ALM %"],
        rows,
        title="Needle offload evaluation",
    ))
    return 0


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="artifact cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-needle)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent artifact cache",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Needle (HPCA 2017) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite").set_defaults(
        func=_cmd_list
    )

    p = sub.add_parser("dump", help="print a workload's hot function IR")
    p.add_argument("workload")
    p.set_defaults(func=_cmd_dump)

    p = sub.add_parser("analyze", help="per-workload Needle analysis")
    p.add_argument("workload")
    p.add_argument("--top", type=int, default=5)
    _add_cache_options(p)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("evaluate", help="simulate offload (Fig. 9/10 numbers)")
    p.add_argument("workload", nargs="?", default=None)
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="shard the suite across N worker processes",
    )
    _add_cache_options(p)
    p.set_defaults(func=_cmd_evaluate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
