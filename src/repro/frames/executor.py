"""Executable semantics of software frames: atomic run-or-rollback.

:class:`FrameExecutor` runs a frame against live-in values and a
:class:`~repro.interp.memory.Memory`.  Stores populate an undo log; if
control tries to leave the region anywhere other than the exit block, the
frame aborts and the undo log restores memory exactly — the property the
paper's software speculation depends on, and the one our property tests
verify byte-for-byte.

Atomicity holds on *every* exit, not just the scripted abort path: any
exception escaping mid-frame (an unexecutable construct, a semantic
error, an injected fault) replays the undo log before propagating, and a
per-invocation step budget (:class:`FrameBudgetExhausted`, the analogue
of the interpreter's fuel) bounds a malformed region's control flow so a
runaway frame cannot wedge its worker.  The named fault sites consulted
here (``frame.exception``, ``frame.store_corrupt``, ``frame.guard_flip``)
are what the chaos suite uses to prove all of this under duress; they
cost one flag test each when no plan is installed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..interp.interpreter import (
    _FCMP_FNS,
    _FP_BINOP_FNS,
    _ICMP_FNS,
    _INT_BINOP_FNS,
)
from ..interp.memory import Memory
from ..obs import counter as _obs_counter, enabled as _obs_enabled
from ..ir.block import BasicBlock
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Compare,
    CondBranch,
    Gep,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    UnaryOp,
)
from ..ir.values import Constant, GlobalArray, UndefValue, Value
from ..resilience.faults import (
    SITE_FRAME_EXCEPTION,
    SITE_FRAME_GUARD_FLIP,
    SITE_FRAME_STORE_CORRUPT,
    FaultInjected,
    consult as _flt_consult,
    corrupt_value as _flt_corrupt,
    enabled as _flt_enabled,
)
from .frame import Frame

#: step-budget floor / per-block multiplier used when no explicit budget
#: is given: generous enough for any legal region walk (paths visit each
#: block once; braids re-converge), tight enough to stop a runaway loop
MIN_STEP_BUDGET = 4096
STEP_BUDGET_FACTOR = 64


class FrameExecutionError(Exception):
    """Frame execution hit an unexecutable construct."""


class FrameBudgetExhausted(FrameExecutionError):
    """The invocation exceeded its block-step budget (fuel analogue)."""


@dataclass
class UndoLog:
    """Old-value log used to revert speculative stores."""

    entries: List[Tuple[int, Optional[Tuple[int, object]]]] = field(
        default_factory=list
    )

    def record(self, memory: Memory, addr: int) -> None:
        self.entries.append((addr, memory.read_raw(addr)))

    def rollback(self, memory: Memory) -> None:
        """Restore logged locations, newest first."""
        for addr, old in reversed(self.entries):
            if old is None:
                memory.erase(addr)
            else:
                memory.write_raw(addr, old[0], old[1])
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class FrameResult:
    """Outcome of one frame invocation."""

    success: bool
    live_outs: Dict[Value, object] = field(default_factory=dict)
    exit_successor: Optional[BasicBlock] = None  # host resume point
    failed_guard_block: Optional[BasicBlock] = None
    ops_executed: int = 0
    stores_logged: int = 0
    blocks_executed: int = 0


class FrameExecutor:
    """Runs frames atomically over a shared memory."""

    def __init__(
        self,
        memory: Memory,
        global_base: Dict[GlobalArray, int],
        step_budget: Optional[int] = None,
    ):
        self.memory = memory
        self.global_base = global_base
        #: per-invocation block-step limit; ``None`` derives one from the
        #: region size at run time
        self.step_budget = step_budget

    def run(self, frame: Frame, live_in_values: Dict[Value, object]) -> FrameResult:
        """Execute ``frame``; on guard failure memory is rolled back.

        ``live_in_values`` must supply every value in ``frame.live_ins``.
        Exceptions escaping mid-frame also roll memory back before
        propagating — an invocation never half-commits.
        """
        try:
            result = self._run(frame, live_in_values)
        except BaseException:
            if _obs_enabled():
                kind = frame.region.kind
                _obs_counter(
                    "frames.aborts", 1,
                    help="frame invocations that committed (or rolled back)",
                    region=kind)
                _obs_counter(
                    "frames.exception_aborts", 1,
                    help="aborts forced by an exception escaping the frame",
                    region=kind)
            raise
        if _obs_enabled():
            kind = frame.region.kind
            _obs_counter(
                "frames.commits" if result.success else "frames.aborts", 1,
                help="frame invocations that committed (or rolled back)",
                region=kind)
            if not result.success:
                _obs_counter("frames.rolled_back_stores",
                             result.stores_logged,
                             help="undo-log entries replayed by aborts",
                             region=kind)
        return result

    def _run(self, frame: Frame, live_in_values: Dict[Value, object]) -> FrameResult:
        missing = [v for v in frame.live_ins if v not in live_in_values]
        if missing:
            raise FrameExecutionError(
                "missing live-in values: %s"
                % ", ".join(getattr(v, "name", "?") for v in missing)
            )
        env: Dict[Value, object] = dict(live_in_values)
        undo = UndoLog()
        try:
            return self._run_body(frame, env, undo)
        except BaseException:
            # the undo log is the atomicity guarantee: whatever already
            # ran its speculative stores is reverted before the caller
            # sees the exception (rollback clears the log, so the scripted
            # abort paths inside _run_body are not replayed twice)
            undo.rollback(self.memory)
            raise

    def _run_body(
        self, frame: Frame, env: Dict[Value, object], undo: "UndoLog"
    ) -> FrameResult:
        region = frame.region
        order = region.blocks
        is_path = region.kind in ("bl-path", "superblock", "expanded")
        block_set = region.block_set

        result = FrameResult(success=False)
        block = region.entry
        prev: Optional[BasicBlock] = None
        path_index = 0
        budget = self.step_budget
        if budget is None:
            budget = max(MIN_STEP_BUDGET, STEP_BUDGET_FACTOR * len(order))

        while True:
            result.blocks_executed += 1
            # fuel analogue: a malformed region whose control flow never
            # reaches the exit must abort (and roll back), not hang the
            # worker that invoked it
            if result.blocks_executed > budget:
                raise FrameBudgetExhausted(
                    "frame exceeded %d block steps (region %s)"
                    % (budget, region.kind)
                )
            if _flt_enabled():
                spec = _flt_consult(SITE_FRAME_EXCEPTION, block.name)
                if spec is not None:
                    raise FaultInjected(
                        "injected mid-frame exception at block %s" % block.name
                    )
            # φs: entry φs come from live-ins; interior φs resolve from the
            # incoming edge actually taken (ψ semantics for braids).
            staged = []
            for phi in block.phis:
                if phi in env and block is region.entry:
                    continue  # live-in supplied value
                if prev is None:
                    raise FrameExecutionError(
                        "entry φ %%%s not supplied as live-in" % phi.name
                    )
                val = phi.incoming_for(prev)
                if val is None:
                    raise FrameExecutionError(
                        "φ %%%s has no incoming for %s" % (phi.name, prev.name)
                    )
                staged.append((phi, self._eval(val, env)))
            for phi, v in staged:
                env[phi] = v

            next_block: Optional[BasicBlock] = None
            leave = False
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    continue
                if isinstance(inst, (Branch, CondBranch, Ret)):
                    succ = self._next_successor(inst, env, block)
                    if block is (order[-1] if order else None):
                        # frame completes; host resumes at succ (or return)
                        result.exit_successor = succ
                        leave = True
                        break
                    if succ is None:
                        # a return mid-region: treat as leaving the region
                        result.failed_guard_block = block
                        undo.rollback(self.memory)
                        return result
                    if is_path:
                        expected = order[path_index + 1]
                        if succ is not expected:
                            result.failed_guard_block = block
                            undo.rollback(self.memory)
                            return result
                        next_block = succ
                    else:
                        if succ not in block_set:
                            result.failed_guard_block = block
                            undo.rollback(self.memory)
                            return result
                        next_block = succ
                    break
                result.ops_executed += 1
                self._execute(inst, env, undo, result)

            if leave:
                break
            if next_block is None:
                raise FrameExecutionError(
                    "block %s has no terminator" % block.name
                )
            prev, block = block, next_block
            if is_path:
                path_index += 1

        # success: gather live-outs
        result.success = True
        result.stores_logged = len(undo)
        for v in frame.live_outs:
            if v in env:
                result.live_outs[v] = env[v]
        return result

    # -- instruction semantics (shared tables with the interpreter) -------------

    def _execute(self, inst: Instruction, env, undo: UndoLog, result: FrameResult) -> None:
        if isinstance(inst, BinaryOp):
            a = self._eval(inst.operands[0], env)
            b = self._eval(inst.operands[1], env)
            fn = _INT_BINOP_FNS.get(inst.opcode) or _FP_BINOP_FNS[inst.opcode]
            env[inst] = inst.type.wrap(fn(a, b))
        elif isinstance(inst, Compare):
            a = self._eval(inst.operands[0], env)
            b = self._eval(inst.operands[1], env)
            table = _ICMP_FNS if inst.opcode == "icmp" else _FCMP_FNS
            env[inst] = 1 if table[inst.predicate](a, b) else 0
        elif isinstance(inst, Load):
            addr = self._eval(inst.address, env)
            env[inst] = self.memory.read(addr, inst.type)
        elif isinstance(inst, Store):
            addr = self._eval(inst.address, env)
            undo.record(self.memory, addr)
            result.stores_logged += 1
            value = self._eval(inst.value, env)
            if _flt_enabled():
                spec = _flt_consult(SITE_FRAME_STORE_CORRUPT, inst.name)
                if spec is not None:
                    value = _flt_corrupt(value, spec)
            self.memory.write(addr, inst.value.type, value)
        elif isinstance(inst, Gep):
            env[inst] = self._eval(inst.base, env) + self._eval(
                inst.index, env
            ) * inst.elem_size
        elif isinstance(inst, Select):
            c = self._eval(inst.operands[0], env)
            env[inst] = self._eval(inst.operands[1 if c else 2], env)
        elif isinstance(inst, UnaryOp):
            env[inst] = self._eval_unop(inst, env)
        elif isinstance(inst, Alloca):
            env[inst] = self.memory.alloc(inst.size_bytes)
        elif isinstance(inst, Call):
            raise FrameExecutionError(
                "call inside a frame: inline before region formation"
            )
        else:  # pragma: no cover
            raise FrameExecutionError("cannot execute %r in frame" % inst.opcode)

    def _next_successor(
        self, inst, env, block: Optional[BasicBlock] = None
    ) -> Optional[BasicBlock]:
        if isinstance(inst, Branch):
            return inst.target
        if isinstance(inst, CondBranch):
            taken = bool(self._eval(inst.cond, env))
            if _flt_enabled():
                spec = _flt_consult(
                    SITE_FRAME_GUARD_FLIP,
                    block.name if block is not None else None,
                )
                if spec is not None:
                    taken = not taken
            return inst.true_target if taken else inst.false_target
        return None  # Ret

    def _eval(self, value: Value, env):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalArray):
            return self.global_base[value]
        if isinstance(value, UndefValue):
            return 0
        try:
            return env[value]
        except KeyError:
            raise FrameExecutionError(
                "value %%%s not available in frame" % getattr(value, "name", "?")
            ) from None

    def _eval_unop(self, inst: UnaryOp, env):
        a = self._eval(inst.operands[0], env)
        op = inst.opcode
        if op == "fneg":
            return -a
        if op == "fabs":
            return abs(a)
        if op == "fsqrt":
            return math.sqrt(a) if a >= 0 else float("nan")
        if op == "sitofp":
            return float(a)
        if op == "fptosi":
            return inst.type.wrap(int(a))
        if op == "zext":
            src_bits = inst.operands[0].type.bits
            return inst.type.wrap(a & ((1 << src_bits) - 1))
        return inst.type.wrap(a)  # sext / trunc
