"""Outlining: extract a software frame into a real IR offload function.

This is the paper's "NEEDLE extracts each hot region into a separate
*frame*" made literal: the generated function

* takes every frame live-in as an argument,
* executes the region's blocks (cloned) with φs rewired to the arguments,
* instruments every store with an **IR-level undo log** (old value + address
  appended to dedicated globals; one log per stored scalar type),
* converts guard branches into jumps to a **rollback block** that walks the
  undo logs backwards restoring memory, then returns the failing guard's
  1-based index,
* writes every live-out to an output buffer global and returns 0 on
  success.

Because the result is ordinary IR, the standard interpreter runs it — the
outlined function and :class:`~repro.frames.executor.FrameExecutor` are two
independent implementations of the frame semantics, and the tests check
they agree on success results, failure codes and memory effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Branch, Call, CondBranch, Phi, Ret, Store
from ..ir.module import Module
from ..ir.types import I32, I64, Type
from ..ir.values import Constant, GlobalArray, Value
from ..transforms.clone import clone_instruction
from .frame import Frame, FrameBuildError

#: capacity of each generated undo log (entries)
UNDO_CAPACITY = 256


@dataclass
class _UndoLog:
    """One per stored scalar type: value slots, address slots, counter."""

    elem_type: Type
    values: GlobalArray
    addrs: GlobalArray
    counter: GlobalArray


@dataclass
class OutlinedFrame:
    """The generated offload function plus its calling convention."""

    function: Function
    frame: Frame
    #: frame live-in Value -> argument index
    arg_index: Dict[Value, int]
    #: frame live-out Value -> slot index in the output buffer global
    out_slot: Dict[Value, int]
    out_buffer: GlobalArray

    @property
    def n_args(self) -> int:
        return len(self.arg_index)

    def args_from(self, live_in_values: Dict[Value, object]) -> List[object]:
        """Order a live-in value dict into the function's argument list."""
        out: List[object] = [None] * self.n_args
        for live, index in self.arg_index.items():
            out[index] = live_in_values[live]
        return out


def outline_frame(frame: Frame, module: Module, name: Optional[str] = None) -> OutlinedFrame:
    """Generate the offload function for ``frame`` inside ``module``.

    The function returns ``0`` on success and the failing guard's 1-based
    index after rolling back.
    """
    region = frame.region
    if not region.blocks:
        raise FrameBuildError("cannot outline an empty region")
    base = name or (
        "%s_%s_frame" % (region.function.name, region.kind.replace("-", "_"))
    )
    while base in module.functions:
        base += "_"

    def fresh_global(suffix: str, elem: Type, count: int) -> GlobalArray:
        gname = "%s.%s" % (base, suffix)
        k = 0
        while gname in module.globals:
            k += 1
            gname = "%s.%s%d" % (base, suffix, k)
        return module.add_global(gname, elem, count)

    out_buffer = fresh_global("out", I64, max(1, len(frame.live_outs)))
    undo_logs: Dict[Type, _UndoLog] = {}

    def undo_log_for(t: Type) -> _UndoLog:
        log = undo_logs.get(t)
        if log is None:
            tag = str(t)
            log = _UndoLog(
                elem_type=t,
                values=fresh_global("undo_val_" + tag, t, UNDO_CAPACITY),
                addrs=fresh_global("undo_addr_" + tag, I64, UNDO_CAPACITY),
                counter=fresh_global("undo_n_" + tag, I32, 1),
            )
            undo_logs[t] = log
        return log

    # pre-create logs for every stored type so entry can reset the counters
    for fop in frame.ops:
        if fop.kind == "op" and isinstance(fop.inst, Store):
            undo_log_for(fop.inst.value.type)

    # -- function skeleton -----------------------------------------------------
    arg_index: Dict[Value, int] = {}
    arg_specs: List[Tuple[str, Type]] = []
    for i, live in enumerate(frame.live_ins):
        arg_index[live] = i
        arg_specs.append(("in%d" % i, live.type))
    fn = module.add_function(base, arg_specs, I32)
    b = IRBuilder(fn)

    entry = b.add_block("entry")
    value_map: Dict[Value, Value] = {
        live: fn.args[i] for live, i in arg_index.items()
    }
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for blk in region.blocks:
        block_map[blk] = fn.add_block("r." + blk.name)

    rollback_entry = b.add_block("rollback")
    fail_blocks: Dict[int, BasicBlock] = {}
    no_guard_code = len(frame.guards) + 1  # off-region exit without a guard tag

    b.set_block(entry)
    for log in undo_logs.values():
        b.store(0, b.gep(log.counter, 0, 4))
    b.br(block_map[region.entry])

    # -- clone the region with frame semantics -----------------------------------
    order = list(region.blocks)
    is_path = region.kind in ("bl-path", "superblock", "expanded")
    next_on_path = {a: bl for a, bl in zip(order, order[1:])}
    region_set = region.block_set
    guard_of_block = {g.block: gi + 1 for gi, g in enumerate(frame.guards)}

    for blk in order:
        clone = block_map[blk]
        b.set_block(clone)
        terminated = False
        for inst in blk.instructions:
            if isinstance(inst, Phi):
                res = frame.phi_resolution.get(inst)
                if res == "live-in":
                    if inst in value_map:
                        continue
                    raise FrameBuildError(
                        "entry phi %%%s missing from live-ins" % inst.name
                    )
                if isinstance(res, Value):
                    value_map[inst] = _subst(res, value_map)
                    continue
                new_phi = Phi(inst.type, fn.unique_name(inst.name))
                for in_blk, val in inst.incoming:
                    if in_blk in region_set:
                        new_phi.add_incoming(block_map[in_blk], _subst(val, value_map))
                clone.insert(len(clone.phis), new_phi)
                value_map[inst] = new_phi
                continue

            if isinstance(inst, Store):
                _emit_logged_store(b, inst, value_map, undo_log_for(inst.value.type))
                continue

            if isinstance(inst, CondBranch):
                terminated = True
                if blk is order[-1]:
                    _emit_success(b, frame, value_map, out_buffer)
                    break
                cond = _subst(inst.cond, value_map)
                code = guard_of_block.get(blk, no_guard_code)
                if is_path:
                    stay = next_on_path.get(blk)
                    fail_target = _fail_block(fn, fail_blocks, rollback_entry, code)
                    if inst.true_target is stay:
                        clone.append(CondBranch(cond, block_map[stay], fail_target))
                    elif inst.false_target is stay:
                        clone.append(CondBranch(cond, fail_target, block_map[stay]))
                    else:
                        raise FrameBuildError(
                            "path block %s does not continue the path" % blk.name
                        )
                    break
                t, f = inst.true_target, inst.false_target
                t_clone = (
                    block_map[t]
                    if t in region_set
                    else _fail_block(fn, fail_blocks, rollback_entry, code)
                )
                f_clone = (
                    block_map[f]
                    if f in region_set
                    else _fail_block(fn, fail_blocks, rollback_entry, code)
                )
                clone.append(CondBranch(cond, t_clone, f_clone))
                break

            if isinstance(inst, Branch):
                terminated = True
                if blk is order[-1] or inst.target not in region_set:
                    _emit_success(b, frame, value_map, out_buffer)
                else:
                    clone.append(Branch(block_map[inst.target]))
                break

            if isinstance(inst, Ret):
                terminated = True
                _emit_success(b, frame, value_map, out_buffer)
                break

            if isinstance(inst, Call):
                raise FrameBuildError("calls must be inlined before outlining")

            new = clone_instruction(inst, value_map, block_map)
            if new.name:
                new.name = fn.unique_name(new.name)
            clone.append(new)

        if not terminated and clone.terminator is None:
            nxt = next_on_path.get(blk)
            if nxt is None:
                _emit_success(b, frame, value_map, out_buffer)
            else:
                clone.append(Branch(block_map[nxt]))

    # -- rollback machinery: one reverse-walk loop per undo log ------------------
    b.set_block(rollback_entry)
    fail_code = b.phi(I32, "failcode")
    chain_start = rollback_entry
    done = b.add_block("rb.done")
    logs = list(undo_logs.values())
    cursor = rollback_entry
    for li, log in enumerate(logs):
        head = b.add_block("rb.head%d" % li)
        body = b.add_block("rb.body%d" % li)
        nxt = b.add_block("rb.next%d" % li) if li + 1 < len(logs) else done

        b.set_block(cursor)
        n0 = b.load(I32, b.gep(log.counter, 0, 4))
        b.br(head)
        pre = b.block

        b.set_block(head)
        idx = b.phi(I32, "rb.i%d" % li)
        more = b.icmp("sgt", idx, 0)
        b.condbr(more, body, nxt)

        b.set_block(body)
        prev = b.sub(idx, 1)
        addr = b.load(I64, b.gep(log.addrs, prev, 8))
        old = b.load(log.elem_type, b.gep(log.values, prev, log.elem_type.size_bytes))
        b.store(old, addr)
        b.br(head)

        idx.add_incoming(pre, n0)
        idx.add_incoming(body, prev)
        cursor = nxt
    if not logs:
        b.set_block(rollback_entry)
        b.br(done)
    b.set_block(done)
    b.ret(fail_code)

    for code, fb in fail_blocks.items():
        fail_code.add_incoming(fb, Constant(I32, code))

    _prune_unreachable(fn)
    from ..ir.verifier import verify_function

    verify_function(fn)
    return OutlinedFrame(
        function=fn,
        frame=frame,
        arg_index=arg_index,
        out_slot={v: i for i, v in enumerate(frame.live_outs)},
        out_buffer=out_buffer,
    )


def _subst(value: Value, value_map: Dict[Value, Value]) -> Value:
    seen = 0
    while value in value_map and seen < 64:
        nxt = value_map[value]
        if nxt is value:
            break
        value = nxt
        seen += 1
    return value


def _fail_block(fn: Function, fail_blocks, rollback_entry, code: int) -> BasicBlock:
    fb = fail_blocks.get(code)
    if fb is None:
        fb = fn.add_block("fail.g%d" % code)
        fb.append(Branch(rollback_entry))
        fail_blocks[code] = fb
    return fb


def _emit_logged_store(b: IRBuilder, inst: Store, value_map, log: _UndoLog) -> None:
    """store -> (read old, append to the type's log, bump counter, store)."""
    address = _subst(inst.address, value_map)
    value = _subst(inst.value, value_map)
    old = b.load(inst.value.type, address)
    nptr = b.gep(log.counter, 0, 4)
    n = b.load(I32, nptr)
    b.store(old, b.gep(log.values, n, log.elem_type.size_bytes))
    b.store(address, b.gep(log.addrs, n, 8))
    b.store(b.add(n, 1), nptr)
    b.store(value, address)


def _emit_success(b: IRBuilder, frame: Frame, value_map, out_buffer) -> None:
    """Write live-outs to the output buffer and return 0."""
    for i, live in enumerate(frame.live_outs):
        v = _subst(live, value_map)
        slot = b.gep(out_buffer, i, 8)
        b.store(v, slot)
    b.ret(0)


def _prune_unreachable(fn: Function) -> None:
    reachable = set()
    stack = [fn.entry]
    while stack:
        blk = stack.pop()
        if blk in reachable:
            continue
        reachable.add(blk)
        stack.extend(blk.successors)
    for blk in list(fn.blocks):
        if blk not in reachable:
            for succ in blk.successors:
                for phi in succ.phis:
                    phi.remove_incoming(blk)
            fn.remove_block(blk)
