"""Software frames: guarded, atomic, fully speculative offload units."""

from .frame import (
    Frame,
    FrameBuildError,
    FrameOp,
    Guard,
    PsiOp,
    build_frame,
)
from .executor import (
    FrameBudgetExhausted,
    FrameExecutionError,
    FrameExecutor,
    FrameResult,
    UndoLog,
)
from .outline import OutlinedFrame, outline_frame

__all__ = [
    "OutlinedFrame",
    "outline_frame",
    "Frame",
    "FrameBudgetExhausted",
    "FrameBuildError",
    "FrameExecutionError",
    "FrameExecutor",
    "FrameOp",
    "FrameResult",
    "Guard",
    "PsiOp",
    "UndoLog",
    "build_frame",
]
