"""Software frames (paper §V).

A frame packages an offload region (BL-path or Braid) as an *atomic*,
fully-speculative unit:

* in-region branches whose other side leaves the region become **guards** —
  asynchronous checks that decide, by frame end, whether speculation held;
* φ-nodes with a single remaining in-region predecessor **cancel** (their
  value is pinned by the chosen control flow — Table II:C6);
* φ-nodes at braid merge points become **ψ selects** driven by the merge's
  controlling predicate (non-speculative predication);
* every store is instrumented with an **undo-log** entry so externally
  visible state can be reverted on guard failure;
* all remaining operations are free to hoist above guards — the speculative
  dataflow graph keeps only store→store ordering.

The frame is accelerator-microarchitecture independent: it needs no store
buffers or hardware checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.cfg import CFG
from ..analysis.dfg import DataflowGraph
from ..analysis.dominators import DominatorTree
from ..ir.block import BasicBlock
from ..ir.instructions import (
    Branch,
    CondBranch,
    Instruction,
    Phi,
    Ret,
    Store,
)
from ..ir.values import Argument, Value
from ..regions.region import Region


@dataclass
class Guard:
    """A converted branch: speculation fails if the branch leaves the region.

    ``stay_targets`` are the successors that keep execution inside the
    region (for a BL-path, the single next path block); any other successor
    taken at runtime aborts the frame.
    """

    block: BasicBlock
    branch: CondBranch
    stay_targets: Tuple[BasicBlock, ...]
    position: int  # index into Frame.ops where the guard sits


@dataclass(eq=False)
class PsiOp:
    """A ψ (select) op replacing a multi-predecessor φ inside a braid."""

    phi: Phi
    predicate: Optional[Value]  # branch condition; None if not a simple diamond
    options: List[Tuple[BasicBlock, Value]]  # (incoming block, value)


@dataclass
class FrameOp:
    """One linearised frame operation."""

    kind: str  # "op" | "guard" | "psi" | "undo"
    inst: Optional[Instruction] = None
    guard: Optional[Guard] = None
    psi: Optional[PsiOp] = None

    @property
    def opcode(self) -> str:
        if self.kind == "op":
            return self.inst.opcode
        if self.kind == "psi":
            return "select"
        if self.kind == "undo":
            return "store"
        return "guard"


@dataclass
class Frame:
    """A software frame ready for accelerator mapping."""

    region: Region
    ops: List[FrameOp]
    guards: List[Guard]
    psis: List[PsiOp]
    live_ins: List[Value]
    live_outs: List[Value]
    cancelled_phis: int
    store_count: int
    #: mapping from original φ to its frame replacement (Value or PsiOp)
    phi_resolution: Dict[Phi, object] = field(default_factory=dict)

    # -- metrics -----------------------------------------------------------------

    @property
    def op_count(self) -> int:
        """All frame ops including guards, ψs and undo-log traffic."""
        return len(self.ops)

    @property
    def compute_op_count(self) -> int:
        return sum(1 for o in self.ops if o.kind in ("op", "psi"))

    @property
    def undo_log_ops(self) -> int:
        return sum(1 for o in self.ops if o.kind == "undo")

    @property
    def guard_count(self) -> int:
        return len(self.guards)

    @property
    def hoisted_op_count(self) -> int:
        """Operations positioned after the first guard — exactly the ops
        that speculation lets run before the guard outcome is known."""
        if not self.guards:
            return 0
        first = min(g.position for g in self.guards)
        return sum(
            1 for i, o in enumerate(self.ops) if i > first and o.kind != "guard"
        )

    def speculative_dfg(self) -> DataflowGraph:
        """Dependence DAG under frame semantics: loads hoist above stores
        (the undo log serialises store commit), guards only depend on their
        predicates."""
        insts = [o.inst for o in self.ops if o.kind == "op" and o.inst is not None]
        return DataflowGraph.build(insts, speculative_memory=True)

    def __repr__(self) -> str:
        return "<Frame %s: %d ops, %d guards, %d psis, %d live-in, %d live-out>" % (
            self.region.kind,
            self.op_count,
            self.guard_count,
            len(self.psis),
            len(self.live_ins),
            len(self.live_outs),
        )


class FrameBuildError(Exception):
    """The region cannot be framed (malformed path, cyclic braid...)."""


def build_frame(region: Region) -> Frame:
    """Lower an offload region into a software frame."""
    if not region.blocks:
        raise FrameBuildError("cannot frame an empty region")
    block_set = region.block_set
    is_path = region.kind in ("bl-path", "superblock", "expanded")
    order = list(region.blocks)

    # -- φ resolution ---------------------------------------------------------
    phi_resolution: Dict[Phi, object] = {}
    psis: List[PsiOp] = []
    cancelled = 0
    cfg = CFG(region.function)
    dom = DominatorTree.compute(cfg)

    prev_in_path: Dict[BasicBlock, Optional[BasicBlock]] = {}
    if is_path:
        prev_in_path[order[0]] = None
        for a, b in zip(order, order[1:]):
            prev_in_path[b] = a

    for block in order:
        for phi in block.phis:
            if block is region.entry:
                # entry φs are live-in parameters supplied by the host
                phi_resolution[phi] = "live-in"
                continue
            if is_path:
                pred = prev_in_path.get(block)
                val = phi.incoming_for(pred) if pred is not None else None
                if val is None:
                    raise FrameBuildError(
                        "path φ %%%s in %s lacks an incoming value from %s"
                        % (phi.name, block.name, pred.name if pred else "?")
                    )
                phi_resolution[phi] = val
                cancelled += 1
                continue
            in_region = [
                (blk, val) for blk, val in phi.incoming if blk in block_set
            ]
            if len(in_region) == 1:
                phi_resolution[phi] = in_region[0][1]
                cancelled += 1
            elif len(in_region) == 0:
                phi_resolution[phi] = "live-in"
            else:
                predicate = _diamond_predicate(block, in_region, dom, block_set)
                psi = PsiOp(phi=phi, predicate=predicate, options=in_region)
                phi_resolution[phi] = psi
                psis.append(psi)

    # -- live values ---------------------------------------------------------------
    live_ins = _frame_live_ins(region, phi_resolution)
    live_outs = _frame_live_outs(region)

    # -- linearise -------------------------------------------------------------------
    ops: List[FrameOp] = []
    guards: List[Guard] = []
    store_count = 0
    psis_emitted: Set[int] = set()

    for bi, block in enumerate(order):
        for phi in block.phis:
            res = phi_resolution.get(phi)
            if isinstance(res, PsiOp) and id(res) not in psis_emitted:
                psis_emitted.add(id(res))
                ops.append(FrameOp(kind="psi", psi=res))
        for inst in block.instructions:
            if isinstance(inst, Phi):
                continue
            if isinstance(inst, CondBranch):
                if block is order[-1]:
                    # The region's final branch picks where the host resumes;
                    # the frame has already completed, so it is not a guard.
                    continue
                if is_path:
                    nxt = order[bi + 1] if bi + 1 < len(order) else None
                    stay = tuple(s for s in inst.successors if s is nxt)
                else:
                    stay = tuple(s for s in inst.successors if s in block_set)
                if len(stay) == len(set(inst.successors)):
                    continue  # internal IF: handled by predication, not a guard
                guard = Guard(
                    block=block,
                    branch=inst,
                    stay_targets=stay,
                    position=len(ops),
                )
                guards.append(guard)
                ops.append(FrameOp(kind="guard", guard=guard))
                continue
            if isinstance(inst, (Branch, Ret)):
                continue
            ops.append(FrameOp(kind="op", inst=inst))
            if isinstance(inst, Store):
                store_count += 1
                # undo-log instrumentation: read the old value, log it
                ops.append(FrameOp(kind="undo", inst=inst))

    return Frame(
        region=region,
        ops=ops,
        guards=guards,
        psis=psis,
        live_ins=live_ins,
        live_outs=live_outs,
        cancelled_phis=cancelled,
        store_count=store_count,
        phi_resolution=phi_resolution,
    )


def _diamond_predicate(
    merge_block: BasicBlock,
    in_region,
    dom: DominatorTree,
    block_set,
) -> Optional[Value]:
    """Predicate controlling a 2-way merge: the conditional branch of the
    merge block's immediate dominator, when that branch is in-region."""
    if len(in_region) != 2:
        return None
    idom = dom.immediate_dominator(merge_block)
    if idom is None or idom not in block_set:
        return None
    term = idom.terminator
    if isinstance(term, CondBranch):
        return term.cond
    return None


def _frame_live_ins(region: Region, phi_resolution) -> List[Value]:
    """Values the host must hand the accelerator when invoking the frame.

    Entry-block φs count as one live-in each (their merged value); other
    live-ins are out-of-region SSA values and arguments used in-region.
    """
    block_set = region.block_set
    defined: Set[Value] = set()
    for b in region.blocks:
        for i in b.instructions:
            if not i.type.is_void:
                defined.add(i)

    live: List[Value] = []
    seen: Set[Value] = set()

    def note(v: Value) -> None:
        if isinstance(v, (Instruction, Argument)) and v not in defined and v not in seen:
            seen.add(v)
            live.append(v)

    for b in region.blocks:
        for inst in b.instructions:
            if isinstance(inst, Phi):
                res = phi_resolution.get(inst)
                if res == "live-in":
                    if inst not in seen:
                        seen.add(inst)
                        live.append(inst)
                continue
            for op in inst.operands:
                note(op)
    # φs resolved to values may reference out-of-region defs
    for phi, res in phi_resolution.items():
        if isinstance(res, Value):
            note(res)
        elif isinstance(res, PsiOp):
            for _, v in res.options:
                note(v)
    return live


def _frame_live_outs(region: Region) -> List[Value]:
    """In-region definitions the host needs after the frame completes.

    Two sources: (a) uses by instructions outside the region, and (b) values
    flowing into φs along the region's exit edges — including φs of blocks
    *inside* the region, which happens when a loop-iteration path exits over
    the back edge and the host re-enters through the header φs.
    """
    block_set = region.block_set
    defined: Set[Value] = set()
    for b in region.blocks:
        for i in b.instructions:
            if not i.type.is_void:
                defined.add(i)
    outs: List[Value] = []
    seen: Set[Value] = set()

    def note(v) -> None:
        if v in defined and v not in seen:
            seen.add(v)
            outs.append(v)

    for block in region.function.blocks:
        if block in block_set:
            continue
        for inst in block.instructions:
            operands = (
                [v for _, v in inst.incoming]
                if isinstance(inst, Phi)
                else inst.operands
            )
            for op in operands:
                note(op)
    # φ-incomings along exit edges (the host resumes through these φs)
    for src, dst in region.exit_edges():
        for phi in dst.phis:
            note(phi.incoming_for(src))
    # resume edges out of the final block: even a successor *inside* the
    # region (a back edge re-entering the header) is a host resume point
    if region.blocks:
        last = region.blocks[-1]
        for dst in last.successors:
            for phi in dst.phis:
                note(phi.incoming_for(last))
    return outs
