"""Deterministic fault injection: seeded plans consulted at named sites.

The paper's central correctness claim — frames are *atomic*, a failed
invocation leaves memory byte-for-byte untouched — is only worth stating
if it survives faults nobody scripted.  This module supplies those
faults on demand and, crucially, *reproducibly*: a :class:`FaultPlan` is
a seed plus a list of :class:`FaultSpec` rules, and every decision an
injector makes is a pure function of (plan, site, key, consult index,
attempt), so a chaos run replays identically under the same plan.

Sites follow the same cost discipline as :mod:`repro.obs`: production
code guards every consultation with ``if enabled():`` — one module-level
flag test — so the machinery is free when no plan is installed (the
default, measured by ``benchmarks/bench_obs_overhead.py``).

Typical use::

    from repro.resilience import FaultPlan, FaultSpec, installed
    from repro.resilience.faults import SITE_FRAME_GUARD_FLIP

    plan = FaultPlan(seed=7, specs=(
        FaultSpec(site=SITE_FRAME_GUARD_FLIP, after=2),
    ))
    with installed(plan):
        executor.run(frame, live_ins)   # third guard decision is flipped

Plans are plain frozen dataclasses: picklable (they ride to process-pool
workers next to the workload) and JSON round-trippable (the CLI loads
them with ``--fault-plan plan.json``).
"""

from __future__ import annotations

import hashlib
import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..obs import counter as _obs_counter, enabled as _obs_enabled

# -- named sites ------------------------------------------------------------

#: raise an exception inside a pool worker before it runs its workload
SITE_WORKER_EXCEPTION = "worker.exception"
#: stall a pool worker (payload ``seconds``, default 3600)
SITE_WORKER_HANG = "worker.hang"
#: hard-kill a pool worker via ``os._exit`` (payload ``exit_code``)
SITE_WORKER_CRASH = "worker.crash"
#: raise mid-frame, between blocks (key: block name)
SITE_FRAME_EXCEPTION = "frame.exception"
#: corrupt the value of a speculative store (payload ``value`` overrides)
SITE_FRAME_STORE_CORRUPT = "frame.store_corrupt"
#: invert one guard/branch decision inside a frame (key: block name)
SITE_FRAME_GUARD_FLIP = "frame.guard_flip"
#: raise at the interpreter run boundary (key: function name)
SITE_INTERP_RUN = "interp.exception"
#: truncate an artifact payload before it reaches disk (key: artifact kind)
SITE_CACHE_TRUNCATE = "cache.truncated_payload"
#: hard-kill the sweep driver as it appends a run-journal record (key:
#: journal event name; payload ``exit_code``, optional ``torn_bytes`` to
#: leave a partial line behind — the kill-mid-write case)
SITE_JOURNAL_CRASH = "journal.crash"

ALL_SITES = (
    SITE_WORKER_EXCEPTION,
    SITE_WORKER_HANG,
    SITE_WORKER_CRASH,
    SITE_FRAME_EXCEPTION,
    SITE_FRAME_STORE_CORRUPT,
    SITE_FRAME_GUARD_FLIP,
    SITE_INTERP_RUN,
    SITE_CACHE_TRUNCATE,
    SITE_JOURNAL_CRASH,
)


class FaultInjected(RuntimeError):
    """An injected fault fired at a consultation site."""


def _unit(seed: int, *parts) -> float:
    """Deterministic draw in [0, 1) from the seed and discriminator parts.

    Hash-based rather than ``random.Random`` so the value depends only on
    its inputs — never on how many draws other sites made first.  That is
    what keeps probabilistic plans identical across serial, ``jobs=N``
    and retried executions.
    """
    h = hashlib.sha256(
        ":".join([str(seed)] + [str(p) for p in parts]).encode()
    ).digest()
    return int.from_bytes(h[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    ``site``         which consultation point fires (``SITE_*`` constants).
    ``key``          exact consult key to match (``None`` = any key).
    ``after``        skip the first ``after`` matching consultations.
    ``times``        fire at most this many times (negative = unlimited).
    ``probability``  when set, each eligible consultation fires with this
                     seeded deterministic probability instead of always.
    ``attempts``     restrict firing to these retry attempts (0-based);
                     lets a plan crash attempt 0 and let the retry succeed.
    ``payload``      site-specific arguments (hang ``seconds``, crash
                     ``exit_code``, corrupt ``value``, truncate ``keep``).
    """

    site: str
    key: Optional[str] = None
    after: int = 0
    times: int = 1
    probability: Optional[float] = None
    attempts: Optional[Tuple[int, ...]] = None
    payload: Mapping = field(default_factory=dict)

    def __post_init__(self):
        if self.attempts is not None and not isinstance(self.attempts, tuple):
            object.__setattr__(self, "attempts", tuple(self.attempts))


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of injection rules."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    # -- JSON bridge (CLI --fault-plan) --------------------------------

    def to_dict(self) -> dict:
        specs = []
        for s in self.specs:
            d = {"site": s.site}
            if s.key is not None:
                d["key"] = s.key
            if s.after:
                d["after"] = s.after
            if s.times != 1:
                d["times"] = s.times
            if s.probability is not None:
                d["probability"] = s.probability
            if s.attempts is not None:
                d["attempts"] = list(s.attempts)
            if s.payload:
                d["payload"] = dict(s.payload)
            specs.append(d)
        return {"seed": self.seed, "specs": specs}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        specs = tuple(
            FaultSpec(
                site=s["site"],
                key=s.get("key"),
                after=int(s.get("after", 0)),
                times=int(s.get("times", 1)),
                probability=s.get("probability"),
                attempts=(
                    tuple(int(a) for a in s["attempts"])
                    if s.get("attempts") is not None
                    else None
                ),
                payload=dict(s.get("payload", {})),
            )
            for s in data.get("specs", ())
        )
        return cls(seed=int(data.get("seed", 0)), specs=specs)

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


class FaultInjector:
    """Stateful consultation engine for one plan.

    Holds per-spec consult/fire counters, so ``after``/``times`` windows
    advance as sites are visited.  One injector is installed per task
    attempt (pool workers build a fresh one, carrying the attempt
    number), which makes the fire pattern a function of the task alone.
    """

    def __init__(self, plan: FaultPlan, attempt: int = 0):
        self.plan = plan
        self.attempt = attempt
        self._consults: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}

    def consult(self, site: str, key: Optional[str] = None) -> Optional[FaultSpec]:
        """The spec that fires at this consultation, or ``None``."""
        for idx, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            if spec.key is not None and spec.key != key:
                continue
            if spec.attempts is not None and self.attempt not in spec.attempts:
                continue
            n = self._consults.get(idx, 0)
            self._consults[idx] = n + 1
            if n < spec.after:
                continue
            fired = self._fired.get(idx, 0)
            if spec.times >= 0 and fired >= spec.times:
                continue
            if spec.probability is not None and _unit(
                self.plan.seed, site, key, n, self.attempt
            ) >= spec.probability:
                continue
            self._fired[idx] = fired + 1
            if _obs_enabled():
                _obs_counter("resilience.faults_injected", 1,
                             help="faults fired by the installed plan",
                             site=site)
            return spec
        return None


def corrupt_value(value, spec: FaultSpec):
    """The corrupted replacement for a speculatively stored value."""
    if "value" in spec.payload:
        return spec.payload["value"]
    if isinstance(value, int):
        return value ^ 0x5A5A5A5A
    if isinstance(value, float):
        return -value - 1.0
    return value


# -- ambient installation ----------------------------------------------------
#
# Installation is *per thread*: each thread-pool worker installs the
# injector for its own task attempt without clobbering its neighbours
# (process workers each own a whole interpreter, so they get the same
# behaviour for free).  A process-wide count of installed injectors
# keeps the disabled-path cost at one integer test.

_TLS = threading.local()
_INSTALLED_COUNT = 0
_COUNT_LOCK = threading.Lock()


def enabled() -> bool:
    """Is a fault plan installed in *this* thread?

    The production answer is ``False``, and the global count test is the
    entire disabled-path cost: only when some thread has an injector do
    we pay the thread-local lookup.  (The count alone would be wrong —
    an abandoned hung worker keeps its injector until its sleep ends.)"""
    return _INSTALLED_COUNT > 0 and getattr(_TLS, "injector", None) is not None


def active() -> Optional[FaultInjector]:
    """The injector installed in the current thread, if any."""
    return getattr(_TLS, "injector", None)


def _set_active(inj: Optional[FaultInjector]) -> Optional[FaultInjector]:
    global _INSTALLED_COUNT
    old = getattr(_TLS, "injector", None)
    _TLS.injector = inj
    delta = (inj is not None) - (old is not None)
    if delta:
        with _COUNT_LOCK:
            _INSTALLED_COUNT += delta
    return inj


def install(plan: Optional[FaultPlan], attempt: int = 0) -> Optional[FaultInjector]:
    """Install a fresh injector for ``plan`` in this thread (``None`` clears)."""
    return _set_active(FaultInjector(plan, attempt) if plan is not None else None)


def uninstall() -> None:
    """Remove the current thread's installed injector."""
    _set_active(None)


def restore(inj: Optional[FaultInjector]) -> None:
    """Reinstate a previously :func:`active` injector (or ``None``).

    The fail-safe runner snapshots the ambient injector on entry and
    restores it on *every* exit path — a ``KeyboardInterrupt`` mid-sweep
    must not leave a task-scoped injector installed in the caller's
    thread."""
    _set_active(inj)


@contextmanager
def installed(plan: Optional[FaultPlan], attempt: int = 0):
    """Scope an injector to a ``with`` block, restoring the previous one."""
    old = active()
    install(plan, attempt)
    try:
        yield active()
    finally:
        _set_active(old)


def consult(site: str, key: Optional[str] = None) -> Optional[FaultSpec]:
    """Consult this thread's injector (``None`` when no plan is installed)."""
    inj = getattr(_TLS, "injector", None)
    if inj is None:
        return None
    return inj.consult(site, key)


__all__ = [
    "ALL_SITES",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "SITE_CACHE_TRUNCATE",
    "SITE_FRAME_EXCEPTION",
    "SITE_FRAME_GUARD_FLIP",
    "SITE_FRAME_STORE_CORRUPT",
    "SITE_INTERP_RUN",
    "SITE_JOURNAL_CRASH",
    "SITE_WORKER_CRASH",
    "SITE_WORKER_EXCEPTION",
    "SITE_WORKER_HANG",
    "active",
    "consult",
    "corrupt_value",
    "enabled",
    "install",
    "installed",
    "restore",
    "uninstall",
]
