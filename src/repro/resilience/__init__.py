"""Resilience subsystem: deterministic fault injection + fail-safe sweeps.

Two halves, designed to be used together:

* :mod:`repro.resilience.faults` — a seeded :class:`FaultPlan` consulted
  at named sites inside the frame executor, interpreter, artifact cache
  and pool workers.  Zero-cost when disabled (one flag test per site,
  same discipline as :mod:`repro.obs`); byte-reproducible when enabled.
* :mod:`repro.resilience.runner` — :func:`run_failsafe`, the pool
  fan-out with per-task timeouts, seeded-backoff retries,
  ``BrokenProcessPool`` recovery and quarantine, returning partial
  results plus :class:`WorkloadFailure` records instead of crashing.

See ``docs/resilience.md`` for the site list, retry policy and the
chaos-testing workflow.
"""

from .faults import (
    ALL_SITES,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active,
    consult,
    corrupt_value,
    enabled,
    install,
    installed,
    uninstall,
)
from .runner import (
    FailurePolicy,
    WorkloadExecutionError,
    WorkloadFailure,
    run_failsafe,
    split_failures,
)

__all__ = [
    "ALL_SITES",
    "FailurePolicy",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "WorkloadExecutionError",
    "WorkloadFailure",
    "active",
    "consult",
    "corrupt_value",
    "enabled",
    "install",
    "installed",
    "run_failsafe",
    "split_failures",
    "uninstall",
]
