"""Resilience subsystem: fault injection, fail-safe sweeps, durability.

Four pieces, designed to be used together:

* :mod:`repro.resilience.faults` — a seeded :class:`FaultPlan` consulted
  at named sites inside the frame executor, interpreter, artifact cache,
  pool workers and run journal.  Zero-cost when disabled (one flag test
  per site, same discipline as :mod:`repro.obs`); byte-reproducible when
  enabled.
* :mod:`repro.resilience.runner` — :func:`run_failsafe`, the pool
  fan-out with per-task timeouts, seeded-backoff retries,
  ``BrokenProcessPool`` recovery, quarantine and a sweep-level circuit
  breaker, returning partial results plus :class:`WorkloadFailure`
  records instead of crashing.
* :mod:`repro.resilience.journal` — :class:`RunJournal`, the
  write-ahead run journal that makes a sweep crash-safe: every
  completed workload is durable the moment it lands, and
  ``repro evaluate --resume <run-id>`` merges back to a state
  byte-identical to an uninterrupted run.
* :mod:`repro.resilience.shutdown` — SIGINT/SIGTERM drain handling:
  :class:`SweepDrained`, :class:`DrainController`, and the
  :data:`EXIT_DRAINED` exit code.

See ``docs/resilience.md`` for the site list, retry policy, the
chaos-testing workflow, and the checkpoint/resume + graceful-shutdown
contracts.
"""

from .faults import (
    ALL_SITES,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active,
    consult,
    corrupt_value,
    enabled,
    install,
    installed,
    restore,
    uninstall,
)
from .journal import (
    JOURNAL_FORMAT_VERSION,
    JournalError,
    JournalMismatch,
    JournalReplay,
    RunJournal,
    new_run_id,
    resolve_journal_dir,
    sweep_fingerprint,
)
from .runner import (
    FailurePolicy,
    WorkloadExecutionError,
    WorkloadFailure,
    run_failsafe,
    split_failures,
)
from .shutdown import (
    EXIT_DRAINED,
    DrainController,
    SweepDrained,
    drain_on_signals,
)

__all__ = [
    "ALL_SITES",
    "EXIT_DRAINED",
    "DrainController",
    "FailurePolicy",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "JOURNAL_FORMAT_VERSION",
    "JournalError",
    "JournalMismatch",
    "JournalReplay",
    "RunJournal",
    "SweepDrained",
    "WorkloadExecutionError",
    "WorkloadFailure",
    "active",
    "consult",
    "corrupt_value",
    "drain_on_signals",
    "enabled",
    "install",
    "installed",
    "new_run_id",
    "resolve_journal_dir",
    "restore",
    "run_failsafe",
    "split_failures",
    "sweep_fingerprint",
    "uninstall",
]
