"""Fail-safe suite execution: the pool fan-out that survives its workers.

A bare pool is brittle in exactly the ways a long suite sweep cannot
afford: one worker exception unwinds the whole run, one hung workload
stalls it forever, and one hard-killed child used to break the whole
``ProcessPoolExecutor`` and poison every in-flight future.
:func:`run_failsafe` wraps the fan-out so the sweep *always completes*:

* **per-task timeouts** — a task past its deadline is charged a
  ``timeout`` failure and *only its* worker is evicted (killed or
  abandoned) and replaced; other in-flight tasks keep running;
* **bounded retries** — each failed attempt backs off exponentially
  with deterministic seeded jitter before the task runs again;
* **crash blame** — pool workers announce each task before executing
  it, so when one dies the backend knows exactly which task it was
  running and charges a ``crash`` to that task alone (named in the
  log); the one-at-a-time "careful mode" survives only as the fallback
  for :class:`~repro.exec.PoolBroken` — a backend failure with no task
  to blame — and is counted via ``resilience.careful_mode_entries``;
* **quarantine** — a task that exhausts its retries is replaced in the
  result list by a structured :class:`WorkloadFailure` record, and the
  sweep moves on.

Where tasks run is the caller's choice: the runner drives any
:class:`repro.exec.Pool` (``pool="serial" | "process" | "thread"``, a
backend name or an instance) with identical retry/quarantine/blame
semantics — the serial backend simply has no preemption, so deadlines
are not enforced there (a thread cannot interrupt itself).

Blame is only ever assigned on evidence (an exception from the task
itself, its own missed deadline, or a worker found dead beneath it),
which is what makes the final record set a deterministic function of
the workloads and the installed :class:`~repro.resilience.faults.FaultPlan`
— rerunning a chaos scenario with the same seed reproduces the same
outcome, byte for byte.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..exec.pools import Pool, PoolBroken, WorkerCrashed, make_pool
from ..obs import events as bus
from . import faults as _faults
from .faults import FaultPlan, _unit
from .shutdown import DrainController, SweepDrained

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class FailurePolicy:
    """How the runner reacts when a task misbehaves.

    ``timeout``       per-attempt wall-clock budget in seconds (``None``
                      = unlimited; preemptive pools only — a serial run
                      cannot interrupt its own thread).
    ``retries``       failed attempts retried before quarantine, so a
                      task runs at most ``retries + 1`` times.
    ``backoff_base``  first-retry delay; doubles per attempt.
    ``backoff_cap``   upper bound on any single delay.
    ``fail_fast``     propagate the first failure as
                      :class:`WorkloadExecutionError` instead of
                      retrying/quarantining (the pre-resilience crash
                      behaviour, now with the workload name attached).
    ``seed``          jitter seed; chaos runs reuse the fault plan's.
    ``max_total_failures``        circuit breaker: trip after this many
                      failed attempts across the whole sweep (``None``
                      = never) — a doomed suite aborts instead of
                      grinding through every retry budget.
    ``max_consecutive_failures``  trip after this many failed attempts
                      with no success in between (a success resets the
                      streak).  Tripping quarantines all outstanding
                      work as ``kind="aborted"`` records and journals
                      the abort when a run journal is attached.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    fail_fast: bool = False
    seed: int = 0
    max_total_failures: Optional[int] = None
    max_consecutive_failures: Optional[int] = None

    def breaker_reason(self, total: int, consecutive: int) -> Optional[str]:
        """Why the circuit breaker trips at these counts (``None`` = no)."""
        if self.max_total_failures is not None and \
                total >= self.max_total_failures:
            return "max_total_failures=%d reached" % self.max_total_failures
        if self.max_consecutive_failures is not None and \
                consecutive >= self.max_consecutive_failures:
            return ("max_consecutive_failures=%d reached"
                    % self.max_consecutive_failures)
        return None

    def backoff(self, failed_attempts: int, key: str) -> float:
        """Delay before the next attempt of ``key`` (deterministic)."""
        if self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_cap, self.backoff_base * (2 ** max(0, failed_attempts - 1)))
        # +-25% seeded jitter de-synchronises retry herds without
        # sacrificing replayability
        return delay * (0.75 + 0.5 * _unit(self.seed, "backoff", key, failed_attempts))


@dataclass
class WorkloadFailure:
    """Structured record of a task that exhausted its failure budget.

    Appears in suite results *in place of* the evaluation it failed to
    produce, so ``zip(workloads, results)`` stays aligned.  Fields are
    deliberately wall-clock-free: the record of a seeded chaos run is
    bit-identical across reruns — and across pool backends, which all
    normalise a dead worker to the same :class:`WorkerCrashed` error.
    """

    workload: str
    kind: str  #: ``exception`` | ``timeout`` | ``crash`` | ``aborted``
    attempts: int
    error_type: str = ""
    error: str = ""

    @property
    def name(self) -> str:
        return self.workload

    @property
    def ok(self) -> bool:
        return False


class WorkloadExecutionError(RuntimeError):
    """A task failure surfaced under ``fail_fast`` (names its workload)."""

    def __init__(self, workload: str, kind: str):
        super().__init__("workload %r failed (%s)" % (workload, kind))
        self.workload = workload
        self.kind = kind


def split_failures(results: Sequence) -> Tuple[list, List[WorkloadFailure]]:
    """Partition mixed suite results into (successes, failures)."""
    good, bad = [], []
    for r in results:
        (bad if isinstance(r, WorkloadFailure) else good).append(r)
    return good, bad


class _Task:
    """Mutable per-item scheduling state."""

    __slots__ = ("index", "item", "key", "attempt", "ticket", "not_before")

    def __init__(self, index, item, key):
        self.index = index
        self.item = item
        self.key = key
        self.attempt = 0  #: failed attempts so far
        self.ticket = None  #: pool ticket while in flight
        self.not_before = 0.0


def _default_key(item) -> str:
    return getattr(item, "name", str(item))


def run_failsafe(
    task: Callable,
    items: Sequence,
    *,
    jobs: Optional[int] = None,
    pool=None,
    policy: Optional[FailurePolicy] = None,
    task_args: tuple = (),
    plan: Optional[FaultPlan] = None,
    key_fn: Callable = _default_key,
    on_result: Optional[Callable] = None,
    on_event: Optional[Callable] = None,
    drain: Optional[DrainController] = None,
    heartbeat: Optional[float] = None,
    stall_after: Optional[float] = None,
) -> List:
    """Run ``task(item, *task_args, plan, attempt)`` for every item.

    ``pool`` selects where tasks run: a backend name from
    :data:`repro.exec.POOL_BACKENDS`, an already-built
    :class:`repro.exec.Pool` instance, or ``None`` for the historical
    default (warm worker processes, ``jobs`` wide).  ``task`` must be a
    module-level callable for the process backend (it is pickled by
    reference); the serial and thread backends accept any callable.

    Returns one entry per item, in item order: the task's return value,
    or a :class:`WorkloadFailure`.  ``on_result`` fires as each success
    lands — before any later failure can abort the sweep — so callers
    can fold in side data (obs snapshots) without losing the work
    already done.

    ``on_event(event, key, **data)`` receives lifecycle notifications —
    ``attempt_started`` (at submission, so a journal records intent
    before execution; at-least-once under careful-mode resubmission),
    ``quarantined`` and ``circuit_open``.  ``drain`` attaches a
    :class:`~repro.resilience.shutdown.DrainController`: once a drain is
    requested, no new work is submitted and the runner waits (bounded by
    the controller's timeout) for in-flight tasks, then raises
    :class:`~repro.resilience.shutdown.SweepDrained` listing the
    outstanding keys.  On every exit path — clean, drained, interrupted
    — the pool is closed and the caller thread's ambient fault injector
    is restored.

    ``heartbeat`` (seconds) turns on worker heartbeats where the
    backend supports them (preemptive pools): each worker reports its
    running (task, phase, elapsed) on that period, surfaced as
    ``worker_heartbeat`` events on the ambient event bus.  A worker
    silent for longer than ``stall_after`` seconds (default 5x the
    heartbeat period) is flagged once per attempt with a
    ``worker_stalled`` event and an ``obs.worker_stalled`` counter —
    advisory visibility that *complements* the hang-deadline eviction
    above, never replaces it.  All of it is wall-clock telemetry with
    no influence on scheduling, retries or results.
    """
    items = list(items)
    policy = policy or FailurePolicy()
    results: List[object] = [None] * len(items)
    tasks = [_Task(i, item, key_fn(item)) for i, item in enumerate(items)]
    incomplete = {t.index: t for t in tasks}

    emit = on_event if on_event is not None else (lambda event, key, **d: None)

    if isinstance(pool, Pool):
        backend = pool
    else:
        width = max(1, min(jobs if jobs is not None else 1, max(1, len(items))))
        backend = make_pool(pool if pool is not None else "process", jobs=width)

    pending: Dict[int, _Task] = {}  # ticket -> task
    careful = False  # one-at-a-time after an unattributable pool failure
    total_failures = 0
    consecutive_failures = 0
    trip_reason: Optional[str] = None
    draining = False
    drain_started = drain_deadline = 0.0

    def enter_careful(why: BaseException) -> None:
        nonlocal careful
        for t in pending.values():
            t.ticket = None
        pending.clear()
        try:
            backend.reset()
        except Exception:
            pass
        if obs.enabled():
            obs.counter("resilience.careful_mode_entries", 1,
                        help="pool failures with no task to blame; "
                             "outstanding work rerun one task at a time")
        log.warning(
            "pool %r broke with no task to blame (%s); entering careful "
            "mode: %d outstanding task(s) rerun one at a time",
            backend.name, why, len(incomplete))
        careful = True

    def charge(t: _Task, kind: str, exc: Optional[BaseException]) -> None:
        """One failed attempt for ``t``: retry with backoff or quarantine."""
        nonlocal total_failures, consecutive_failures, trip_reason
        t.attempt += 1
        t.ticket = None
        total_failures += 1
        consecutive_failures += 1
        if policy.fail_fast:
            raise WorkloadExecutionError(t.key, kind) from exc
        if t.attempt > policy.retries:
            results[t.index] = WorkloadFailure(
                workload=t.key,
                kind=kind,
                attempts=t.attempt,
                error_type=type(exc).__name__ if exc is not None else "",
                error=str(exc) if exc is not None else "",
            )
            del incomplete[t.index]
            emit("quarantined", t.key, kind=kind, attempts=t.attempt,
                 error_type=type(exc).__name__ if exc is not None else "")
            bus.publish(bus.QUARANTINED, t.key, kind=kind,
                        attempts=t.attempt)
            if obs.enabled():
                obs.counter("resilience.quarantined", 1,
                            help="tasks that exhausted their retry budget",
                            kind=kind)
        else:
            t.not_before = time.monotonic() + policy.backoff(t.attempt, t.key)
            bus.publish(bus.RETRY, t.key, kind=kind, attempt=t.attempt)
            if obs.enabled():
                obs.counter("resilience.retries", 1,
                            help="failed attempts scheduled for retry",
                            kind=kind)
        if trip_reason is None:
            trip_reason = policy.breaker_reason(
                total_failures, consecutive_failures)

    deadlines = policy.timeout is not None and backend.preemptive

    # -- live telemetry (advisory; publish() no-ops without a bus) ---------
    beats_on = bool(heartbeat) and backend.preemptive \
        and hasattr(backend, "set_heartbeat")
    if beats_on:
        backend.set_heartbeat(heartbeat)
        beats_on = backend.heartbeat_period is not None
    stall_deadline = None
    if beats_on:
        stall_deadline = (float(stall_after) if stall_after
                          else 5.0 * float(heartbeat))
    started_pub: set = set()   # tickets whose task_started went out
    last_beats: Dict[int, float] = {}
    stalled: set = set()

    def fold_telemetry(now: float) -> None:
        """Publish task_started / worker_heartbeat / worker_stalled."""
        running = backend.running()
        for ticket, started in running.items():
            t = pending.get(ticket)
            if t is None or ticket in started_pub:
                continue
            started_pub.add(ticket)
            bus.publish(bus.TASK_STARTED, t.key, attempt=t.attempt + 1)
        if not beats_on:
            return
        hb = backend.heartbeats()
        for ticket, (seen, payload, worker_name) in hb.items():
            t = pending.get(ticket)
            if t is None:
                continue
            if last_beats.get(ticket) != seen:
                last_beats[ticket] = seen
                stalled.discard(ticket)  # a fresh beat clears the flag
                bus.publish(
                    bus.WORKER_HEARTBEAT, t.key, worker=worker_name,
                    task=t.key, phase=payload.get("phase", "run"),
                    elapsed=payload.get("elapsed", 0.0))
        for ticket, started in running.items():
            t = pending.get(ticket)
            if t is None or ticket in stalled:
                continue
            last = max(last_beats.get(ticket, started), started)
            silent = now - last
            if silent > stall_deadline:
                stalled.add(ticket)
                worker_name = hb[ticket][2] if ticket in hb else ""
                bus.publish(bus.WORKER_STALLED, t.key, worker=worker_name,
                            silent_for=round(silent, 3),
                            attempt=t.attempt + 1)
                if obs.enabled():
                    obs.counter("obs.worker_stalled", 1,
                                help="workers silent past the heartbeat "
                                     "stall threshold (advisory)")
                log.warning(
                    "worker %s silent for %.1fs under task %r "
                    "(heartbeat %.3gs, stall threshold %.3gs)",
                    worker_name or "?", silent, t.key,
                    backend.heartbeat_period, stall_deadline)

    def drop_telemetry(ticket: int) -> None:
        started_pub.discard(ticket)
        last_beats.pop(ticket, None)
        stalled.discard(ticket)

    ambient = _faults.active()
    backend.start()
    try:
        while incomplete:
            now = time.monotonic()

            if drain is not None and not draining and drain.requested():
                draining = True
                drain_started = now
                drain_deadline = now + drain.timeout
                log.warning(
                    "shutdown requested: draining %d in-flight task(s) "
                    "(%d outstanding, %.1fs deadline)",
                    len(pending), len(incomplete), drain.timeout)

            if trip_reason is not None:
                break
            if draining and (not pending or now >= drain_deadline):
                break

            # submit eligible tasks in deterministic index order; careful
            # mode keeps exactly one in flight; a draining sweep submits
            # nothing more (retries included)
            try:
                if not draining:
                    for t in sorted(incomplete.values(), key=lambda t: t.index):
                        if t.ticket is not None or t.not_before > now:
                            continue
                        if careful and pending:
                            break
                        emit("attempt_started", t.key, attempt=t.attempt)
                        bus.publish(bus.TASK_SCHEDULED, t.key,
                                    attempt=t.attempt + 1)
                        t.ticket = backend.submit(
                            task,
                            (t.item,) + tuple(task_args) + (plan, t.attempt),
                            key=t.key)
                        pending[t.ticket] = t
                        if careful:
                            break
            except PoolBroken as exc:
                enter_careful(exc)
                continue

            if not pending:
                if draining:
                    continue  # only backed-off retries left: drain now
                # everyone is backing off; sleep until the earliest retry
                wake = min(
                    t.not_before for t in incomplete.values() if t.ticket is None
                )
                delay = max(0.0, min(wake - now, policy.backoff_cap))
                if drain is not None:
                    # stay responsive to a drain request during backoff
                    delay = min(delay, 0.2)
                time.sleep(delay)
                continue

            horizon = []
            if deadlines:
                horizon += [
                    started + policy.timeout
                    for ticket, started in backend.running().items()
                    if ticket in pending
                ]
            horizon += [
                t.not_before
                for t in incomplete.values()
                if t.ticket is None and t.not_before > now
            ]
            wait_for = max(0.01, min(horizon) - now) if horizon else None
            if beats_on:
                # wake at least once per beat period so heartbeats fold
                # and stalls surface even when nothing completes
                period = backend.heartbeat_period
                wait_for = period if wait_for is None \
                    else min(wait_for, period)
            if drain is not None:
                # blocking waits are PEP 475-restarted after a signal
                # handler returns, so an unbounded wait would never
                # notice the drain flag; poll instead
                wait_for = 0.25 if wait_for is None else min(wait_for, 0.25)
                if draining:
                    wait_for = max(0.01, min(wait_for, drain_deadline - now))
            try:
                completions = backend.wait(wait_for)
            except PoolBroken as exc:
                enter_careful(exc)
                continue
            now = time.monotonic()
            if bus.active() is not None:
                fold_telemetry(now)

            if not completions:
                if not deadlines:
                    continue
                expired = [
                    pending[ticket]
                    for ticket, started in backend.running().items()
                    if ticket in pending and started + policy.timeout <= now
                ]
                if expired:
                    if obs.enabled():
                        obs.counter("resilience.timeouts", len(expired),
                                    help="attempts that exceeded the per-task "
                                         "deadline")
                    for t in expired:
                        ticket, t.ticket = t.ticket, None
                        pending.pop(ticket, None)
                        drop_telemetry(ticket)
                        # only the wedged task's worker dies; its queued
                        # neighbours are requeued by the pool, uncharged
                        backend.evict(ticket)
                        log.warning(
                            "task %r exceeded its %.3gs deadline "
                            "(attempt %d); worker evicted",
                            t.key, policy.timeout, t.attempt)
                        charge(t, "timeout", None)
                continue

            for c in completions:
                t = pending.pop(c.ticket, None)
                if t is None:
                    continue  # stale: lost a race with a timeout charge
                t.ticket = None
                drop_telemetry(c.ticket)
                if c.error is None:
                    results[t.index] = c.result
                    del incomplete[t.index]
                    consecutive_failures = 0
                    if on_result is not None:
                        on_result(t.item, results[t.index])
                    bus.publish(bus.TASK_FINISHED, t.key, ok=True,
                                attempts=t.attempt + 1, worker=c.worker)
                elif isinstance(c.error, WorkerCrashed):
                    log.warning(
                        "worker crash blamed on workload %r "
                        "(attempt %d, %s)", t.key, t.attempt, c.error)
                    charge(t, "crash", c.error)
                else:
                    charge(t, "exception", c.error)

        if trip_reason is not None and incomplete:
            outstanding = sorted(t.key for t in incomplete.values())
            log.error(
                "circuit breaker tripped (%s): aborting %d outstanding "
                "task(s)", trip_reason, len(outstanding))
            if obs.enabled():
                obs.counter("resilience.circuit_breaker_trips", 1,
                            help="sweeps aborted by the failure circuit "
                                 "breaker")
            emit("circuit_open", "", reason=trip_reason,
                 outstanding=outstanding)
            for t in list(incomplete.values()):
                results[t.index] = WorkloadFailure(
                    workload=t.key, kind="aborted", attempts=t.attempt,
                    error_type="CircuitBreaker", error=trip_reason)
                del incomplete[t.index]
        elif draining and incomplete:
            drain_seconds = time.monotonic() - drain_started
            if obs.enabled():
                obs.gauge("resilience.drain_seconds", drain_seconds,
                          help="wall time spent draining in-flight tasks "
                               "after a shutdown request")
            raise SweepDrained(
                outstanding=sorted(t.key for t in incomplete.values()),
                completed=len(items) - len(incomplete),
                drain_seconds=drain_seconds)
    finally:
        # every exit path — clean, drained, fail_fast, KeyboardInterrupt —
        # restores the caller's ambient fault injector and closes the pool
        if _faults.active() is not ambient:
            _faults.restore(ambient)
        try:
            backend.close(graceful=not pending)
        except BaseException:
            log.debug("pool close failed during teardown", exc_info=True)

    return results


__all__ = [
    "FailurePolicy",
    "WorkloadExecutionError",
    "WorkloadFailure",
    "run_failsafe",
    "split_failures",
]
