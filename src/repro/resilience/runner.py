"""Fail-safe suite execution: the pool fan-out that survives its workers.

``ProcessPoolExecutor`` alone is brittle in exactly the ways a long
suite sweep cannot afford: one worker exception unwinds the whole run,
one hung workload stalls it forever, and one hard-killed child breaks
the pool and poisons every in-flight future with ``BrokenProcessPool``.
:func:`run_failsafe` wraps the fan-out so the sweep *always completes*:

* **per-task timeouts** — a task past its deadline is charged a
  ``timeout`` failure; the wedged worker's pool is killed and respawned,
  and the other in-flight tasks are resubmitted without charge;
* **bounded retries** — each failed attempt backs off exponentially
  with deterministic seeded jitter before the task runs again;
* **pool-crash recovery** — on ``BrokenProcessPool`` the pool is
  respawned and incomplete tasks rerun *one at a time* ("careful
  mode"), so the next crash unambiguously blames its task instead of
  charging innocent neighbours;
* **quarantine** — a task that exhausts its retries is replaced in the
  result list by a structured :class:`WorkloadFailure` record, and the
  sweep moves on.

Blame is only ever assigned on evidence (an exception from the task's
own future, its own missed deadline, or a crash while running alone),
which is what makes the final record set a deterministic function of
the workloads and the installed :class:`~repro.resilience.faults.FaultPlan`
— rerunning a chaos scenario with the same seed reproduces the same
outcome, byte for byte.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .. import obs
from .faults import FaultPlan, _unit


@dataclass(frozen=True)
class FailurePolicy:
    """How the runner reacts when a task misbehaves.

    ``timeout``       per-attempt wall-clock budget in seconds (``None``
                      = unlimited; pool mode only — a serial run cannot
                      interrupt its own thread).
    ``retries``       failed attempts retried before quarantine, so a
                      task runs at most ``retries + 1`` times.
    ``backoff_base``  first-retry delay; doubles per attempt.
    ``backoff_cap``   upper bound on any single delay.
    ``fail_fast``     propagate the first failure as
                      :class:`WorkloadExecutionError` instead of
                      retrying/quarantining (the pre-resilience crash
                      behaviour, now with the workload name attached).
    ``seed``          jitter seed; chaos runs reuse the fault plan's.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    fail_fast: bool = False
    seed: int = 0

    def backoff(self, failed_attempts: int, key: str) -> float:
        """Delay before the next attempt of ``key`` (deterministic)."""
        if self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_cap, self.backoff_base * (2 ** max(0, failed_attempts - 1)))
        # +-25% seeded jitter de-synchronises retry herds without
        # sacrificing replayability
        return delay * (0.75 + 0.5 * _unit(self.seed, "backoff", key, failed_attempts))


@dataclass
class WorkloadFailure:
    """Structured record of a task that exhausted its failure budget.

    Appears in suite results *in place of* the evaluation it failed to
    produce, so ``zip(workloads, results)`` stays aligned.  Fields are
    deliberately wall-clock-free: the record of a seeded chaos run is
    bit-identical across reruns.
    """

    workload: str
    kind: str  #: ``exception`` | ``timeout`` | ``crash``
    attempts: int
    error_type: str = ""
    error: str = ""

    @property
    def name(self) -> str:
        return self.workload

    @property
    def ok(self) -> bool:
        return False


class WorkloadExecutionError(RuntimeError):
    """A task failure surfaced under ``fail_fast`` (names its workload)."""

    def __init__(self, workload: str, kind: str):
        super().__init__("workload %r failed (%s)" % (workload, kind))
        self.workload = workload
        self.kind = kind


def split_failures(results: Sequence) -> Tuple[list, List[WorkloadFailure]]:
    """Partition mixed suite results into (successes, failures)."""
    good, bad = [], []
    for r in results:
        (bad if isinstance(r, WorkloadFailure) else good).append(r)
    return good, bad


class _Task:
    """Mutable per-item scheduling state."""

    __slots__ = ("index", "item", "key", "attempt", "future", "deadline",
                 "not_before")

    def __init__(self, index, item, key):
        self.index = index
        self.item = item
        self.key = key
        self.attempt = 0  #: failed attempts so far
        self.future = None
        self.deadline = None
        self.not_before = 0.0


def _default_key(item) -> str:
    return getattr(item, "name", str(item))


def run_failsafe(
    task: Callable,
    items: Sequence,
    *,
    jobs: int,
    policy: Optional[FailurePolicy] = None,
    task_args: tuple = (),
    plan: Optional[FaultPlan] = None,
    key_fn: Callable = _default_key,
    on_result: Optional[Callable] = None,
) -> List:
    """Run ``task(item, *task_args, plan, attempt)`` for every item.

    ``task`` must be a module-level callable (pickled by reference into
    pool workers).  Returns one entry per item, in item order: the
    task's return value, or a :class:`WorkloadFailure`.  ``on_result``
    fires as each success lands — before any later failure can abort
    the sweep — so callers can fold in side data (obs snapshots)
    without losing the work already done.
    """
    items = list(items)
    policy = policy or FailurePolicy()
    results: List[object] = [None] * len(items)
    tasks = [_Task(i, item, key_fn(item)) for i, item in enumerate(items)]
    incomplete = {t.index: t for t in tasks}
    max_workers = max(1, min(jobs, len(items)))

    pool: Optional[ProcessPoolExecutor] = None
    pending = {}  # future -> _Task
    careful = False  # one-at-a-time after a crash: accurate blame
    spawned = 0

    def spawn() -> ProcessPoolExecutor:
        nonlocal spawned
        spawned += 1
        if spawned > 1 and obs.enabled():
            obs.counter("resilience.pool_respawns", 1,
                        help="process pools respawned after crash/hang")
        return ProcessPoolExecutor(max_workers=1 if careful else max_workers)

    def teardown(graceful: bool) -> None:
        nonlocal pool
        if pool is None:
            return
        if not graceful:
            # a wedged or hard-killed child never drains the call queue;
            # kill the children outright before abandoning the pool
            # (private attr, guarded — worst case we leak until exit)
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.kill()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=graceful, cancel_futures=True)
        except Exception:
            pass
        pool = None

    def release_pending() -> None:
        """Return every in-flight task to the submit queue, uncharged."""
        for t in pending.values():
            t.future = None
            t.deadline = None
        pending.clear()

    def charge(t: _Task, kind: str, exc: Optional[BaseException]) -> None:
        """One failed attempt for ``t``: retry with backoff or quarantine."""
        t.attempt += 1
        t.future = None
        t.deadline = None
        if policy.fail_fast:
            teardown(graceful=False)
            raise WorkloadExecutionError(t.key, kind) from exc
        if t.attempt > policy.retries:
            results[t.index] = WorkloadFailure(
                workload=t.key,
                kind=kind,
                attempts=t.attempt,
                error_type=type(exc).__name__ if exc is not None else "",
                error=str(exc) if exc is not None else "",
            )
            del incomplete[t.index]
            if obs.enabled():
                obs.counter("resilience.quarantined", 1,
                            help="tasks that exhausted their retry budget",
                            kind=kind)
        else:
            t.not_before = time.monotonic() + policy.backoff(t.attempt, t.key)
            if obs.enabled():
                obs.counter("resilience.retries", 1,
                            help="failed attempts scheduled for retry",
                            kind=kind)

    try:
        while incomplete:
            if pool is None:
                pool = spawn()
            now = time.monotonic()

            # submit eligible tasks in deterministic index order; careful
            # mode keeps exactly one in flight
            try:
                for t in sorted(incomplete.values(), key=lambda t: t.index):
                    if t.future is not None or t.not_before > now:
                        continue
                    if careful and pending:
                        break
                    t.future = pool.submit(task, t.item, *task_args, plan, t.attempt)
                    t.deadline = (
                        now + policy.timeout if policy.timeout is not None else None
                    )
                    pending[t.future] = t
                    if careful:
                        break
            except BrokenProcessPool:
                release_pending()
                teardown(graceful=False)
                careful = True
                continue

            if not pending:
                # everyone is backing off; sleep until the earliest retry
                wake = min(
                    t.not_before for t in incomplete.values() if t.future is None
                )
                time.sleep(max(0.0, min(wake - now, policy.backoff_cap)))
                continue

            horizon = [t.deadline for t in pending.values() if t.deadline is not None]
            horizon += [
                t.not_before
                for t in incomplete.values()
                if t.future is None and t.not_before > now
            ]
            wait_for = max(0.01, min(horizon) - now) if horizon else None
            done, _ = wait(list(pending), timeout=wait_for,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()

            if not done:
                expired = [
                    t for t in pending.values()
                    if t.deadline is not None and t.deadline <= now
                ]
                if expired:
                    if obs.enabled():
                        obs.counter("resilience.timeouts", len(expired),
                                    help="attempts that exceeded the per-task "
                                         "deadline")
                    # the expired tasks' workers are wedged; the whole pool
                    # goes with them, and the other in-flight tasks rerun
                    # without charge
                    release_pending()
                    teardown(graceful=False)
                    for t in expired:
                        charge(t, "timeout", None)
                continue

            broke = False
            for f in done:
                t = pending.pop(f)
                exc = f.exception()
                if exc is None:
                    results[t.index] = f.result()
                    del incomplete[t.index]
                    t.future = None
                    if on_result is not None:
                        on_result(t.item, results[t.index])
                elif isinstance(exc, BrokenProcessPool):
                    broke = True
                    if careful:
                        # one task in flight: the blame is unambiguous
                        charge(t, "crash", exc)
                    else:
                        t.future = None  # innocent until run alone
                        t.deadline = None
                else:
                    charge(t, "exception", exc)
            if broke:
                release_pending()
                teardown(graceful=False)
                careful = True
    finally:
        teardown(graceful=not pending)

    return results


__all__ = [
    "FailurePolicy",
    "WorkloadExecutionError",
    "WorkloadFailure",
    "run_failsafe",
    "split_failures",
]
