"""Graceful shutdown: drain a sweep on SIGINT/SIGTERM instead of dying.

A journaled sweep installs a :class:`DrainController` and wraps itself
in :func:`drain_on_signals`.  The first SIGINT/SIGTERM does *not*
unwind the stack — it flips the controller, and the fail-safe runner
reacts at its next scheduling step: stop submitting work, wait (bounded
by the drain timeout) for in-flight tasks to land and be journaled,
then raise :class:`SweepDrained`.  The pipeline journals the abort, the
CLI prints the resume command and exits with :data:`EXIT_DRAINED`.  A
second signal means "now": it raises ``KeyboardInterrupt`` immediately,
the historical behaviour.

:class:`SweepDrained` subclasses ``KeyboardInterrupt`` deliberately —
callers that do not know about draining treat it exactly like Ctrl-C
(it must never be swallowed by a broad ``except Exception``), while
callers that do get the outstanding workloads and the resume command.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Optional

#: process exit code for a drained sweep (BSD EX_TEMPFAIL: partial work
#: is journaled; re-running with ``--resume`` completes it)
EXIT_DRAINED = 75

#: default bounded wait for in-flight tasks after the first signal
DEFAULT_DRAIN_TIMEOUT = 10.0


class SweepDrained(KeyboardInterrupt):
    """A sweep stopped early by a drain request, with its work journaled."""

    def __init__(self, outstanding=(), completed: int = 0,
                 drain_seconds: float = 0.0, run_id: Optional[str] = None,
                 journal_dir: Optional[str] = None):
        self.outstanding = list(outstanding)
        self.completed = int(completed)
        self.drain_seconds = float(drain_seconds)
        self.run_id = run_id
        self.journal_dir = journal_dir
        super().__init__(
            "sweep drained with %d workload(s) outstanding"
            % len(self.outstanding))

    def resume_command(self) -> Optional[str]:
        """The CLI invocation that continues this run, if journaled."""
        if self.run_id is None:
            return None
        command = "python -m repro evaluate --resume %s" % self.run_id
        if self.journal_dir:
            command += " --journal-dir %s" % self.journal_dir
        return command


class DrainController:
    """Thread-safe 'please stop feeding the pool' flag + drain budget."""

    def __init__(self, timeout: Optional[float] = DEFAULT_DRAIN_TIMEOUT):
        self.timeout = (DEFAULT_DRAIN_TIMEOUT if timeout is None
                        else max(0.0, float(timeout)))
        self._event = threading.Event()
        self.signum: Optional[int] = None
        self.requested_at: Optional[float] = None

    def request(self, signum: Optional[int] = None) -> None:
        """Ask the sweep to drain (idempotent; first request wins)."""
        if not self._event.is_set():
            self.signum = signum
            self.requested_at = time.monotonic()
            self._event.set()

    def requested(self) -> bool:
        return self._event.is_set()


@contextmanager
def drain_on_signals(controller: Optional[DrainController],
                     signums=(signal.SIGINT, signal.SIGTERM)):
    """Route SIGINT/SIGTERM into ``controller`` for the enclosed sweep.

    Installs handlers only on the main thread (Python restricts signal
    handling to it; worker threads simply yield unchanged) and always
    restores the previous handlers on exit.  First signal: drain.
    Second: ``KeyboardInterrupt``.
    """
    if controller is None or \
            threading.current_thread() is not threading.main_thread():
        yield controller
        return

    def _handler(signum, frame):
        if controller.requested():
            raise KeyboardInterrupt
        controller.request(signum)

    previous = {}
    for signum in signums:
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError, RuntimeError):
            continue
    try:
        yield controller
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError, RuntimeError):
                pass


__all__ = [
    "DEFAULT_DRAIN_TIMEOUT",
    "EXIT_DRAINED",
    "DrainController",
    "SweepDrained",
    "drain_on_signals",
]
