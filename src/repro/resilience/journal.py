"""Durable run journal: write-ahead logging that makes sweeps resumable.

A suite sweep is a long batch job; a crashed driver (OOM kill, preempted
VM, Ctrl-C) must not discard the evaluations that already finished.
:class:`RunJournal` gives each sweep a crash-safe record of its own
progress:

* **append-only JSONL**, one file per run id under the journal
  directory (``--journal-dir`` / ``$REPRO_JOURNAL_DIR``), fsynced a
  record at a time so a completed workload is durable the instant its
  ``completed`` record returns;
* a **header** pinning what the run computes — suite manifest,
  :func:`sweep_fingerprint` over (config, manifest, cache + journal
  format versions) — so a resume against a different config or suite is
  a hard :class:`JournalMismatch`, never silently mixed results;
* per-workload lifecycle events (``scheduled`` / ``attempt_started`` /
  ``completed`` / ``quarantined`` / ``aborted``), with each completed
  evaluation's full row — the record itself plus the obs-registry and
  simulation-memo deltas the pool worker shipped — persisted through
  the content-addressed artifact store next to the journal;
* **torn-tail recovery**: a crash mid-append leaves a partial or
  corrupt trailing line; :meth:`RunJournal.replay` detects it, counts
  it (``resilience.journal_torn_records``) and truncates the file back
  to the last durable record instead of refusing to load.

Write-ahead discipline: a workload's payload is stored (atomically,
fsynced) *before* the ``completed`` record that references it is
appended, so a journal never points at a payload that might not exist.
The converse — payload present, record missing — simply re-runs the
workload on resume.

The ``fingerprint`` deliberately excludes the failure policy (retries,
timeouts, jobs, pool backend, fault plan): those decide *how* a sweep
executes, not *what* it computes, and a chaos run crashed by an
injected plan must be resumable without re-installing the plan.

``scheduled`` and ``attempt_started`` records are flushed but not
fsynced — losing one on a crash only makes resume re-run that workload,
which is already the correct behaviour — so the healthy-path fsync cost
is one sync per completed workload plus a handful for the run envelope
(measured explicitly by ``benchmarks/bench_pipeline_scaling.py``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs
from ..obs import events as bus_events
from .faults import SITE_JOURNAL_CRASH, FaultInjector, FaultPlan

log = logging.getLogger(__name__)

#: bump when the journal record layout changes incompatibly; part of the
#: sweep fingerprint, so old journals refuse to resume under new code
JOURNAL_FORMAT_VERSION = 1

#: environment variable enabling journaling with a default directory
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"

# -- record event names ------------------------------------------------------

EVENT_RUN_STARTED = "run_started"
EVENT_RUN_RESUMED = "run_resumed"
EVENT_RUN_FINISHED = "run_finished"
EVENT_SCHEDULED = "scheduled"
EVENT_ATTEMPT_STARTED = "attempt_started"
EVENT_COMPLETED = "completed"
EVENT_QUARANTINED = "quarantined"
EVENT_ABORTED = "aborted"

#: run ids double as file names: keep them path-safe
_RUN_ID_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,127}\Z")


class JournalError(RuntimeError):
    """A journal could not be created, read or replayed."""


class JournalMismatch(JournalError):
    """Resume attempted against a journal with a different fingerprint."""


def resolve_journal_dir(journal_dir: Optional[str] = None) -> Optional[str]:
    """The effective journal directory: explicit value, else
    ``$REPRO_JOURNAL_DIR``, else ``None`` (journaling off)."""
    return journal_dir or os.environ.get(JOURNAL_DIR_ENV) or None


def new_run_id() -> str:
    """A fresh, human-sortable run id (timestamp + random suffix)."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


def sweep_fingerprint(config, manifest) -> str:
    """Hash pinning *what* a sweep computes.

    Covers the :class:`~repro.sim.config.SystemConfig`, the ordered
    suite manifest and the cache/journal format versions — the inputs
    that decide result content.  Execution knobs (jobs, pool, retries,
    fault plan) are excluded on purpose: a run crashed under ``--jobs 8``
    with an injected fault plan resumes fine serial and plan-free.
    """
    from ..artifacts import CACHE_FORMAT_VERSION, config_fingerprint

    h = hashlib.sha256()
    h.update(config_fingerprint(config).encode())
    h.update(b"\x00")
    h.update("\x1f".join(manifest).encode())
    h.update(b"\x00")
    h.update(str(CACHE_FORMAT_VERSION).encode())
    h.update(b"\x00")
    h.update(str(JOURNAL_FORMAT_VERSION).encode())
    return h.hexdigest()


@dataclass
class JournalReplay:
    """Everything a resume needs, reconstructed from one journal file."""

    header: Optional[dict] = None
    #: workload name -> payload key of its durable ``completed`` record
    completed: Dict[str, str] = field(default_factory=dict)
    #: workload name -> its ``quarantined`` record (re-run on resume)
    quarantined: Dict[str, dict] = field(default_factory=dict)
    #: workloads with an ``attempt_started`` but no terminal record —
    #: they were in flight when the run died (re-run on resume)
    in_flight: List[str] = field(default_factory=list)
    scheduled: List[str] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    #: trailing records lost to a mid-write crash (detected + truncated)
    torn_records: int = 0


class RunJournal:
    """One sweep's write-ahead journal (see module docstring).

    Construct via :meth:`create` (new run) or :meth:`resume` (continue
    a crashed/drained one); :meth:`peek` reads a header without opening
    the file for appends.  The journal owns its *own*
    :class:`~repro.resilience.faults.FaultInjector` built from the
    sweep's plan — the driver thread has no ambient injector installed
    while it merges results, so the ``journal.crash`` chaos site is
    consulted here directly, on every append, keyed by event name.
    """

    def __init__(self, journal_dir: str, run_id: str,
                 plan: Optional[FaultPlan] = None):
        if not _RUN_ID_RE.match(run_id or ""):
            raise JournalError(
                "invalid run id %r (letters, digits, '._-' only, "
                "max 128 chars)" % (run_id,))
        self.journal_dir = journal_dir
        self.run_id = run_id
        self.path = os.path.join(journal_dir, run_id + ".jsonl")
        self._fh = None
        self._injector = FaultInjector(plan) if plan is not None else None
        self._store = None
        self.fsync_seconds = 0.0
        self.records_written = 0

    # -- payload store -----------------------------------------------------

    @property
    def store(self):
        """Content-addressed store for completed-evaluation payloads.

        Lives under ``<journal_dir>/artifacts`` and writes with
        ``fsync=True``: the payload must be durable *before* the journal
        record that references it (write-ahead ordering).  Imported
        lazily — :mod:`repro.artifacts` imports this package for its
        fault sites, so a top-level import would be circular.
        """
        if self._store is None:
            from ..artifacts import ArtifactCache

            self._store = ArtifactCache(
                os.path.join(self.journal_dir, "artifacts"), fsync=True)
        return self._store

    def payload_key(self, workload: str) -> str:
        h = hashlib.sha256()
        h.update(("%s\x00%s\x00%d" % (
            self.run_id, workload, JOURNAL_FORMAT_VERSION)).encode())
        return h.hexdigest()

    def store_payload(self, workload: str, row) -> str:
        """Persist a completed workload's ``(result, obs snapshot, memo
        delta)`` row; returns the key a ``completed`` record carries."""
        from ..artifacts import JOURNAL_KIND

        key = self.payload_key(workload)
        self.store.put(JOURNAL_KIND, key, row)
        return key

    def load_payload(self, key: str):
        from ..artifacts import JOURNAL_KIND

        return self.store.get(JOURNAL_KIND, key)

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, journal_dir: str, run_id: Optional[str] = None, *,
               fingerprint: str, manifest, config_fingerprint: str = "",
               plan: Optional[FaultPlan] = None) -> "RunJournal":
        """Open a fresh journal and append its ``run_started`` header."""
        run_id = run_id or new_run_id()
        journal = cls(journal_dir, run_id, plan=plan)
        os.makedirs(journal_dir, exist_ok=True)
        if os.path.exists(journal.path):
            raise JournalError(
                "run id %r already has a journal under %s; pass a fresh "
                "--run-id, or --resume %s to continue it"
                % (run_id, journal_dir, run_id))
        journal.append(
            EVENT_RUN_STARTED,
            format=JOURNAL_FORMAT_VERSION,
            run_id=run_id,
            fingerprint=fingerprint,
            manifest=list(manifest),
            config=config_fingerprint,
            pid=os.getpid(),
        )
        return journal

    @classmethod
    def resume(cls, journal_dir: str, run_id: str, *, fingerprint: str,
               manifest=None, plan: Optional[FaultPlan] = None):
        """Replay an existing journal and reopen it for appends.

        Returns ``(journal, replay)``.  Torn trailing records are
        truncated; a missing header, unsupported format, changed
        manifest or changed fingerprint is a hard error — resuming must
        never mix results computed under different options.
        """
        journal = cls(journal_dir, run_id, plan=plan)
        replay = journal.replay()
        header = replay.header
        if header is None:
            raise JournalError(
                "journal %s has no run_started header; it cannot be "
                "resumed" % journal.path)
        if int(header.get("format", -1)) != JOURNAL_FORMAT_VERSION:
            raise JournalMismatch(
                "journal %s uses format %s; this build writes format %d — "
                "re-run from scratch" % (journal.path, header.get("format"),
                                         JOURNAL_FORMAT_VERSION))
        if manifest is not None and \
                list(header.get("manifest") or ()) != list(manifest):
            raise JournalMismatch(
                "suite manifest changed since run %r was journaled; "
                "--resume re-runs the journaled manifest, not a new one"
                % run_id)
        if header.get("fingerprint") != fingerprint:
            raise JournalMismatch(
                "options fingerprint mismatch for run %r: the journal was "
                "written under a different SystemConfig/suite/format; "
                "resuming would mix incompatible results" % run_id)
        journal.append(EVENT_RUN_RESUMED, pid=os.getpid(),
                       completed=len(replay.completed),
                       torn_records=replay.torn_records)
        return journal, replay

    @classmethod
    def peek(cls, journal_dir: str, run_id: str) -> dict:
        """Read a journal's header without opening it for appends (and
        without truncating a torn tail — peeking is side-effect free)."""
        replay = cls(journal_dir, run_id).replay(truncate=False)
        if replay.header is None:
            raise JournalError(
                "journal for run id %r under %s has no run_started header"
                % (run_id, journal_dir))
        return replay.header

    # -- appending ---------------------------------------------------------

    def append(self, event: str, sync: bool = True, **data) -> None:
        """Append one record; by default durable (flush + fsync) before
        returning.  Consults the ``journal.crash`` fault site first, so
        a chaos plan kills the driver *instead of* writing the record —
        optionally leaving ``torn_bytes`` of it behind, the torn-tail
        case resume must survive."""
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        record = dict(data)
        record["event"] = event
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if self._injector is not None:
            spec = self._injector.consult(SITE_JOURNAL_CRASH, event)
            if spec is not None:
                torn = int(spec.payload.get("torn_bytes", 0))
                if torn > 0:
                    self._fh.write(line[:torn])
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                # simulate SIGKILL/OOM: no cleanup, no atexit, no flush
                os._exit(int(spec.payload.get("exit_code", 137)))
        t0 = time.perf_counter()
        with obs.span("journal.flush", event=event):
            self._fh.write(line + "\n")
            self._fh.flush()
            if sync:
                os.fsync(self._fh.fileno())
        self.fsync_seconds += time.perf_counter() - t0
        self.records_written += 1
        if obs.enabled():
            obs.counter("resilience.journal_records", 1,
                        help="records appended to the run journal",
                        event=event)
        # live telemetry: surface journal activity on the ambient event
        # bus (no-op without one); key prefers the workload a record is
        # about, falling back to the run itself
        bus_events.publish(
            bus_events.JOURNAL_RECORD,
            key=str(data.get("workload", "") or self.run_id),
            record=event)

    # lifecycle helpers — the vocabulary `_sweep`/`run_failsafe` speak

    def scheduled(self, names) -> None:
        """One ``scheduled`` record per workload, one fsync for the lot
        (losing a scheduled record only re-runs that workload)."""
        names = list(names)
        for name in names[:-1]:
            self.append(EVENT_SCHEDULED, sync=False, workload=name)
        if names:
            self.append(EVENT_SCHEDULED, workload=names[-1])

    def completed(self, workload: str, payload_key: str) -> None:
        self.append(EVENT_COMPLETED, workload=workload, payload=payload_key)

    def lifecycle(self, event: str, key: str, **data) -> None:
        """Adapter for :func:`~repro.resilience.runner.run_failsafe`'s
        ``on_event`` hook: journal the runner's lifecycle notifications."""
        if event == EVENT_ATTEMPT_STARTED:
            # flushed, not fsynced: an attempt that never records a
            # terminal event is re-run on resume either way
            self.append(EVENT_ATTEMPT_STARTED, sync=False, workload=key,
                        attempt=int(data.get("attempt", 0)))
        elif event == EVENT_QUARANTINED:
            self.append(EVENT_QUARANTINED, workload=key,
                        kind=str(data.get("kind", "")),
                        attempts=int(data.get("attempts", 0)),
                        error_type=str(data.get("error_type", "")))
        elif event == "circuit_open":
            self.append(EVENT_ABORTED, reason=str(data.get("reason", "")),
                        outstanding=list(data.get("outstanding", ())))

    def aborted(self, reason: str, outstanding) -> None:
        self.append(EVENT_ABORTED, reason=reason,
                    outstanding=list(outstanding))

    def finished(self, completed: int, quarantined: int) -> None:
        """The run's terminal record; carries the journal's own fsync
        cost so benchmarks can report journal overhead from the file."""
        self.append(EVENT_RUN_FINISHED, completed=int(completed),
                    quarantined=int(quarantined),
                    records=self.records_written,
                    fsync_seconds=round(self.fsync_seconds, 6))

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    # -- replay ------------------------------------------------------------

    def replay(self, truncate: bool = True) -> JournalReplay:
        """Reconstruct run state from the journal file.

        Parses records in order until the first torn one — a trailing
        fragment without its newline, or any undecodable line — then
        (by default) truncates the file back to the last good record
        and counts the loss in ``resilience.journal_torn_records``.
        Everything before the tear is trusted: records are fsynced in
        append order, so a valid prefix is exactly what was durable.
        """
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except OSError:
            raise JournalError(
                "no journal for run id %r under %s"
                % (self.run_id, self.journal_dir))
        replay = JournalReplay()
        pos = 0
        good = 0
        size = len(data)
        while pos < size:
            newline = data.find(b"\n", pos)
            if newline < 0:
                # bytes past the last newline: an append died mid-write
                # (the fsync covers the newline, so even a fully parseable
                # fragment was never durable)
                replay.torn_records += 1
                break
            raw = data[pos:newline]
            try:
                record = json.loads(raw.decode("utf-8"))
                if not isinstance(record, dict) or "event" not in record:
                    raise ValueError("not a journal record")
            except (ValueError, UnicodeDecodeError):
                # a corrupt line poisons everything after it — later
                # records may depend on state the lost one described
                tail = data[pos:].split(b"\n")
                replay.torn_records += sum(1 for seg in tail if seg.strip())
                break
            replay.events.append(record)
            pos = newline + 1
            good = pos
        self._fold(replay)
        if replay.torn_records and truncate:
            with open(self.path, "r+b") as fh:
                fh.truncate(good)
            log.warning(
                "journal %s: %d torn trailing record(s) truncated at byte "
                "%d (crash mid-append)", self.path, replay.torn_records, good)
            if obs.enabled():
                obs.counter("resilience.journal_torn_records",
                            replay.torn_records,
                            help="torn trailing journal records detected "
                                 "and truncated during replay")
        return replay

    @staticmethod
    def _fold(replay: JournalReplay) -> None:
        """Fold the parsed event list into per-workload state."""
        for record in replay.events:
            event = record.get("event")
            workload = record.get("workload")
            if event == EVENT_RUN_STARTED and replay.header is None:
                replay.header = record
            elif event == EVENT_SCHEDULED and workload is not None:
                if workload not in replay.scheduled:
                    replay.scheduled.append(workload)
            elif event == EVENT_ATTEMPT_STARTED and workload is not None:
                if workload not in replay.in_flight:
                    replay.in_flight.append(workload)
            elif event == EVENT_COMPLETED and workload is not None:
                replay.completed[workload] = record.get("payload", "")
                if workload in replay.in_flight:
                    replay.in_flight.remove(workload)
                replay.quarantined.pop(workload, None)
            elif event == EVENT_QUARANTINED and workload is not None:
                replay.quarantined[workload] = record
                if workload in replay.in_flight:
                    replay.in_flight.remove(workload)


__all__ = [
    "EVENT_ABORTED",
    "EVENT_ATTEMPT_STARTED",
    "EVENT_COMPLETED",
    "EVENT_QUARANTINED",
    "EVENT_RUN_FINISHED",
    "EVENT_RUN_RESUMED",
    "EVENT_RUN_STARTED",
    "EVENT_SCHEDULED",
    "JOURNAL_DIR_ENV",
    "JOURNAL_FORMAT_VERSION",
    "JournalError",
    "JournalMismatch",
    "JournalReplay",
    "RunJournal",
    "new_run_id",
    "resolve_journal_dir",
    "sweep_fingerprint",
]
