"""ASCII figure rendering: bar charts and stacked bars for the reproduced
figures (4, 5, 6, 9, 10)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: Optional[str] = None,
    width: int = 50,
    unit: str = "%",
    scale: float = 100.0,
) -> str:
    """Horizontal bar chart; values are fractions scaled by ``scale``.

    Negative values render to the left of the axis, so Fig. 9's degradation
    cases are visually distinct.
    """
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    if not items:
        return "\n".join(out + ["(no data)"])
    label_w = max(len(name) for name, _ in items)
    max_mag = max(abs(v) for _, v in items) or 1.0
    for name, value in items:
        bar_len = int(round(abs(value) / max_mag * width))
        bar = ("#" if value >= 0 else "-") * bar_len
        out.append(
            "%s | %s %6.1f%s" % (name.ljust(label_w), bar.ljust(width), value * scale, unit)
        )
    return "\n".join(out)


def stacked_bar_chart(
    items: Sequence[Tuple[str, Sequence[float]]],
    title: Optional[str] = None,
    width: int = 50,
    symbols: str = "#*+=o.",
) -> str:
    """Stacked horizontal bars of fractions in [0,1] (Fig. 6 style).

    Each stack segment gets the next symbol; the printed number is the
    cumulative coverage.
    """
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    if not items:
        return "\n".join(out + ["(no data)"])
    label_w = max(len(name) for name, _ in items)
    for name, parts in items:
        bar = ""
        for i, frac in enumerate(parts):
            bar += symbols[i % len(symbols)] * int(round(frac * width))
        total = sum(parts)
        out.append(
            "%s | %s %5.1f%%" % (name.ljust(label_w), bar[:width].ljust(width), total * 100)
        )
    return "\n".join(out)


def histogram(
    buckets: Sequence[Tuple[str, float]],
    title: Optional[str] = None,
    width: int = 40,
) -> str:
    """Simple labelled histogram of fractions (Fig. 4 style)."""
    return bar_chart(buckets, title=title, width=width)
