"""Plain-text table rendering for benchmark output.

Everything the benchmark harness prints goes through these helpers so the
reproduced tables have a consistent, diff-able format.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100 or value == int(value):
            return "%.0f" % value
        if abs(value) < 1:
            return "%.3g" % value
        return "%.1f" % value
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """CSV rendering (for piping into external plotting)."""
    out = [",".join(headers)]
    for row in rows:
        out.append(",".join(format_cell(c) for c in row))
    return "\n".join(out)
