"""Attribution tables and metric-snapshot regression diffing.

Two consumers of the attribution ledger live here:

* :func:`render_attribution` — the paper-style decomposition tables
  (the Fig. 9/10 analogue): for each workload × strategy, where the
  simulated cycles and picojoules went, grouped into readable columns
  from the closed charge-class contract in :mod:`repro.obs.ledger`.
* :func:`diff_snapshots` / ``repro report diff`` — compare two metric
  snapshots (obs registry JSON, ``semantic_json`` output, or
  ``BENCH_*.json`` files) with per-metric relative thresholds and a
  machine-readable regression verdict.  CI's perf-smoke job gates on
  the nonzero exit instead of eyeballing artifacts.

Regression direction is inferred from the metric name (``*seconds*``
and ``*cycles*`` regress upward, ``*speedup*`` and ``*coverage*``
regress downward); metrics matching neither pattern set are flagged on
any move beyond the threshold, which fails safe for new metrics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Tuple

from .tables import format_table

#: metric-name patterns where a larger value is worse
LOWER_IS_BETTER_PATTERNS: Tuple[str, ...] = (
    "*seconds*", "*cycles*", "*energy*", "*_pj*", "*failures*",
    "*misses*", "*overhead*", "*retries*", "*quarantined*",
)

#: metric-name patterns where a smaller value is worse
HIGHER_IS_BETTER_PATTERNS: Tuple[str, ...] = (
    "*speedup*", "*improvement*", "*reduction*", "*coverage*",
    "*precision*", "*utilization*", "*ipc*", "*ilp*", "*hits*",
)


def metric_direction(name: str) -> str:
    """"lower" | "higher" | "unknown" — which way ``name`` regresses."""
    low = name.lower()
    for pattern in LOWER_IS_BETTER_PATTERNS:
        if fnmatch(low, pattern):
            return "lower"
    for pattern in HIGHER_IS_BETTER_PATTERNS:
        if fnmatch(low, pattern):
            return "higher"
    return "unknown"


@dataclass
class Thresholds:
    """Per-metric relative tolerances for :func:`diff_snapshots`.

    ``default``    relative change tolerated by every metric;
    ``overrides``  first-match (pattern, fraction) pairs consulted
                   before the default;
    ``ignore``     patterns whose metrics are reported but never gate.
    """

    default: float = 0.05
    overrides: List[Tuple[str, float]] = field(default_factory=list)
    ignore: List[str] = field(default_factory=list)

    def for_metric(self, name: str) -> Optional[float]:
        """The tolerance for ``name``, or ``None`` when it is ignored."""
        low = name.lower()
        for pattern in self.ignore:
            if fnmatch(low, pattern.lower()):
                return None
        for pattern, fraction in self.overrides:
            if fnmatch(low, pattern.lower()):
                return fraction
        return self.default


# -- snapshot flattening -----------------------------------------------------


def _labels_text(labels: Dict[str, object]) -> str:
    return ",".join("%s=%s" % (k, v) for k, v in sorted(labels.items()))


def _flatten_obs(data: dict, out: Dict[str, float]) -> None:
    """Flatten an obs registry snapshot: semantic metric series plus the
    attribution ledger.  Operational metrics and spans are skipped — they
    legitimately vary run to run and must never gate CI."""
    for metric in data.get("metrics", ()):
        if not metric.get("semantic"):
            continue
        name = metric.get("name", "?")
        for series in metric.get("series", ()):
            key = "%s{%s}" % (name, _labels_text(series.get("labels", {})))
            value = series.get("value")
            if isinstance(value, (list, tuple)):  # histogram state
                out[key + ".sum"] = float(value[1])
                out[key + ".count"] = float(value[2])
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                out[key] = float(value)
    for entry in data.get("ledger", {}).get("entries", ()):
        key = "ledger{workload=%s,strategy=%s,region=%s,charge=%s}" % (
            entry.get("workload", "?"), entry.get("strategy", "?"),
            entry.get("region", "?"), entry.get("charge", "?"),
        )
        out[key + ".cycles"] = float(entry.get("cycles", 0.0))
        out[key + ".energy_pj"] = float(entry.get("energy_pj", 0.0))


def _flatten_generic(node, prefix: str, out: Dict[str, float]) -> None:
    """Flatten arbitrary JSON (``BENCH_*.json``): dicts become dotted
    paths, list items keyed by a ``workload`` field become
    ``prefix{workload}``, other list items are indexed."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        out[prefix] = float(node)
        return
    if isinstance(node, dict):
        for key in sorted(node):
            sub = "%s.%s" % (prefix, key) if prefix else str(key)
            _flatten_generic(node[key], sub, out)
        return
    if isinstance(node, list):
        for i, item in enumerate(node):
            if isinstance(item, dict) and "workload" in item:
                sub = "%s{%s}" % (prefix, item["workload"])
                rest = {k: v for k, v in item.items() if k != "workload"}
                _flatten_generic(rest, sub, out)
            else:
                _flatten_generic(item, "%s[%d]" % (prefix, i), out)


def flatten_snapshot(data: dict) -> Dict[str, float]:
    """Flat ``{metric name: value}`` view of any supported snapshot.

    Obs registry snapshots (a ``metrics`` list of series dicts) keep
    only their *semantic* content; anything else (``BENCH_*.json``)
    flattens generically.
    """
    out: Dict[str, float] = {}
    metrics = data.get("metrics") if isinstance(data, dict) else None
    if isinstance(metrics, list) and all(
        isinstance(m, dict) and "series" in m for m in metrics
    ):
        _flatten_obs(data, out)
    else:
        _flatten_generic(data, "", out)
    return out


def load_snapshot(path: str) -> Dict[str, float]:
    """Load + flatten a snapshot file."""
    with open(path) as fh:
        return flatten_snapshot(json.load(fh))


# -- diffing ----------------------------------------------------------------


@dataclass
class MetricDelta:
    """One metric's movement between two snapshots."""

    name: str
    old: Optional[float]
    new: Optional[float]
    rel_change: Optional[float]  # (new-old)/|old|; None when undefined
    status: str  # ok | regression | improvement | added | removed | ignored


@dataclass
class DiffResult:
    """Outcome of diffing two snapshots."""

    deltas: List[MetricDelta]

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _classify(name: str, old: float, new: float,
              threshold: float) -> Tuple[Optional[float], str]:
    if old == new:
        return 0.0, "ok"
    if old == 0.0:
        # relative change undefined: any appearance of a non-zero value
        # moves by convention "infinitely"; gate on direction only
        rel = None
        moved_up = new > 0
    else:
        rel = (new - old) / abs(old)
        moved_up = rel > 0
    magnitude = abs(rel) if rel is not None else float("inf")
    if magnitude <= threshold:
        return rel, "ok"
    direction = metric_direction(name)
    if direction == "lower":
        return rel, "regression" if moved_up else "improvement"
    if direction == "higher":
        return rel, "improvement" if moved_up else "regression"
    return rel, "regression"  # unknown direction: fail safe on any move


def diff_snapshots(
    old: Dict[str, float],
    new: Dict[str, float],
    thresholds: Optional[Thresholds] = None,
) -> DiffResult:
    """Compare two flat snapshots under per-metric thresholds.

    Metrics present on only one side are reported as ``added`` /
    ``removed`` but never gate (new instrumentation must not fail CI);
    a metric's *movement* beyond its threshold in the regressing
    direction does.
    """
    thresholds = thresholds or Thresholds()
    deltas: List[MetricDelta] = []
    for name in sorted(set(old) | set(new)):
        a, b = old.get(name), new.get(name)
        threshold = thresholds.for_metric(name)
        if threshold is None:
            status = "ignored"
            rel = None
            if a is not None and b is not None and a != 0:
                rel = (b - a) / abs(a)
            deltas.append(MetricDelta(name, a, b, rel, status))
            continue
        if a is None:
            deltas.append(MetricDelta(name, None, b, None, "added"))
            continue
        if b is None:
            deltas.append(MetricDelta(name, a, None, None, "removed"))
            continue
        rel, status = _classify(name, a, b, threshold)
        deltas.append(MetricDelta(name, a, b, rel, status))
    return DiffResult(deltas=deltas)


def render_diff(result: DiffResult, verbose: bool = False) -> str:
    """Human summary of a diff: regressions always, the rest on demand."""
    rows = []
    shown = result.deltas if verbose else [
        d for d in result.deltas
        if d.status in ("regression", "improvement", "added", "removed")
    ]
    for d in shown:
        rows.append((
            d.status,
            d.name,
            "-" if d.old is None else "%.6g" % d.old,
            "-" if d.new is None else "%.6g" % d.new,
            "-" if d.rel_change is None else "%+.2f%%" % (d.rel_change * 100),
        ))
    lines = []
    if rows:
        lines.append(format_table(
            ["status", "metric", "old", "new", "change"], rows))
    n_reg = len(result.regressions)
    compared = sum(
        1 for d in result.deltas if d.status not in ("added", "removed")
    )
    lines.append("")
    lines.append(
        "%d metrics compared, %d regression%s"
        % (compared, n_reg, "" if n_reg == 1 else "s")
    )
    return "\n".join(lines)


# -- attribution tables -----------------------------------------------------

#: display column -> charge classes folded into it (paper-style grouping)
ATTRIBUTION_COLUMNS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("compute", ("frame.compute", "host.compute")),
    ("guard", ("frame.guard",)),
    ("psi", ("frame.psi",)),
    ("mem", ("frame.mem", "host.mem.l1", "host.mem.l2", "host.mem.dram")),
    ("xfer", ("transfer",)),
    ("abort", ("abort.frame", "abort.rollback", "abort.reexec")),
    ("host", ("host.fallback",)),
    ("reconfig", ("reconfig",)),
)


def _attribution_rows(ledger, workload: Optional[str], index: int):
    rows = []
    for w in ledger.workloads():
        if workload is not None and w != workload:
            continue
        for strategy in ledger.strategies(w):
            totals = ledger.class_totals(w, strategy)
            row: List[object] = [w, strategy]
            for _col, classes in ATTRIBUTION_COLUMNS:
                row.append(sum(
                    totals[c][index] for c in classes if c in totals
                ))
            row.append(
                ledger.cycle_total(w, strategy) if index == 0
                else ledger.energy_total(w, strategy)
            )
            rows.append(tuple(row))
    return rows


def render_attribution(ledger, workload: Optional[str] = None) -> str:
    """Cycle and energy decomposition tables from an attribution ledger.

    One row per (workload, strategy) — including the ``host`` baseline —
    with the charge classes grouped into the paper's decomposition
    vocabulary.  Row totals equal the simulator's reported totals
    exactly (the ledger conservation contract).
    """
    if not ledger:
        return ("(no attribution recorded — run with metrics enabled, "
                "e.g. `repro report table <workload>`)")
    headers = (["workload", "strategy"]
               + [col for col, _classes in ATTRIBUTION_COLUMNS]
               + ["total"])
    cycles = format_table(
        headers, _attribution_rows(ledger, workload, 0),
        title="Simulated-cycle attribution",
    )
    energy = format_table(
        headers, _attribution_rows(ledger, workload, 1),
        title="Energy attribution (pJ)",
    )
    return cycles + "\n\n" + energy


__all__ = [
    "ATTRIBUTION_COLUMNS",
    "DiffResult",
    "HIGHER_IS_BETTER_PATTERNS",
    "LOWER_IS_BETTER_PATTERNS",
    "MetricDelta",
    "Thresholds",
    "diff_snapshots",
    "flatten_snapshot",
    "load_snapshot",
    "metric_direction",
    "render_attribution",
    "render_diff",
]
