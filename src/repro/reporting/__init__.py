"""Table/figure rendering used by the benchmark harness."""

from .tables import format_cell, format_csv, format_table
from .figures import bar_chart, histogram, stacked_bar_chart
from .regress import (
    DiffResult,
    MetricDelta,
    Thresholds,
    diff_snapshots,
    flatten_snapshot,
    load_snapshot,
    metric_direction,
    render_attribution,
    render_diff,
)

__all__ = [
    "DiffResult",
    "MetricDelta",
    "Thresholds",
    "bar_chart",
    "diff_snapshots",
    "flatten_snapshot",
    "format_cell",
    "format_csv",
    "format_table",
    "histogram",
    "load_snapshot",
    "metric_direction",
    "render_attribution",
    "render_diff",
    "stacked_bar_chart",
]
