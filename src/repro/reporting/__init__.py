"""Table/figure rendering used by the benchmark harness."""

from .tables import format_cell, format_csv, format_table
from .figures import bar_chart, histogram, stacked_bar_chart

__all__ = [
    "bar_chart",
    "format_cell",
    "format_csv",
    "format_table",
    "histogram",
    "stacked_bar_chart",
]
