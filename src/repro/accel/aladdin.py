"""Aladdin-style pre-RTL accelerator estimation (Shao et al., ISCA 2014).

The paper positions Needle's output as *plug-n-play* for existing
accelerator-analysis backends (Fig. 1 cites Aladdin and TDGF next to the
CGRA backend we model in :mod:`repro.accel.cgra`).  This module is that
second backend: a dynamic-dataflow (DDDG) scheduler with *per-class*
functional-unit constraints, swept over resource allocations to produce the
latency/power/area design space Aladdin explores for fixed-function
accelerators.

Differences from the CGRA backend, mirroring the real tools' philosophies:

* resources are provisioned per op class (ALUs, FP units, multipliers,
  memory ports) instead of a homogeneous fabric;
* power = dynamic (activity x per-op energy) + *leakage per provisioned
  unit*, so over-provisioning shows up as a cost;
* the output of interest is the latency/power Pareto over allocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..frames.frame import Frame, FrameOp
from ..ir.instructions import LATENCY, Load, Store

#: op class -> (dynamic energy pJ, leakage uW per unit, area um^2 per unit)
FU_LIBRARY: Dict[str, Tuple[float, float, float]] = {
    "int_alu": (0.9, 8.0, 280.0),
    "int_mul": (4.2, 30.0, 1_600.0),
    "int_div": (12.0, 60.0, 4_100.0),
    "fp_alu": (7.5, 55.0, 4_900.0),
    "fp_mul": (9.6, 70.0, 6_200.0),
    "fp_div": (22.0, 120.0, 14_000.0),
    "mem_port": (5.6, 40.0, 2_400.0),
}

_CLASS_OF = {
    "mul": "int_mul",
    "sdiv": "int_div",
    "srem": "int_div",
    "fadd": "fp_alu",
    "fsub": "fp_alu",
    "fmin": "fp_alu",
    "fmax": "fp_alu",
    "fcmp": "fp_alu",
    "fneg": "fp_alu",
    "fabs": "fp_alu",
    "sitofp": "fp_alu",
    "fptosi": "fp_alu",
    "fmul": "fp_mul",
    "fdiv": "fp_div",
    "fsqrt": "fp_div",
    "load": "mem_port",
    "store": "mem_port",
}


def op_class(fop: FrameOp) -> str:
    if fop.kind == "undo":
        return "mem_port"
    return _CLASS_OF.get(fop.opcode, "int_alu")


@dataclass(frozen=True)
class AladdinConfig:
    """One resource allocation point."""

    int_alus: int = 4
    int_muls: int = 2
    int_divs: int = 1
    fp_alus: int = 2
    fp_muls: int = 2
    fp_divs: int = 1
    mem_ports: int = 2
    clock_mhz: float = 500.0

    def limit(self, cls: str) -> int:
        return {
            "int_alu": self.int_alus,
            "int_mul": self.int_muls,
            "int_div": self.int_divs,
            "fp_alu": self.fp_alus,
            "fp_mul": self.fp_muls,
            "fp_div": self.fp_divs,
            "mem_port": self.mem_ports,
        }[cls]

    def provisioned(self) -> Dict[str, int]:
        return {cls: self.limit(cls) for cls in FU_LIBRARY}


@dataclass
class AladdinResult:
    """Latency/power/area estimate of one frame at one allocation."""

    config: AladdinConfig
    latency_cycles: int
    dynamic_energy_pj: float
    leakage_uw: float
    area_um2: float
    fu_busy: Dict[str, int] = field(default_factory=dict)

    @property
    def latency_us(self) -> float:
        return self.latency_cycles / self.config.clock_mhz

    @property
    def power_mw(self) -> float:
        """Average power over one invocation at the configured clock."""
        if self.latency_cycles == 0:
            return self.leakage_uw / 1000.0
        seconds = self.latency_cycles / (self.config.clock_mhz * 1e6)
        dynamic_w = self.dynamic_energy_pj * 1e-12 / seconds
        return dynamic_w * 1000.0 + self.leakage_uw / 1000.0

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6


class AladdinEstimator:
    """DDDG scheduling under per-class FU constraints."""

    def __init__(self, load_latency: int = 4, store_latency: int = 2):
        self.load_latency = load_latency
        self.store_latency = store_latency

    def _latency(self, fop: FrameOp) -> int:
        if fop.kind == "undo":
            return self.load_latency
        if fop.kind in ("guard", "psi"):
            return 1
        inst = fop.inst
        if isinstance(inst, Load):
            return self.load_latency
        if isinstance(inst, Store):
            return self.store_latency
        return max(1, LATENCY[inst.opcode])

    def schedule(self, frame: Frame, config: Optional[AladdinConfig] = None) -> AladdinResult:
        """Resource-constrained list scheduling of the frame's DDDG."""
        from .cgra import CGRAScheduler

        config = config or AladdinConfig()
        deps = CGRAScheduler()._build_deps(frame)
        n = len(frame.ops)
        finish = [0] * n
        placed = [False] * n
        usage: Dict[Tuple[str, int], int] = {}
        busy: Dict[str, int] = {}
        dynamic_pj = 0.0
        remaining = n
        while remaining:
            progressed = False
            for i in range(n):
                if placed[i] or any(not placed[j] for j in deps[i]):
                    continue
                fop = frame.ops[i]
                cls = op_class(fop)
                limit = max(1, config.limit(cls))
                ready = max((finish[j] for j in deps[i]), default=0)
                cycle = ready
                while usage.get((cls, cycle), 0) >= limit:
                    cycle += 1
                usage[(cls, cycle)] = usage.get((cls, cycle), 0) + 1
                lat = self._latency(fop)
                finish[i] = cycle + lat
                placed[i] = True
                remaining -= 1
                progressed = True
                busy[cls] = busy.get(cls, 0) + lat
                dynamic_pj += FU_LIBRARY[cls][0]
            if not progressed:  # pragma: no cover - deps are acyclic
                raise RuntimeError("cyclic DDDG")

        leak = sum(
            count * FU_LIBRARY[cls][1] for cls, count in config.provisioned().items()
        )
        area = sum(
            count * FU_LIBRARY[cls][2] for cls, count in config.provisioned().items()
        )
        return AladdinResult(
            config=config,
            latency_cycles=max(finish, default=0),
            dynamic_energy_pj=dynamic_pj,
            leakage_uw=leak,
            area_um2=area,
            fu_busy=busy,
        )

    # -- design space exploration ------------------------------------------------

    def sweep(
        self,
        frame: Frame,
        alu_options: Sequence[int] = (1, 2, 4, 8),
        fp_options: Sequence[int] = (1, 2, 4, 8),
        mem_options: Sequence[int] = (1, 2, 4),
    ) -> List[AladdinResult]:
        """Latency/power results over a grid of resource allocations."""
        results = []
        for alus in alu_options:
            for fps in fp_options:
                for ports in mem_options:
                    cfg = AladdinConfig(
                        int_alus=alus,
                        int_muls=max(1, alus // 2),
                        fp_alus=fps,
                        fp_muls=fps,
                        mem_ports=ports,
                    )
                    results.append(self.schedule(frame, cfg))
        return results

    @staticmethod
    def pareto(results: Sequence[AladdinResult]) -> List[AladdinResult]:
        """Latency/power Pareto frontier (both minimised)."""
        frontier: List[AladdinResult] = []
        for r in sorted(results, key=lambda r: (r.latency_cycles, r.power_mw)):
            if all(
                not (f.latency_cycles <= r.latency_cycles and f.power_mw <= r.power_mw)
                or (f.latency_cycles == r.latency_cycles and f.power_mw == r.power_mw)
                for f in frontier
            ):
                frontier.append(r)
        # keep strictly improving power along increasing latency
        out: List[AladdinResult] = []
        best_power = float("inf")
        for r in sorted(frontier, key=lambda r: r.latency_cycles):
            if r.power_mw < best_power:
                out.append(r)
                best_power = r.power_mw
        return out
