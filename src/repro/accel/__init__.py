"""Accelerator models: CGRA scheduling, invocation prediction, HLS
feasibility estimation."""

from .aladdin import (
    AladdinConfig,
    AladdinEstimator,
    AladdinResult,
    FU_LIBRARY,
)
from .cgra import CGRAScheduler, ScheduledOp, ScheduleResult
from .invocation import (
    HistoryPredictor,
    OraclePredictor,
    PredictorEvaluation,
    evaluate_predictor,
)
from .hls import (
    ALM_COST,
    CYCLONE_V_ALMS,
    HLSEstimator,
    HLSReport,
)

__all__ = [
    "ALM_COST",
    "AladdinConfig",
    "AladdinEstimator",
    "AladdinResult",
    "FU_LIBRARY",
    "CGRAScheduler",
    "CYCLONE_V_ALMS",
    "HLSEstimator",
    "HLSReport",
    "HistoryPredictor",
    "OraclePredictor",
    "PredictorEvaluation",
    "ScheduleResult",
    "ScheduledOp",
    "evaluate_predictor",
]
