"""High-level-synthesis area/power estimation (paper §VI, "HLS for NEEDLE
identified Braids").

The paper functionally validates frames on an Altera Cyclone V SoC
(≈85 K adaptive logic modules) via a LegUp-style RTL backend, reporting ALM
utilisation under 20 % for most workloads (lbm: 72 %, double-precision) and
ModelSim power of 5–60 mW for most (namd 80 mW, lbm 175 mW, swaptions
305 mW).  We reproduce that feasibility analysis with an analytic model:

* per-op-class functional-unit area costs (f64 cores cost a multiple of the
  f32 ones — the reason lbm dominates the area table),
* LegUp-style *resource sharing*: expensive cores (FP, dividers, memory
  ports) are instantiated once per ``SHARE_FACTOR`` ops of the class and
  multiplexed, while cheap integer logic is spatial,
* an activity-based dynamic power estimate at the FPGA clock.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..frames.frame import Frame

#: Cyclone V SoC fabric size used in the paper
CYCLONE_V_ALMS = 85_000

#: ALM cost of one *instance* of each functional-unit class.  FP costs are
#: for single precision cores; double precision applies F64_AREA_FACTOR.
ALM_COST: Dict[str, int] = {
    "int_logic": 30,  # add/sub/cmp/logic/shift/gep/select
    "int_mul": 85,
    "int_div": 1_100,
    "mem_port": 900,  # load/store port incl. address mux + burst logic
    "guard": 12,
    "fp_add": 640,
    "fp_mul": 480,
    "fp_div": 3_200,
    "fp_sqrt": 4_200,
    "fp_cmp": 110,
    "fp_misc": 220,  # abs/neg/min/max/conversions
}

#: double-precision area multiplier over the f32 core
F64_AREA_FACTOR = 3.0

#: how many ops of an expensive class share one instantiated core
SHARE_FACTOR: Dict[str, int] = {
    "fp_add": 6,
    "fp_mul": 6,
    "fp_div": 3,
    "fp_sqrt": 3,
    "int_div": 2,
    "mem_port": 4,
    "fp_misc": 6,
    "fp_cmp": 4,
}

#: FPGA clock used for the power estimate (MHz)
FPGA_CLOCK_MHZ = 50.0
#: average toggle activity of a mapped op per cycle
ACTIVITY_FACTOR = 0.15
#: per-op switching energy on the FPGA fabric (pJ)
FPGA_INT_OP_PJ = 22.0
FPGA_FP32_OP_PJ = 48.0
FPGA_FP64_OP_PJ = 95.0
FPGA_STATIC_MW = 3.0

_CLASS_OF = {
    "add": "int_logic",
    "sub": "int_logic",
    "and": "int_logic",
    "or": "int_logic",
    "xor": "int_logic",
    "shl": "int_logic",
    "lshr": "int_logic",
    "ashr": "int_logic",
    "smin": "int_logic",
    "smax": "int_logic",
    "icmp": "int_logic",
    "select": "int_logic",
    "gep": "int_logic",
    "zext": "int_logic",
    "sext": "int_logic",
    "trunc": "int_logic",
    "alloca": "int_logic",
    "mul": "int_mul",
    "sdiv": "int_div",
    "srem": "int_div",
    "load": "mem_port",
    "store": "mem_port",
    "guard": "guard",
    "fadd": "fp_add",
    "fsub": "fp_add",
    "fmul": "fp_mul",
    "fdiv": "fp_div",
    "fsqrt": "fp_sqrt",
    "fcmp": "fp_cmp",
    "fabs": "fp_misc",
    "fneg": "fp_misc",
    "fmin": "fp_misc",
    "fmax": "fp_misc",
    "sitofp": "fp_misc",
    "fptosi": "fp_misc",
}


def _op_class_and_width(fop) -> Tuple[str, bool]:
    """(FU class, is_double) for one frame op."""
    cls = _CLASS_OF.get(fop.opcode, "int_logic")
    is_double = False
    if fop.kind == "op" and fop.inst is not None:
        inst = fop.inst
        if inst.is_float:
            if inst.type.is_float and inst.type.bits == 64:
                is_double = True
            elif inst.operands and inst.operands[0].type.is_float and inst.operands[0].type.bits == 64:
                is_double = True
    return cls, is_double


@dataclass
class HLSReport:
    """Synthesis feasibility estimate for one frame."""

    function: str
    kind: str
    ops: int
    alms: int
    alm_fraction: float  # of the Cyclone V budget
    dynamic_power_mw: float
    static_power_mw: float
    fu_instances: Dict[str, int] = field(default_factory=dict)

    @property
    def total_power_mw(self) -> float:
        return self.dynamic_power_mw + self.static_power_mw

    @property
    def fits(self) -> bool:
        return self.alm_fraction <= 1.0


class HLSEstimator:
    """Analytic LegUp/Cyclone-V stand-in."""

    def __init__(
        self,
        alm_budget: int = CYCLONE_V_ALMS,
        clock_mhz: float = FPGA_CLOCK_MHZ,
        activity: float = ACTIVITY_FACTOR,
    ):
        self.alm_budget = alm_budget
        self.clock_mhz = clock_mhz
        self.activity = activity

    def estimate(self, frame: Frame) -> HLSReport:
        # census ops by (class, precision)
        census: Counter = Counter()
        energy_pj = 0.0
        ops = 0
        for fop in frame.ops:
            cls, is_double = _op_class_and_width(fop)
            census[(cls, is_double)] += 1
            if cls.startswith("fp_"):
                energy_pj += FPGA_FP64_OP_PJ if is_double else FPGA_FP32_OP_PJ
            else:
                energy_pj += FPGA_INT_OP_PJ
            ops += 1

        alms = 0
        instances: Dict[str, int] = {}
        for (cls, is_double), count in census.items():
            share = SHARE_FACTOR.get(cls, 1)
            n_inst = math.ceil(count / share)
            cost = ALM_COST[cls]
            if is_double:
                cost = int(cost * F64_AREA_FACTOR)
            alms += n_inst * cost
            key = cls + ("_f64" if is_double else "")
            instances[key] = instances.get(key, 0) + n_inst

        dynamic_mw = energy_pj * self.clock_mhz * self.activity / 1000.0
        return HLSReport(
            function=frame.region.function.name,
            kind=frame.region.kind,
            ops=ops,
            alms=alms,
            alm_fraction=alms / self.alm_budget,
            dynamic_power_mw=dynamic_mw,
            static_power_mw=FPGA_STATIC_MW,
            fu_instances=instances,
        )
