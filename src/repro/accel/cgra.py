"""CGRA fabric model and resource-constrained frame scheduling (§VI).

The fabric is the Table V 16×8 grid of general function units.  A frame maps
spatially: each frame op occupies one FU; frames larger than the fabric need
multiple configurations, each switch costing the 16-cycle reconfiguration
penalty.  Execution is dataflow: the schedule below is classic
resource-constrained list scheduling over the frame's *speculative*
dependence graph (loads hoist above stores; guards depend only on their
predicates and never block compute).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..frames.frame import Frame, FrameOp, PsiOp
from ..ir.instructions import LATENCY, Load, Phi, Store
from ..ir.values import Value
from ..sim.config import CGRAConfig


@dataclass
class ScheduledOp:
    """Placement of one frame op."""

    frame_op: FrameOp
    start: int
    finish: int
    deps: List[int] = field(default_factory=list)


@dataclass
class ScheduleResult:
    """Outcome of mapping one frame onto the fabric."""

    cycles: int  # schedule makespan including intra-frame reconfigs
    n_configs: int  # how many fabric configurations the frame needs
    fu_count: int = 128
    #: initiation interval for back-to-back invocations of the same frame
    #: (dataflow pipelining across loop iterations, §IV-A's motivation)
    initiation_interval: int = 1
    resource_ii: int = 1
    recurrence_ii: int = 1
    ops: List[ScheduledOp] = field(default_factory=list)
    int_ops: int = 0
    fp_ops: int = 0
    mem_ops: int = 0
    guard_ops: int = 0
    edges: int = 0

    @property
    def total_ops(self) -> int:
        return len(self.ops)

    @property
    def fu_utilization(self) -> float:
        """Busy FU-cycles over available FU-cycles."""
        if not self.ops or self.cycles == 0:
            return 0.0
        busy = sum(o.finish - o.start for o in self.ops)
        return busy / float(self.cycles * self.fu_count)

    @property
    def ilp(self) -> float:
        return self.total_ops / self.cycles if self.cycles else 0.0


class CGRAScheduler:
    """Maps frames onto the CGRA with list scheduling."""

    def __init__(
        self,
        config: Optional[CGRAConfig] = None,
        load_latency: float = 20.0,
        store_latency: float = 4.0,
    ):
        self.config = config or CGRAConfig()
        #: effective memory latencies (L2-level; refine via cache profiling)
        self.load_latency = load_latency
        self.store_latency = store_latency

    # -- dependence graph over frame ops ------------------------------------------

    def _build_deps(self, frame: Frame) -> List[List[int]]:
        """Per-op dependence lists (indices into frame.ops).

        Values are resolved through the frame's φ-resolution map, so a use of
        a cancelled φ depends on the op producing the replacement value; ψ
        ops depend on their predicate and both options; undo-log reads must
        precede their store (the store in turn waits for the undo read).
        """
        producer: Dict[object, int] = {}
        psi_index: Dict[int, int] = {}
        for i, fop in enumerate(frame.ops):
            if fop.kind == "op" and fop.inst is not None and not fop.inst.type.is_void:
                producer[fop.inst] = i
            elif fop.kind == "psi":
                psi_index[id(fop.psi)] = i
                producer[fop.psi.phi] = i

        def resolve(value) -> Optional[int]:
            seen = 0
            while isinstance(value, Phi) and seen < 64:
                res = frame.phi_resolution.get(value)
                if isinstance(res, PsiOp):
                    return psi_index.get(id(res))
                if res == "live-in" or res is None:
                    return None
                value = res
                seen += 1
            return producer.get(value)

        deps: List[List[int]] = []
        last_undo_for_store: Optional[int] = None
        for i, fop in enumerate(frame.ops):
            d: List[int] = []

            def add(j: Optional[int]) -> None:
                if j is not None and j != i and j not in d:
                    d.append(j)

            if fop.kind == "op":
                inst = fop.inst
                for operand in inst.operands:
                    add(resolve(operand))
                if isinstance(inst, Store) and i + 1 < len(frame.ops):
                    nxt = frame.ops[i + 1]
                    if nxt.kind == "undo":
                        # the store waits for its undo-log read (ordering is
                        # modelled by making the *store* depend on the read;
                        # the read itself only needs the address)
                        pass
            elif fop.kind == "undo":
                # undo reads the old value at the store's address
                store_inst = fop.inst
                add(resolve(store_inst.address))
            elif fop.kind == "guard":
                add(resolve(fop.guard.branch.cond))
            elif fop.kind == "psi":
                add(resolve(fop.psi.predicate) if fop.psi.predicate is not None else None)
                for _, v in fop.psi.options:
                    add(resolve(v))
            deps.append(d)

        # store -> undo ordering: store must not commit before its undo read
        for i, fop in enumerate(frame.ops):
            if fop.kind == "undo" and i > 0:
                prev = frame.ops[i - 1]
                if prev.kind == "op" and isinstance(prev.inst, Store):
                    deps[i - 1].append(i)  # store depends on undo read
        # store commit order (undo log replays in order)
        last_store: Optional[int] = None
        for i, fop in enumerate(frame.ops):
            if fop.kind == "op" and isinstance(fop.inst, Store):
                if last_store is not None and last_store not in deps[i]:
                    deps[i].append(last_store)
                last_store = i
        return deps

    def _latency(self, fop: FrameOp) -> int:
        if fop.kind == "guard":
            return 1
        if fop.kind == "psi":
            return 1
        if fop.kind == "undo":
            return max(1, int(round(self.load_latency)))
        inst = fop.inst
        if isinstance(inst, Load):
            return max(1, int(round(self.load_latency)))
        if isinstance(inst, Store):
            return max(1, int(round(self.store_latency)))
        return max(1, LATENCY[inst.opcode])

    # -- loop-carried recurrence ---------------------------------------------------

    def _chase(self, frame: Frame, value):
        """Follow φ-resolution chains to the terminal value."""
        seen = 0
        while isinstance(value, Phi) and seen < 64:
            res = frame.phi_resolution.get(value)
            if res == "live-in" or res is None or isinstance(res, PsiOp):
                return value if res == "live-in" else res
            value = res
            seen += 1
        return value

    def _recurrence_ii(
        self,
        frame: Frame,
        deps: List[List[int]],
        loop_carried: List[Tuple[Value, Value]],
    ) -> int:
        """Longest latency cycle through a single loop-carried φ.

        For each (entry φ, back-edge def) pair: the longest dependence path
        from an op consuming the φ to the op producing the def bounds how
        fast consecutive iterations can be initiated.
        """
        producer: Dict[object, int] = {}
        for i, fop in enumerate(frame.ops):
            if fop.kind == "op" and fop.inst is not None and not fop.inst.type.is_void:
                producer[fop.inst] = i
            elif fop.kind == "psi":
                producer[fop.psi.phi] = i

        worst = 1
        for phi, def_value in loop_carried:
            def_chased = self._chase(frame, def_value)
            if isinstance(def_chased, PsiOp):
                def_chased = def_chased.phi
            def_idx = producer.get(def_chased)
            if def_idx is None:
                continue
            dist: List[float] = [float("-inf")] * len(frame.ops)
            for i, fop in enumerate(frame.ops):
                consumes = False
                if fop.kind == "op" and fop.inst is not None:
                    operands = fop.inst.operands
                elif fop.kind == "psi":
                    operands = [v for _, v in fop.psi.options]
                elif fop.kind == "guard":
                    operands = [fop.guard.branch.cond]
                else:
                    operands = []
                for operand in operands:
                    if self._chase(frame, operand) is phi:
                        consumes = True
                        break
                base = self._latency(fop) if consumes else float("-inf")
                carried = max(
                    (dist[j] for j in deps[i] if j < i), default=float("-inf")
                )
                if carried != float("-inf"):
                    carried += self._latency(fop)
                dist[i] = max(base, carried)
            if dist[def_idx] != float("-inf"):
                worst = max(worst, int(dist[def_idx]))
        return worst

    # -- scheduling ------------------------------------------------------------------

    def schedule(
        self,
        frame: Frame,
        loop_carried: Optional[List[Tuple[Value, Value]]] = None,
    ) -> ScheduleResult:
        """List-schedule ``frame`` onto the fabric.

        ``loop_carried`` pairs (entry φ, back-edge definition) enable the
        recurrence-II computation for pipelined back-to-back invocations.
        """
        cfg = self.config
        deps = self._build_deps(frame)
        n = len(frame.ops)
        result = ScheduleResult(
            cycles=0,
            n_configs=max(1, math.ceil(n / cfg.fu_count)),
            fu_count=cfg.fu_count,
        )
        if n == 0:
            return result

        # per-cycle resource usage
        fu_used: Dict[int, int] = {}
        mem_used: Dict[int, int] = {}
        finish: List[int] = [0] * n
        scheduled: List[ScheduledOp] = []

        # deps lists may contain forward references (store->undo ordering),
        # so iterate until all placed (two passes suffice: the only forward
        # edge pattern is store after its undo read, adjacent ops)
        placed = [False] * n
        remaining = n
        guard_count = 0
        while remaining:
            progressed = False
            for i in range(n):
                if placed[i]:
                    continue
                if any(not placed[j] for j in deps[i]):
                    continue
                fop = frame.ops[i]
                ready = max((finish[j] for j in deps[i]), default=0)
                is_mem = (
                    fop.kind == "undo"
                    or (fop.kind == "op" and fop.inst is not None and fop.inst.is_memory)
                )
                issue_cap = min(cfg.fu_count, cfg.issue_width)
                cycle = ready
                while True:
                    if fu_used.get(cycle, 0) >= issue_cap:
                        cycle += 1
                        continue
                    if is_mem and mem_used.get(cycle, 0) >= cfg.memory_ports:
                        cycle += 1
                        continue
                    break
                fu_used[cycle] = fu_used.get(cycle, 0) + 1
                if is_mem:
                    mem_used[cycle] = mem_used.get(cycle, 0) + 1
                lat = self._latency(fop)
                finish[i] = cycle + lat
                scheduled.append(
                    ScheduledOp(frame_op=fop, start=cycle, finish=cycle + lat, deps=list(deps[i]))
                )
                placed[i] = True
                remaining -= 1
                progressed = True

                if fop.kind == "guard":
                    guard_count += 1
                elif is_mem:
                    result.mem_ops += 1
                elif fop.kind == "psi":
                    result.int_ops += 1
                elif fop.inst is not None and fop.inst.is_float:
                    result.fp_ops += 1
                else:
                    result.int_ops += 1
            if not progressed:
                raise RuntimeError("cyclic frame dependence graph")

        result.guard_ops = guard_count
        result.edges = sum(len(d) for d in deps)
        makespan = max(finish)
        # time-multiplexing over multiple fabric configurations
        reconfig = (result.n_configs - 1) * cfg.reconfig_cycles
        result.cycles = makespan + reconfig
        result.ops = scheduled

        # -- initiation interval for pipelined back-to-back invocations ------
        result.resource_ii = max(
            1,
            math.ceil(n / min(cfg.fu_count, cfg.issue_width)),
            math.ceil(result.mem_ops / cfg.memory_ports),
        )
        result.recurrence_ii = self._recurrence_ii(frame, deps, loop_carried or [])
        # Frames larger than the fabric are modulo-scheduled: each FU rotates
        # through ceil(ops/fu_count) operations per iteration, which is
        # exactly what resource_ii already charges.
        result.initiation_interval = max(result.resource_ii, result.recurrence_ii)
        return result
