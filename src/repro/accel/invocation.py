"""Accelerator invocation prediction (paper §V).

Before execution reaches an offload region's entry block the host must
decide whether to invoke the accelerator: a wrong invocation costs the whole
frame plus rollback.  The paper uses an *invocation history table* keyed by
recent control-flow history; we key it by the ids of the recently completed
paths (equivalent information, since a path id encodes the branch outcomes
that led here).  An Oracle predictor bounds the attainable benefit in
Fig. 9.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple


class OraclePredictor:
    """Knows the future: invoke exactly when the next path is offloadable."""

    def __init__(self, target_paths: Set[int]):
        self.targets = set(target_paths)

    def predict(self, history: Tuple[int, ...], actual_next: int) -> bool:
        return actual_next in self.targets

    def update(self, history: Tuple[int, ...], outcome: bool) -> None:
        pass


class HistoryPredictor:
    """2-bit saturating counters indexed by the last-k path ids.

    The predictor is deliberately *conservative*: it invokes only on a
    saturated counter (state 3), because a wrong invocation costs the whole
    frame plus rollback while a missed one merely runs the path on the host.
    Counters increment on offloadable outcomes and decrement otherwise.
    """

    def __init__(
        self,
        history_length: int = 3,
        init_counter: int = 1,
        invoke_threshold: int = 3,
    ):
        self.history_length = history_length
        self.init_counter = init_counter
        self.invoke_threshold = invoke_threshold
        self.table: Dict[Tuple[int, ...], int] = {}

    def predict(self, history: Tuple[int, ...], actual_next: int = -1) -> bool:
        return self.table.get(history, self.init_counter) >= self.invoke_threshold

    def update(self, history: Tuple[int, ...], outcome: bool) -> None:
        c = self.table.get(history, self.init_counter)
        c = min(3, c + 1) if outcome else max(0, c - 1)
        self.table[history] = c


@dataclass
class PredictorEvaluation:
    """Invocation decisions over a path trace, with accuracy statistics."""

    decisions: List[bool] = field(default_factory=list)  # invoke at step k?
    outcomes: List[bool] = field(default_factory=list)  # was path k offloadable?
    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        d = self.true_positives + self.false_positives
        return self.true_positives / d if d else 1.0

    @property
    def recall(self) -> float:
        d = self.true_positives + self.false_negatives
        return self.true_positives / d if d else 0.0

    @property
    def invocations(self) -> int:
        return self.true_positives + self.false_positives


def evaluate_predictor(
    trace: Sequence[int],
    target_paths: Set[int],
    predictor,
    history_length: int = 3,
) -> PredictorEvaluation:
    """Replay a path trace through a predictor, training online.

    At step ``k`` the predictor sees the ids of the previous
    ``history_length`` paths and decides whether to launch the accelerator
    for the upcoming one.
    """
    ev = PredictorEvaluation()
    history: deque = deque(maxlen=history_length)
    for pid in trace:
        key = tuple(history)
        invoke = predictor.predict(key, pid)
        offloadable = pid in target_paths
        ev.decisions.append(invoke)
        ev.outcomes.append(offloadable)
        if invoke and offloadable:
            ev.true_positives += 1
        elif invoke:
            ev.false_positives += 1
        elif offloadable:
            ev.false_negatives += 1
        else:
            ev.true_negatives += 1
        predictor.update(key, offloadable)
        history.append(pid)
    return ev


@dataclass
class RunPredictorEvaluation:
    """Run-level invocation decisions: (pid, invoke, length) segments.

    The segments partition the trace in order; within a segment the path
    id and the predictor's decision are constant, so downstream
    accounting folds each segment in closed form.  The accuracy census
    carries the same four integers as :class:`PredictorEvaluation` and
    must match it exactly (the trace-kernel property tests enforce this).
    """

    segments: List[Tuple[int, bool, int]] = field(default_factory=list)
    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    #: the same segments as parallel (pids, invoke, lengths) columns —
    #: arrays or lists — populated by the array-kernel replays so the
    #: columnar census fold can skip the per-segment conversion.  Class
    #: attribute default: absent unless a kernel provides it.
    segment_columns = None

    @property
    def precision(self) -> float:
        d = self.true_positives + self.false_positives
        return self.true_positives / d if d else 1.0

    @property
    def recall(self) -> float:
        d = self.true_positives + self.false_negatives
        return self.true_positives / d if d else 0.0

    @property
    def invocations(self) -> int:
        return self.true_positives + self.false_positives


#: constant-key predictor updates needed to saturate a 2-bit counter from
#: any state; after ``history_length`` in-run steps the history key is
#: pinned, and one more update beyond saturation proves stability
_SATURATION_STEPS = 4


def evaluate_predictor_runs(
    runs: Sequence[Tuple[int, int]],
    target_paths: Set[int],
    predictor,
    history_length: int = 3,
) -> RunPredictorEvaluation:
    """Replay a *run-length encoded* path trace through a predictor.

    Exactly equivalent to :func:`evaluate_predictor` over the expanded
    trace, but O(#runs) instead of O(#events): within a run of one path
    id the predictor's inputs stabilise — after ``history_length`` steps
    the history key is a constant ``(pid,) * history_length``, and the
    per-key 2-bit counter saturates monotonically under the run's
    constant outcome within :data:`_SATURATION_STEPS` further updates
    (saturated updates are no-ops).  So each run is simulated explicitly
    for at most ``history_length + _SATURATION_STEPS`` events and its
    tail is closed in one step.  This holds for any predictor whose
    decision depends only on the history key and per-key monotone
    saturating state — both :class:`OraclePredictor` (stateless) and
    :class:`HistoryPredictor` qualify.
    """
    ev = RunPredictorEvaluation()
    segments = ev.segments
    history: deque = deque(maxlen=history_length)
    explicit_cap = history_length + _SATURATION_STEPS

    def account(invoke: bool, offloadable: bool, n: int) -> None:
        if invoke and offloadable:
            ev.true_positives += n
        elif invoke:
            ev.false_positives += n
        elif offloadable:
            ev.false_negatives += n
        else:
            ev.true_negatives += n

    def emit(pid: int, invoke: bool, n: int) -> None:
        if segments and segments[-1][0] == pid and segments[-1][1] == invoke:
            segments[-1] = (pid, invoke, segments[-1][2] + n)
        else:
            segments.append((pid, invoke, n))

    for pid, length in runs:
        offloadable = pid in target_paths
        explicit = min(length, explicit_cap)
        for _ in range(explicit):
            key = tuple(history)
            invoke = predictor.predict(key, pid)
            account(invoke, offloadable, 1)
            emit(pid, invoke, 1)
            predictor.update(key, offloadable)
            history.append(pid)
        tail = length - explicit
        if tail > 0:
            # history is pinned at (pid,)*history_length and the counter
            # is saturated: decision constant, updates no-ops
            invoke = predictor.predict(tuple(history), pid)
            account(invoke, offloadable, tail)
            emit(pid, invoke, tail)
    return ev


def _oracle_runs_array(runs, target_paths, predictor, np, columns=None):
    """Closed-form oracle replay over run columns.

    The oracle is stateless and history-free: every event of a run gets
    the same decision (``pid in predictor.targets``), so each maximal
    run collapses to one segment and the accuracy census to masked
    length sums.  Returns ``None`` when the runs are not maximal
    (adjacent equal path ids) — then segment merging reappears and the
    sequential fold handles it.

    ``columns`` is the (pids, lengths) column view of ``runs`` when the
    caller already has it (:meth:`~repro.sim.trace_kernels.RLETrace.
    columns` caches it per workload) — it skips the one remaining
    Python-level pass over the run list.
    """
    if columns is not None:
        pids, lens = columns
        keep = lens > 0
        if not bool(keep.all()):
            pids, lens = pids[keep], lens[keep]
        n = len(lens)
        if n == 0:
            return RunPredictorEvaluation()
    else:
        runs = [(pid, length) for pid, length in runs if length > 0]
        if not runs:
            return RunPredictorEvaluation()
        n = len(runs)
        flat = np.fromiter(
            (x for run in runs for x in run), dtype=np.int64, count=2 * n
        ).reshape(n, 2)
        pids = flat[:, 0]
        lens = flat[:, 1]
    if n > 1 and bool((pids[1:] == pids[:-1]).any()):
        return None

    def column(ids):
        if not ids:
            return np.empty(0, dtype=np.int64)
        return np.fromiter(ids, dtype=np.int64, count=len(ids))

    invoke = np.isin(pids, column(predictor.targets))
    offloadable = np.isin(pids, column(target_paths))
    ev = RunPredictorEvaluation()
    ev.true_positives = int(lens[invoke & offloadable].sum())
    ev.false_positives = int(lens[invoke & ~offloadable].sum())
    ev.false_negatives = int(lens[~invoke & offloadable].sum())
    ev.true_negatives = int(lens[~invoke & ~offloadable].sum())
    ev.segments = list(zip(pids.tolist(), invoke.tolist(), lens.tolist()))
    ev.segment_columns = (pids, invoke, lens)
    return ev


def _history_runs_inlined(runs, target_paths, predictor, history_length):
    """Specialised :func:`evaluate_predictor_runs` for the 2-bit table.

    Same explicit-prefix/closed-tail structure, but with the predictor's
    ``predict``/``update`` dispatch inlined against local bindings of
    its table and thresholds — the batched pure-Python tier for the
    predictor whose sequential table state defeats columnar replay.
    """
    ev = RunPredictorEvaluation()
    # parallel segment columns with in-place merge: the columnar census
    # fold downstream consumes them directly, and appending to three
    # lists beats re-building a (pid, invoke, len) tuple on every merge
    seg_pids: list = []
    seg_invs: list = []
    seg_lens: list = []
    history: deque = deque(maxlen=history_length)
    explicit_cap = history_length + _SATURATION_STEPS
    table = predictor.table
    init_counter = predictor.init_counter
    invoke_threshold = predictor.invoke_threshold
    tp = fp = tn = fn = 0

    for pid, length in runs:
        offloadable = pid in target_paths
        explicit = min(length, explicit_cap)
        for _ in range(explicit):
            key = tuple(history)
            c = table.get(key, init_counter)
            invoke = c >= invoke_threshold
            if invoke:
                if offloadable:
                    tp += 1
                else:
                    fp += 1
            elif offloadable:
                fn += 1
            else:
                tn += 1
            if seg_pids and seg_pids[-1] == pid and seg_invs[-1] == invoke:
                seg_lens[-1] += 1
            else:
                seg_pids.append(pid)
                seg_invs.append(invoke)
                seg_lens.append(1)
            table[key] = min(3, c + 1) if offloadable else max(0, c - 1)
            history.append(pid)
        tail = length - explicit
        if tail > 0:
            invoke = (
                table.get(tuple(history), init_counter) >= invoke_threshold
            )
            if invoke:
                if offloadable:
                    tp += tail
                else:
                    fp += tail
            elif offloadable:
                fn += tail
            else:
                tn += tail
            if seg_pids and seg_pids[-1] == pid and seg_invs[-1] == invoke:
                seg_lens[-1] += tail
            else:
                seg_pids.append(pid)
                seg_invs.append(invoke)
                seg_lens.append(tail)
    ev.segments = list(zip(seg_pids, seg_invs, seg_lens))
    ev.segment_columns = (seg_pids, seg_invs, seg_lens)
    ev.true_positives = tp
    ev.false_positives = fp
    ev.true_negatives = tn
    ev.false_negatives = fn
    return ev


def evaluate_predictor_runs_array(
    runs: Sequence[Tuple[int, int]],
    target_paths: Set[int],
    predictor,
    history_length: int = 3,
    columns=None,
) -> RunPredictorEvaluation:
    """Array-kernel replay of an RLE path trace through a predictor.

    Returns exactly what :func:`evaluate_predictor_runs` returns (the
    trace-kernel property tests enforce equality) but picks the fastest
    evaluation shape per predictor type:

    * :class:`OraclePredictor` — fully closed form over (pid, length)
      columns: stateless decisions make every run one segment and the
      accuracy census four masked sums.
    * :class:`HistoryPredictor` — the sequential run fold with the
      table dispatch inlined (per-key saturating state is inherently
      sequential; the run fold is already O(#runs)).
    * anything else — delegates to the generic run fold.

    Without numpy (or with :data:`~repro.sim.array_kernels.
    FORCE_PYTHON_ENV` set) the generic/inlined folds *are* the batched
    pure-Python fallback.

    ``columns`` is an optional pre-built (pids, lengths) column view of
    ``runs`` (see :meth:`~repro.sim.trace_kernels.RLETrace.columns`);
    the oracle path uses it to skip rebuilding the columns per call.
    """
    from ..sim.array_kernels import get_numpy

    np = get_numpy()
    if np is not None and type(predictor) is OraclePredictor:
        ev = _oracle_runs_array(runs, target_paths, predictor, np, columns)
        if ev is not None:
            return ev
    if type(predictor) is HistoryPredictor:
        return _history_runs_inlined(
            runs, target_paths, predictor, history_length
        )
    return evaluate_predictor_runs(
        runs, target_paths, predictor, history_length
    )
