"""Accelerator invocation prediction (paper §V).

Before execution reaches an offload region's entry block the host must
decide whether to invoke the accelerator: a wrong invocation costs the whole
frame plus rollback.  The paper uses an *invocation history table* keyed by
recent control-flow history; we key it by the ids of the recently completed
paths (equivalent information, since a path id encodes the branch outcomes
that led here).  An Oracle predictor bounds the attainable benefit in
Fig. 9.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple


class OraclePredictor:
    """Knows the future: invoke exactly when the next path is offloadable."""

    def __init__(self, target_paths: Set[int]):
        self.targets = set(target_paths)

    def predict(self, history: Tuple[int, ...], actual_next: int) -> bool:
        return actual_next in self.targets

    def update(self, history: Tuple[int, ...], outcome: bool) -> None:
        pass


class HistoryPredictor:
    """2-bit saturating counters indexed by the last-k path ids.

    The predictor is deliberately *conservative*: it invokes only on a
    saturated counter (state 3), because a wrong invocation costs the whole
    frame plus rollback while a missed one merely runs the path on the host.
    Counters increment on offloadable outcomes and decrement otherwise.
    """

    def __init__(
        self,
        history_length: int = 3,
        init_counter: int = 1,
        invoke_threshold: int = 3,
    ):
        self.history_length = history_length
        self.init_counter = init_counter
        self.invoke_threshold = invoke_threshold
        self.table: Dict[Tuple[int, ...], int] = {}

    def predict(self, history: Tuple[int, ...], actual_next: int = -1) -> bool:
        return self.table.get(history, self.init_counter) >= self.invoke_threshold

    def update(self, history: Tuple[int, ...], outcome: bool) -> None:
        c = self.table.get(history, self.init_counter)
        c = min(3, c + 1) if outcome else max(0, c - 1)
        self.table[history] = c


@dataclass
class PredictorEvaluation:
    """Invocation decisions over a path trace, with accuracy statistics."""

    decisions: List[bool] = field(default_factory=list)  # invoke at step k?
    outcomes: List[bool] = field(default_factory=list)  # was path k offloadable?
    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        d = self.true_positives + self.false_positives
        return self.true_positives / d if d else 1.0

    @property
    def recall(self) -> float:
        d = self.true_positives + self.false_negatives
        return self.true_positives / d if d else 0.0

    @property
    def invocations(self) -> int:
        return self.true_positives + self.false_positives


def evaluate_predictor(
    trace: Sequence[int],
    target_paths: Set[int],
    predictor,
    history_length: int = 3,
) -> PredictorEvaluation:
    """Replay a path trace through a predictor, training online.

    At step ``k`` the predictor sees the ids of the previous
    ``history_length`` paths and decides whether to launch the accelerator
    for the upcoming one.
    """
    ev = PredictorEvaluation()
    history: deque = deque(maxlen=history_length)
    for pid in trace:
        key = tuple(history)
        invoke = predictor.predict(key, pid)
        offloadable = pid in target_paths
        ev.decisions.append(invoke)
        ev.outcomes.append(offloadable)
        if invoke and offloadable:
            ev.true_positives += 1
        elif invoke:
            ev.false_positives += 1
        elif offloadable:
            ev.false_negatives += 1
        else:
            ev.true_negatives += 1
        predictor.update(key, offloadable)
        history.append(pid)
    return ev
