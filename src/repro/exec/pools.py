"""Backend-agnostic worker pools: serial, warm processes, threads.

The fail-safe suite runner (:func:`repro.resilience.runner.run_failsafe`)
used to be hardwired to a :class:`concurrent.futures.ProcessPoolExecutor`
— which coupled *what jobs exist* (retry, timeout, quarantine, blame) to
*where they run*, and paid a fresh executor's spawn/teardown plus
full-snapshot pickling on every sweep.  This module separates the two:
the runner speaks one small :class:`Pool` protocol and every backend
implements it.

    pool.start()
    ticket = pool.submit(fn, args, key="164.gzip")
    for c in pool.wait(timeout=0.5):      # [Completion(ticket, ...)]
        ...
    pool.running()                        # {ticket: started_monotonic}
    pool.evict(ticket)                    # kill/abandon just that task
    pool.reset()                          # careful-mode: drop everything
    pool.close(graceful=True)

Backends:

* :class:`SerialPool` — runs tasks inline in the calling thread.  Not
  preemptive: there is nobody outside the task to enforce a deadline.
* :class:`ProcessPool` — warm persistent worker processes (``fork``
  start method where available, so imports are inherited rather than
  re-paid) connected by one duplex pipe each.  Workers send a ``start``
  notification before running a task, so deadlines measure *execution*
  time, not queue time — and when a worker dies the parent knows exactly
  which task it was running and blames only that one, instead of the
  whole-pool ``BrokenProcessPool`` teardown the old executor forced.
* :class:`ThreadPool` — warm daemon threads.  Python-level semantics
  (timeouts via abandonment, simulated crashes, thread-scoped obs and
  fault state) are identical to the process backend; CPU-bound pure
  Python does not scale across threads, but GIL-releasing work does.

All three deliver the same observable behaviour for the same task list,
which is what lets the suite assert byte-identical evaluation records,
obs registries and attribution ledgers across ``--pool`` choices.
"""

from __future__ import annotations

import collections
import itertools
import multiprocessing
import multiprocessing.connection
import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import obs
from . import worker as worker_context
from .worker import WorkerCrashed

__all__ = [
    "Completion",
    "POOL_BACKENDS",
    "Pool",
    "PoolBroken",
    "ProcessPool",
    "SerialPool",
    "ThreadPool",
    "WorkerCrashed",
    "default_pool_width",
    "make_pool",
]

#: backend names accepted by :func:`make_pool`
POOL_BACKENDS = ("serial", "process", "thread")

#: tasks a worker may hold at once (1 running + the rest queued locally,
#: so a worker that finishes never idles waiting for the parent's next
#: scheduling pass)
_PREFETCH = 2


class PoolBroken(RuntimeError):
    """The backend failed in a way that cannot be blamed on one task.

    The runner answers by entering careful mode: reset the pool and
    resubmit outstanding work one task at a time.
    """


@dataclass
class Completion:
    """One finished submission, as handed back by :meth:`Pool.wait`."""

    ticket: int
    result: object = None
    error: Optional[BaseException] = None
    worker: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None


def default_pool_width() -> int:
    """Worker count when the caller named a backend but not ``jobs``."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class Pool:
    """Abstract worker pool: submit tasks, collect completions.

    Contract, kept identical across backends so the runner above never
    branches on the backend:

    * :meth:`submit` returns an opaque integer ticket; tasks may run in
      any order but each ticket completes exactly once (unless evicted).
    * :meth:`wait` blocks up to ``timeout`` seconds for completions and
      returns possibly-empty ``[Completion]``.  It may raise
      :class:`PoolBroken` if the backend failed unattributably.
    * :meth:`running` maps tickets to the monotonic time their task
      actually *started executing* (not when it was submitted), which is
      what per-attempt deadlines are measured against.
    * :meth:`evict` abandons one task: kill the process / abandon the
      thread running it, silently requeue any other tasks that worker
      held, and never deliver a completion for the evicted ticket.
    * :meth:`reset` drops all queued and running work (careful-mode
      entry); the caller resubmits what it still wants.
    """

    name = "abstract"
    #: whether deadlines are enforceable (a running task can be evicted)
    preemptive = True

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = max(1, int(jobs) if jobs is not None else 1)
        self._tickets = itertools.count()
        self._started: Dict[int, float] = {}
        #: seconds between worker heartbeats; None = heartbeats off
        self.heartbeat_period: Optional[float] = None
        self._heartbeats: Dict[int, tuple] = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        raise NotImplementedError

    def close(self, graceful: bool = True) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Pool":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(graceful=exc_type is None)

    # -- submission / completion -------------------------------------------

    def submit(self, fn, args=(), key: str = "") -> int:
        raise NotImplementedError

    def wait(self, timeout: Optional[float] = None) -> List[Completion]:
        raise NotImplementedError

    def running(self) -> Dict[int, float]:
        """Tickets currently executing -> monotonic start time."""
        return dict(self._started)

    def evict(self, ticket: int) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    # -- heartbeats --------------------------------------------------------

    def set_heartbeat(self, period: Optional[float]) -> None:
        """Ask workers to report (task, phase, elapsed) every ``period``
        seconds.  Call before :meth:`start`.  Silently ignored on
        non-preemptive backends — a serial "worker" is the caller, so
        there is nobody to hear the beat (and nothing to do about a
        stall anyway).
        """
        if period and period > 0 and self.preemptive:
            self.heartbeat_period = float(period)

    def heartbeats(self) -> Dict[int, tuple]:
        """Latest heartbeat per running ticket:
        ``{ticket: (seen_monotonic, payload, worker_name)}``.

        ``payload`` is the worker's report — ``{"elapsed": s, "phase":
        name}``.  Entries disappear when their task completes or its
        worker is retired, so a ticket present here is believed alive.
        """
        return dict(self._heartbeats)

    # -- shared helpers ----------------------------------------------------

    def _note_respawn(self) -> None:
        if obs.enabled():
            obs.counter(
                "resilience.pool_respawns", 1,
                help="pool workers respawned after crash/hang/timeout",
            )


# -- serial ------------------------------------------------------------------


class SerialPool(Pool):
    """Run every task inline, one at a time, in the calling thread.

    Identical retry/quarantine/fault semantics to the real pools, minus
    preemption: a task that never returns can never be timed out, so the
    runner skips deadline enforcement here (and serial workers report
    ``preemptive() == False``, which is how the ``worker.hang`` chaos
    site knows to stand down).
    """

    name = "serial"
    preemptive = False

    def __init__(self, jobs: Optional[int] = None):
        super().__init__(jobs=1)
        self._backlog: collections.deque = collections.deque()

    def start(self) -> None:
        pass

    def close(self, graceful: bool = True) -> None:
        self._backlog.clear()

    def submit(self, fn, args=(), key: str = "") -> int:
        ticket = next(self._tickets)
        self._backlog.append((ticket, fn, args))
        return ticket

    def wait(self, timeout: Optional[float] = None) -> List[Completion]:
        if not self._backlog:
            return []
        ticket, fn, args = self._backlog.popleft()
        self._started[ticket] = time.monotonic()
        worker_context.enter("serial", can_preempt=False)
        try:
            result = fn(*args)
        except Exception as exc:
            return [Completion(ticket, error=exc, worker="serial")]
        finally:
            worker_context.leave()
            self._started.pop(ticket, None)
        return [Completion(ticket, result=result, worker="serial")]

    def evict(self, ticket: int) -> None:
        self._backlog = collections.deque(
            t for t in self._backlog if t[0] != ticket)

    def reset(self) -> None:
        self._backlog.clear()
        self._started.clear()


# -- worker-side heartbeat reporter ------------------------------------------


class _Beat:
    """Worker-side heartbeat: a daemon thread beside the task loop.

    The loop marks the running ticket with :meth:`begin`/:meth:`end`;
    every ``period`` seconds the beat thread emits ``(ticket,
    {"elapsed", "phase"})`` through the pool's normal result channel.
    ``phase`` is whatever the task last declared via
    :func:`repro.exec.worker.set_phase` ("run" until it says
    otherwise).  Emission failures stop the beat silently — a broken
    channel means the parent is gone and the worker is about to die
    anyway.
    """

    def __init__(self, period: float, emit) -> None:
        self._period = period
        self._emit = emit
        self._lock = threading.Lock()
        self._ticket: Optional[int] = None
        self._since = 0.0
        self.phase = "run"
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-pool-beat", daemon=True)

    def start(self) -> None:
        self._thread.start()

    def begin(self, ticket: int) -> None:
        with self._lock:
            self._ticket = ticket
            self._since = time.monotonic()
            self.phase = "run"
        worker_context.attach_beat(self)

    def end(self) -> None:
        worker_context.attach_beat(None)
        with self._lock:
            self._ticket = None

    def _loop(self) -> None:
        while not self._stop.wait(self._period):
            with self._lock:
                ticket = self._ticket
                if ticket is None:
                    continue
                payload = {
                    "elapsed": round(time.monotonic() - self._since, 3),
                    "phase": self.phase,
                }
            try:
                self._emit(ticket, payload)
            except Exception:
                return

    def stop(self) -> None:
        self._stop.set()


# -- threads -----------------------------------------------------------------


def _thread_worker_main(name: str, inbox, results,
                        heartbeat: Optional[float] = None) -> None:
    worker_context.enter("thread", can_preempt=True)
    beat = None
    if heartbeat:
        beat = _Beat(heartbeat, lambda ticket, payload: results.put(
            ("heartbeat", name, ticket, payload)))
        beat.start()
    while True:
        msg = inbox.get()
        if msg is None:
            if beat is not None:
                beat.stop()
            return
        ticket, fn, args = msg
        results.put(("start", name, ticket, None))
        if beat is not None:
            beat.begin(ticket)
        try:
            value = fn(*args)
        except Exception as exc:
            results.put(("error", name, ticket, exc))
        else:
            results.put(("ok", name, ticket, value))
        finally:
            if beat is not None:
                beat.end()


class _ThreadWorker:
    __slots__ = ("name", "thread", "inbox", "assigned", "current")


class ThreadPool(Pool):
    """Warm daemon worker threads.

    Eviction abandons the whole thread (Python threads cannot be
    killed): the worker is dropped from the live set so anything it
    still reports is discarded, its queued tasks are requeued onto a
    fresh thread, and — being a daemon — a permanently hung thread
    cannot block interpreter exit.
    """

    name = "thread"

    def __init__(self, jobs: Optional[int] = None):
        super().__init__(jobs)
        self._results: queue.SimpleQueue = queue.SimpleQueue()
        self._workers: List[_ThreadWorker] = []
        self._live: Dict[str, _ThreadWorker] = {}
        self._backlog: collections.deque = collections.deque()
        self._owner: Dict[int, _ThreadWorker] = {}
        self._seq = itertools.count()

    def start(self) -> None:
        while len(self._workers) < self.jobs:
            self._workers.append(self._spawn())

    def _spawn(self) -> _ThreadWorker:
        w = _ThreadWorker()
        w.name = "thread-%d" % next(self._seq)
        w.inbox = queue.SimpleQueue()
        w.assigned = {}
        w.current = None
        w.thread = threading.Thread(
            target=_thread_worker_main,
            args=(w.name, w.inbox, self._results, self.heartbeat_period),
            name="repro-pool-%s" % w.name,
            daemon=True,
        )
        w.thread.start()
        self._live[w.name] = w
        return w

    def _load(self, w: _ThreadWorker) -> int:
        return len(w.assigned)

    def _flush(self) -> None:
        while self._backlog and self._workers:
            w = min(self._workers, key=self._load)
            if self._load(w) >= _PREFETCH:
                return
            item = self._backlog.popleft()
            w.assigned[item[0]] = item
            self._owner[item[0]] = w
            w.inbox.put(item)

    def submit(self, fn, args=(), key: str = "") -> int:
        ticket = next(self._tickets)
        self._backlog.append((ticket, fn, args))
        return ticket

    def wait(self, timeout: Optional[float] = None) -> List[Completion]:
        self._flush()
        comps: List[Completion] = []
        started = 0
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if comps or started:
                # a start notification wakes the caller so it can put a
                # deadline on the newly running task; drain what's left
                # without blocking
                try:
                    msg = self._results.get_nowait()
                except queue.Empty:
                    break
            else:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    break
                try:
                    msg = self._results.get(timeout=remaining)
                except queue.Empty:
                    break
            started += self._dispatch(msg, comps)
        if comps:
            self._flush()
        return comps

    def _dispatch(self, msg, comps: List[Completion]) -> int:
        """Apply one worker message; returns 1 for a start notification."""
        kind, name, ticket, payload = msg
        w = self._live.get(name)
        if w is None:
            return 0  # abandoned worker still talking: drop it
        if kind == "start":
            w.current = ticket
            self._started[ticket] = time.monotonic()
            return 1
        if kind == "heartbeat":
            self._heartbeats[ticket] = (time.monotonic(), payload, name)
            return 0
        w.assigned.pop(ticket, None)
        if w.current == ticket:
            w.current = None
        self._started.pop(ticket, None)
        self._owner.pop(ticket, None)
        self._heartbeats.pop(ticket, None)
        if kind == "ok":
            comps.append(Completion(ticket, result=payload, worker=name))
        else:
            comps.append(Completion(ticket, error=payload, worker=name))
        return 0

    def _abandon(self, w: _ThreadWorker, drop: Optional[int]) -> None:
        """Stop listening to ``w``; requeue all but the ``drop`` ticket."""
        self._live.pop(w.name, None)
        if w in self._workers:
            self._workers.remove(w)
        try:
            while True:
                w.inbox.get_nowait()
        except queue.Empty:
            pass
        w.inbox.put(None)  # whenever the stall ends, the thread exits
        requeue = []
        for ticket, item in w.assigned.items():
            self._owner.pop(ticket, None)
            self._started.pop(ticket, None)
            self._heartbeats.pop(ticket, None)
            if ticket != drop:
                requeue.append(item)
        self._backlog.extendleft(reversed(requeue))

    def evict(self, ticket: int) -> None:
        w = self._owner.get(ticket)
        if w is None:
            self._backlog = collections.deque(
                t for t in self._backlog if t[0] != ticket)
            return
        self._abandon(w, drop=ticket)
        self._workers.append(self._spawn())
        self._note_respawn()

    def reset(self) -> None:
        for w in list(self._workers):
            self._abandon(w, drop=None)
        self._backlog.clear()
        self._owner.clear()
        self._started.clear()
        self._heartbeats.clear()
        self.start()

    def close(self, graceful: bool = True) -> None:
        for w in self._workers:
            if not graceful:
                try:
                    while True:
                        w.inbox.get_nowait()
                except queue.Empty:
                    pass
            w.inbox.put(None)
        if graceful:
            for w in self._workers:
                w.thread.join(timeout=2.0)
        self._workers = []
        self._live.clear()
        self._backlog.clear()
        self._owner.clear()
        self._started.clear()
        self._heartbeats.clear()


# -- processes ---------------------------------------------------------------


def _send_safe(send, kind: str, ticket: int, payload) -> None:
    try:
        send((kind, ticket, payload))
    except (BrokenPipeError, OSError):
        raise
    except Exception as exc:  # unpicklable result/exception
        send(("error", ticket, RuntimeError(
            "unpicklable task %s payload: %r" % (kind, exc))))


def _process_worker_main(conn, name: str,
                         heartbeat: Optional[float] = None) -> None:
    worker_context.enter("process", can_preempt=True)
    # once heartbeats exist the pipe is written from two threads (the
    # task loop and the beat thread); Connection.send is not atomic
    # across threads, so all writes go through one lock
    send_lock = threading.Lock()

    def send(msg) -> None:
        with send_lock:
            conn.send(msg)

    beat = None
    if heartbeat:
        beat = _Beat(heartbeat, lambda ticket, payload: send(
            ("heartbeat", ticket, payload)))
        beat.start()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        for ticket, fn, args in msg:
            try:
                send(("start", ticket))
            except (BrokenPipeError, OSError):
                return
            if beat is not None:
                beat.begin(ticket)
            try:
                value = fn(*args)
            except Exception as exc:
                payload, kind = exc, "error"
            else:
                payload, kind = value, "ok"
            finally:
                if beat is not None:
                    beat.end()
            try:
                _send_safe(send, kind, ticket, payload)
            except (BrokenPipeError, OSError):
                return


class _ProcWorker:
    __slots__ = ("name", "proc", "conn", "assigned", "current", "killing")


class ProcessPool(Pool):
    """Warm persistent worker processes over duplex pipes.

    This is the fix for the old executor's per-sweep costs: workers are
    forked once (inheriting every already-loaded module, so the
    interpreter/numpy import bill is paid zero extra times), stay warm
    across tasks, and receive submissions in batches over their pipe.
    Each worker reports ``("start", ticket)`` before executing, giving
    the parent exact knowledge of *which* task a dead worker was running
    — so a crash quarantines one task and respawns one process, where
    ``BrokenProcessPool`` used to tear down and restart the entire pool
    and guess at blame.
    """

    name = "process"

    def __init__(self, jobs: Optional[int] = None):
        super().__init__(jobs)
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        self._workers: List[_ProcWorker] = []
        self._backlog: collections.deque = collections.deque()
        self._owner: Dict[int, _ProcWorker] = {}
        self._spill: List[Completion] = []
        self._seq = itertools.count()

    def start(self) -> None:
        while len(self._workers) < self.jobs:
            self._workers.append(self._spawn())

    def _spawn(self) -> _ProcWorker:
        w = _ProcWorker()
        w.name = "proc-%d" % next(self._seq)
        w.assigned = {}
        w.current = None
        w.killing = False
        try:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            w.conn = parent_conn
            w.proc = self._ctx.Process(
                target=_process_worker_main,
                args=(child_conn, w.name, self.heartbeat_period),
                name="repro-pool-%s" % w.name,
                daemon=True,
            )
            w.proc.start()
            child_conn.close()
        except Exception as exc:
            raise PoolBroken("could not start pool worker: %s" % (exc,))
        return w

    def _load(self, w: _ProcWorker) -> int:
        return len(w.assigned)

    def _flush(self, comps: List[Completion]) -> None:
        outbox: Dict[str, tuple] = {}
        while self._backlog and self._workers:
            w = min(self._workers, key=self._load)
            if self._load(w) >= _PREFETCH:
                break
            item = self._backlog.popleft()
            w.assigned[item[0]] = item
            self._owner[item[0]] = w
            outbox.setdefault(w.name, (w, []))[1].append(item)
        for w, batch in outbox.values():
            try:
                w.conn.send(batch)
            except Exception:
                self._retire(w, drop=None, blame=w.current, comps=comps)

    def submit(self, fn, args=(), key: str = "") -> int:
        ticket = next(self._tickets)
        self._backlog.append((ticket, fn, args))
        return ticket

    def wait(self, timeout: Optional[float] = None) -> List[Completion]:
        comps, self._spill = self._spill, []
        self._flush(comps)
        started = self._poll(comps)
        if comps or started:
            # start notifications wake the caller so it can deadline the
            # newly running tasks
            self._flush(comps)
            return comps
        deadline = None if timeout is None else time.monotonic() + timeout
        while not comps:
            objs = []
            for w in self._workers:
                objs.append(w.conn)
                objs.append(w.proc.sentinel)
            if not objs:
                break
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                break
            ready = multiprocessing.connection.wait(objs, timeout=remaining)
            if not ready:
                break
            if self._poll(comps):
                break
        if comps:
            self._flush(comps)
        return comps

    def _poll(self, comps: List[Completion]) -> int:
        """Drain every worker pipe; reap and replace any dead worker.

        Returns the number of start notifications seen."""
        started = 0
        for w in list(self._workers):
            dead = False
            try:
                while w.conn.poll():
                    started += self._dispatch(w, w.conn.recv(), comps)
            except (EOFError, OSError):
                dead = True
            except Exception:
                # a message we could not unpickle: the stream is
                # unusable, treat the worker as lost
                dead = True
            if dead or not w.proc.is_alive():
                self._retire(w, drop=None, blame=w.current, comps=comps)
        return started

    def _dispatch(self, w: _ProcWorker, msg, comps: List[Completion]) -> int:
        kind, ticket = msg[0], msg[1]
        if kind == "start":
            w.current = ticket
            self._started[ticket] = time.monotonic()
            return 1
        if kind == "heartbeat":
            self._heartbeats[ticket] = (time.monotonic(), msg[2], w.name)
            return 0
        w.assigned.pop(ticket, None)
        if w.current == ticket:
            w.current = None
        self._started.pop(ticket, None)
        self._owner.pop(ticket, None)
        self._heartbeats.pop(ticket, None)
        payload = msg[2]
        if kind == "ok":
            comps.append(Completion(ticket, result=payload, worker=w.name))
        else:
            comps.append(Completion(ticket, error=payload, worker=w.name))
        return 0

    def _retire(self, w: _ProcWorker, drop: Optional[int],
                blame: Optional[int], comps: List[Completion]) -> None:
        """Bury a dead (or deliberately killed) worker and respawn.

        ``blame`` — the ticket whose task took the worker down; it
        completes with :class:`WorkerCrashed`.  ``drop`` — a ticket the
        caller already accounted for (eviction), delivered to nobody.
        Everything else the worker held is requeued, in order.
        """
        if w not in self._workers:
            return
        self._workers.remove(w)
        try:
            w.proc.join(timeout=2.0)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=2.0)
        except Exception:
            pass
        exit_code = w.proc.exitcode
        try:
            w.conn.close()
        except Exception:
            pass
        requeue = []
        for ticket, item in w.assigned.items():
            self._owner.pop(ticket, None)
            self._started.pop(ticket, None)
            self._heartbeats.pop(ticket, None)
            if ticket == drop:
                continue
            if ticket == blame and not w.killing:
                comps.append(Completion(
                    ticket, error=WorkerCrashed(exit_code), worker=w.name))
                continue
            requeue.append(item)
        self._backlog.extendleft(reversed(requeue))
        self._workers.append(self._spawn())
        self._note_respawn()

    def evict(self, ticket: int) -> None:
        w = self._owner.get(ticket)
        if w is None:
            self._backlog = collections.deque(
                t for t in self._backlog if t[0] != ticket)
            return
        # salvage results that finished before the kill
        try:
            while w.conn.poll():
                self._dispatch(w, w.conn.recv(), self._spill)
        except Exception:
            pass
        w.killing = True
        try:
            w.proc.kill()
        except Exception:
            pass
        self._retire(w, drop=ticket, blame=None, comps=self._spill)

    def reset(self) -> None:
        for w in self._workers:
            try:
                w.proc.kill()
            except Exception:
                pass
        for w in self._workers:
            try:
                w.proc.join(timeout=2.0)
                w.conn.close()
            except Exception:
                pass
        self._workers = []
        self._backlog.clear()
        self._owner.clear()
        self._started.clear()
        self._heartbeats.clear()
        self._spill = []
        self.start()

    def close(self, graceful: bool = True) -> None:
        for w in self._workers:
            if graceful:
                try:
                    w.conn.send(None)
                except Exception:
                    pass
            else:
                try:
                    w.proc.kill()
                except Exception:
                    pass
        for w in self._workers:
            try:
                w.proc.join(timeout=2.0)
                if w.proc.is_alive():
                    w.proc.kill()
                    w.proc.join(timeout=2.0)
            except Exception:
                pass
            try:
                w.conn.close()
            except Exception:
                pass
        self._workers = []
        self._backlog.clear()
        self._owner.clear()
        self._started.clear()
        self._heartbeats.clear()
        self._spill = []


# -- factory -----------------------------------------------------------------


def make_pool(backend, jobs: Optional[int] = None) -> Pool:
    """Build a pool for ``backend`` (a name from :data:`POOL_BACKENDS`,
    or an already-constructed :class:`Pool`, returned as-is)."""
    if isinstance(backend, Pool):
        return backend
    name = str(backend)
    if name == "serial":
        return SerialPool()
    if name == "process":
        return ProcessPool(jobs)
    if name == "thread":
        return ThreadPool(jobs)
    raise ValueError(
        "unknown pool backend %r (choose from: %s)"
        % (backend, ", ".join(POOL_BACKENDS)))
