"""Execution backends: the backend-agnostic pool layer.

Separates *what jobs exist* (the fail-safe runner's retry / timeout /
quarantine / blame logic) from *where they run*.  The protocol is
:class:`Pool`; the shipped backends are :class:`SerialPool`,
:class:`ProcessPool` (warm forked workers) and :class:`ThreadPool`,
selected by name through :func:`make_pool`, ``PipelineOptions.pool`` or
the CLI's ``--pool`` flag.  :mod:`repro.exec.worker` is the worker-side
context shim that keeps chaos faults (``worker.crash`` / ``worker.hang``)
meaningful on every backend.
"""

from . import worker
from .pools import (
    POOL_BACKENDS,
    Completion,
    Pool,
    PoolBroken,
    ProcessPool,
    SerialPool,
    ThreadPool,
    WorkerCrashed,
    default_pool_width,
    make_pool,
)

__all__ = [
    "Completion",
    "POOL_BACKENDS",
    "Pool",
    "PoolBroken",
    "ProcessPool",
    "SerialPool",
    "ThreadPool",
    "WorkerCrashed",
    "default_pool_width",
    "make_pool",
    "worker",
]
