"""Worker-side execution context: what kind of pool worker am I?

Task code occasionally needs to know how it is being run — most
importantly the chaos sites: a ``worker.crash`` fault must take a real
process down with ``os._exit`` (so the parent exercises its dead-worker
blame path), but the serial and thread backends share the caller's
interpreter, where ``os._exit`` would kill the whole test run.  Each
pool marks its workers with :func:`enter` and task code asks this module
instead of guessing:

* :func:`crash` — die the way this worker kind dies: ``os._exit`` in a
  process worker, a raised :class:`WorkerCrashed` (same message, same
  quarantine record) everywhere else.
* :func:`preemptive` — can the parent kill/abandon this worker from the
  outside?  ``False`` for the serial backend, where a simulated hang
  would block forever and is therefore skipped.

The context is thread-local, so thread-pool workers and the parent
thread coexist in one interpreter without confusion.
"""

from __future__ import annotations

import os
import threading

__all__ = [
    "WorkerCrashed",
    "attach_beat",
    "crash",
    "current",
    "enter",
    "kind",
    "leave",
    "preemptive",
    "set_phase",
]


class WorkerCrashed(RuntimeError):
    """A pool worker died — or simulated dying — under a task.

    Constructed by the process backend when it finds a worker dead
    beneath a running task, and raised inline by :func:`crash` on the
    backends that cannot lose a real process.  Both paths produce the
    same message, which is what keeps quarantine records byte-identical
    across backends.
    """

    def __init__(self, exit_code=None):
        self.exit_code = exit_code
        super().__init__("worker exited with code %s" % (exit_code,))

    def __reduce__(self):
        return (WorkerCrashed, (self.exit_code,))


class _Context(threading.local):
    kind = "none"          # none | serial | thread | process
    preemptive = False
    beat = None            # the pool's heartbeat reporter, when enabled


_CTX = _Context()


def enter(worker_kind: str, can_preempt: bool) -> None:
    """Mark the current thread as a pool worker of ``worker_kind``."""
    _CTX.kind = worker_kind
    _CTX.preemptive = can_preempt


def leave() -> None:
    """Clear the worker context for the current thread."""
    _CTX.kind = "none"
    _CTX.preemptive = False
    _CTX.beat = None


def attach_beat(beat) -> None:
    """Bind (or clear, with ``None``) this thread's heartbeat reporter.

    Called by the pool worker loops when heartbeats are enabled; task
    code never calls this directly — it uses :func:`set_phase`.
    """
    _CTX.beat = beat


def set_phase(phase: str) -> None:
    """Label what the current task is doing in its heartbeats.

    Purely cosmetic telemetry for `repro top`'s phase column: a no-op
    unless this thread is a pool worker with heartbeats enabled, so
    stage code can call it unconditionally.
    """
    beat = _CTX.beat
    if beat is not None:
        beat.phase = str(phase)


def kind() -> str:
    """The current worker kind (``"none"`` outside any pool worker)."""
    return _CTX.kind


def current():
    """(kind, preemptive) for the current thread."""
    return _CTX.kind, _CTX.preemptive


def preemptive() -> bool:
    """Can this worker be killed or abandoned from the outside?

    ``True`` for process workers (killable) and thread workers
    (abandonable); ``False`` for serial execution and ordinary
    non-worker code, where a deliberate stall could never be recovered.
    """
    return _CTX.preemptive


def crash(exit_code: int = 13):
    """Die the way this worker kind dies.

    Process workers exit hard — no cleanup, no exception, the parent
    finds the corpse and blames the running task.  Serial and thread
    workers raise :class:`WorkerCrashed` instead, which their pools
    convert into the identical crash completion.
    """
    if _CTX.kind == "process":
        os._exit(int(exit_code))
    raise WorkerCrashed(int(exit_code))
