"""Offload region formation: BL-path regions, Superblock/Hyperblock
baselines, Braids, and back-edge target expansion."""

from .region import Region, order_blocks_topologically
from .path_region import (
    cancelled_phi_count,
    path_guard_count,
    path_region_is_valid,
    path_to_region,
)
from .superblock import (
    SuperblockDiagnosis,
    build_superblock,
    diagnose_superblock,
    superblock_is_feasible,
)
from .hyperblock import (
    HyperblockColdStats,
    build_hyperblock,
    build_loop_hyperblock,
    hottest_innermost_loop,
    hyperblock_cold_stats,
)
from .braid import (
    Braid,
    BraidTableRow,
    braid_memory_branch_dependences,
    braid_table_row,
    build_braids,
)
from .expansion import (
    ExpandedPath,
    ExpansionSummary,
    expand_path,
    summarise_expansion,
)

__all__ = [
    "Braid",
    "BraidTableRow",
    "ExpandedPath",
    "ExpansionSummary",
    "HyperblockColdStats",
    "Region",
    "SuperblockDiagnosis",
    "braid_memory_branch_dependences",
    "braid_table_row",
    "build_braids",
    "build_hyperblock",
    "build_loop_hyperblock",
    "build_superblock",
    "cancelled_phi_count",
    "diagnose_superblock",
    "expand_path",
    "hottest_innermost_loop",
    "hyperblock_cold_stats",
    "order_blocks_topologically",
    "path_guard_count",
    "path_region_is_valid",
    "path_to_region",
    "summarise_expansion",
    "superblock_is_feasible",
]
