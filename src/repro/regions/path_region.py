"""BL-path offload regions (paper §III).

A BL-path region is the literal block sequence of one profiled Ball–Larus
path: single entry, single exit, single flow of control.  Any divergence
from the path at runtime triggers a guard failure and rollback to the host.
"""

from __future__ import annotations


from ..ir.instructions import CondBranch
from ..profiling.ranking import RankedPath
from .region import Region


def path_to_region(fn, ranked_path: RankedPath) -> Region:
    """Wrap a ranked BL-path into an offload :class:`Region`."""
    blocks = list(ranked_path.blocks)
    return Region(
        kind="bl-path",
        function=fn,
        blocks=blocks,
        entry=blocks[0],
        exit=blocks[-1],
        coverage=ranked_path.coverage,
        source_paths=[ranked_path.path_id],
        frequency=ranked_path.freq,
    )


def path_guard_count(region: Region) -> int:
    """Number of guards a BL-path frame needs: every conditional branch on
    the path whose *other* side leaves the path.

    For a pure path this is every conditional branch traversed, except ones
    whose both targets fall on the path (rare, e.g. ``condbr %c, B, B``).
    """
    count = 0
    for i, block in enumerate(region.blocks[:-1]):
        term = block.terminator
        if not isinstance(term, CondBranch):
            continue
        nxt = region.blocks[i + 1]
        if any(succ is not nxt for succ in term.successors):
            count += 1
    return count


def cancelled_phi_count(region: Region) -> int:
    """φ-nodes that become trivial once the region pins control flow.

    Along a single path each φ has exactly one live incoming edge, so every
    φ in a non-entry position cancels (Table II:C6).  For the entry block,
    φs still cancel because the path fixes the incoming edge (the previous
    path block or the host-side entry).
    """
    return region.phi_count


def path_region_is_valid(region: Region) -> bool:
    """Check the single-flow invariant: consecutive blocks are CFG-linked."""
    for a, b in zip(region.blocks, region.blocks[1:]):
        if b not in a.successors:
            return False
    return True
