"""BL-path target expansion across loop back edges (paper §IV-A, Table III).

BL-paths are acyclic; to pipeline across loop iterations the offload unit is
enlarged by chaining the path with the path that most often follows it in
the recorded path trace.  When a path repeats itself with ≥90 % probability
the unit effectively unrolls 2×; when a *different* path reliably follows,
the two are concatenated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..ir.block import BasicBlock
from ..profiling.path_profile import PathProfile
from ..profiling.path_trace import PathTraceAnalysis
from ..profiling.ranking import RankedPath, count_ops


@dataclass
class ExpandedPath:
    """A path chained with its most likely successor path."""

    base: RankedPath
    successor_id: Optional[int]
    successor_blocks: List[BasicBlock]
    bias: float
    repeats_same_path: bool

    @property
    def blocks(self) -> List[BasicBlock]:
        """Block *trace* of the expanded unit (blocks may repeat)."""
        return list(self.base.blocks) + list(self.successor_blocks)

    @property
    def base_ops(self) -> int:
        return self.base.ops

    @property
    def expanded_ops(self) -> int:
        return self.base.ops + count_ops(self.successor_blocks)

    @property
    def growth_factor(self) -> float:
        return self.expanded_ops / self.base_ops if self.base_ops else 1.0

    @property
    def bias_bucket(self) -> str:
        if self.bias >= 0.9:
            return "90-100%"
        if self.bias >= 0.7:
            return "70-90%"
        return "<70%"


def expand_path(
    profile: PathProfile,
    ranked: RankedPath,
    trace_analysis: Optional[PathTraceAnalysis] = None,
    min_bias: float = 0.0,
) -> ExpandedPath:
    """Chain ``ranked`` with its most likely successor from the path trace.

    When the successor bias is below ``min_bias`` the path is returned
    unexpanded (empty successor block list) but the observed bias is still
    reported, so Table III can bucket every workload.
    """
    analysis = trace_analysis or PathTraceAnalysis(profile.trace)
    stats = analysis.successor_stats(ranked.path_id)
    if stats.best_successor is None or stats.bias < min_bias:
        return ExpandedPath(
            base=ranked,
            successor_id=stats.best_successor,
            successor_blocks=[],
            bias=stats.bias,
            repeats_same_path=bool(stats.repeats_itself),
        )
    succ_blocks = profile.decode(stats.best_successor)
    return ExpandedPath(
        base=ranked,
        successor_id=stats.best_successor,
        successor_blocks=succ_blocks,
        bias=stats.bias,
        repeats_same_path=stats.best_successor == ranked.path_id,
    )


@dataclass
class ExpansionSummary:
    """Table III row material for one workload."""

    function: str
    bias: float
    bias_bucket: str
    repeats_same_path: bool
    growth_factor: float


def summarise_expansion(
    profile: PathProfile, ranked_paths: Sequence[RankedPath]
) -> Optional[ExpansionSummary]:
    """Expansion summary for the top-ranked path (None if no paths)."""
    if not ranked_paths:
        return None
    expanded = expand_path(profile, ranked_paths[0])
    return ExpansionSummary(
        function=profile.function.name,
        bias=expanded.bias,
        bias_bucket=expanded.bias_bucket,
        repeats_same_path=expanded.repeats_same_path,
        growth_factor=expanded.growth_factor,
    )
