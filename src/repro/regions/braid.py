"""Braids: merging BL-paths with common entry/exit blocks (paper §IV-B).

A Braid merges all profiled paths that *start and end at the same basic
block*.  The union of their blocks forms a single-entry single-exit acyclic
region containing multiple flows of control: branches whose sides all stay
inside the Braid become ordinary IFs (executed under non-speculative
predication on the accelerator), while branches that can leave the region
remain guards.  Coverage is the sum of the merged paths' coverages, and the
live-in/out sets are unchanged because every merged path shares the entry
and exit block.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..profiling.ranking import RankedPath
from .region import Region, order_blocks_topologically


@dataclass
class Braid:
    """A braid region plus merge bookkeeping."""

    region: Region
    paths: List[RankedPath]

    @property
    def n_paths(self) -> int:
        return len(self.paths)

    @property
    def coverage(self) -> float:
        return self.region.coverage

    @property
    def weight(self) -> int:
        return sum(p.weight for p in self.paths)

    @property
    def key(self) -> Tuple[BasicBlock, BasicBlock]:
        return (self.region.entry, self.region.exit)

    def __repr__(self) -> str:
        return "<Braid %s->%s: %d paths, %d ops, cov=%.1f%%>" % (
            self.region.entry.name,
            self.region.exit.name if self.region.exit else "?",
            self.n_paths,
            self.region.op_count,
            self.coverage * 100,
        )


def build_braids(
    fn: Function,
    ranked_paths: Sequence[RankedPath],
    max_paths_per_braid: Optional[int] = None,
    min_weight_ratio: float = 0.0,
) -> List[Braid]:
    """Group paths by (entry block, exit block) and merge each group.

    Paths are considered in rank order; ``max_paths_per_braid`` caps how many
    paths a single braid may absorb (the §IV-B merge-depth ablation knob).
    ``min_weight_ratio`` merges only *hot* paths: a path joins a braid only
    if its weight is at least that fraction of the group's hottest path —
    the paper merges hot BL-paths, keeping cold siblings off the fabric.
    Returns braids sorted by descending weight.
    """
    groups: Dict[Tuple[BasicBlock, BasicBlock], List[RankedPath]] = defaultdict(list)
    for path in ranked_paths:
        key = (path.entry_block, path.exit_block)
        bucket = groups[key]
        if max_paths_per_braid is not None and len(bucket) >= max_paths_per_braid:
            continue
        if (
            min_weight_ratio > 0.0
            and bucket
            and path.weight < min_weight_ratio * bucket[0].weight
        ):
            continue
        bucket.append(path)

    braids: List[Braid] = []
    for (entry, exit_), paths in groups.items():
        block_union = {b for p in paths for b in p.blocks}
        ordered = order_blocks_topologically(fn, block_union)
        region = Region(
            kind="braid",
            function=fn,
            blocks=ordered,
            entry=entry,
            exit=exit_,
            coverage=sum(p.coverage for p in paths),
            source_paths=[p.path_id for p in paths],
            frequency=sum(p.freq for p in paths),
        )
        braids.append(Braid(region=region, paths=list(paths)))

    braids.sort(key=lambda b: -b.weight)
    return braids


@dataclass
class BraidTableRow:
    """One Table IV row."""

    function: str
    n_braids: int  # C1
    avg_paths_per_braid: float  # C2
    top_coverage: float  # C3 (top braid)
    top_ops: int  # C4
    top_guards: int  # C5
    top_ifs: int  # C6
    live_ins: int  # C7
    live_outs: int  # C7


def braid_table_row(fn: Function, braids: Sequence[Braid]) -> BraidTableRow:
    """Summarise a function's braids the way Table IV reports them."""
    if not braids:
        return BraidTableRow(fn.name, 0, 0.0, 0.0, 0, 0, 0, 0, 0)
    top = braids[0]
    live_ins, live_outs = top.region.live_values()
    return BraidTableRow(
        function=fn.name,
        n_braids=len(braids),
        avg_paths_per_braid=sum(b.n_paths for b in braids) / len(braids),
        top_coverage=top.coverage,
        top_ops=top.region.op_count,
        top_guards=len(top.region.guard_branches()),
        top_ifs=len(top.region.internal_branches()),
        live_ins=len(live_ins),
        live_outs=len(live_outs),
    )


def braid_memory_branch_dependences(braid: Braid) -> int:
    """Memory ops still control-dependent on a branch inside the braid.

    §IV-B: merging paths turns guards into internal IFs; memory ops beyond
    an internal IF stay control-dependent, but ops previously below a guard
    become speculatively hoistable.  We count memory ops in blocks reachable
    only through an internal IF branch.
    """
    internal = set(braid.region.internal_branches())
    if not internal:
        return 0
    dependent = 0
    region_set = braid.region.block_set
    for branch_block in internal:
        seen = set()
        work = [s for s in branch_block.successors if s in region_set]
        while work:
            blk = work.pop()
            if blk in seen or blk is braid.region.exit:
                continue
            seen.add(blk)
            dependent += sum(1 for i in blk.instructions if i.is_memory)
            work.extend(s for s in blk.successors if s in region_set)
    return dependent
