"""Hyperblock construction via if-conversion (baseline, paper §II-B).

Hyperblocks extend superblocks by folding *both* sides of insufficiently
biased branches into a predicated region.  The paper's critique — which
Fig. 5 quantifies — is that this local decision drags in cold operations
that waste accelerator area and energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..analysis.cfg import CFG
from ..analysis.loops import Loop, LoopInfo
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import CondBranch
from ..profiling.ball_larus import BallLarusNumbering
from ..profiling.edge_profile import EdgeProfile
from .region import Region, order_blocks_topologically


def build_hyperblock(
    fn: Function,
    edge_profile: EdgeProfile,
    seed: Optional[BasicBlock] = None,
    bias_threshold: float = 0.9,
    allowed: Optional[Set[BasicBlock]] = None,
    max_blocks: int = 128,
) -> Region:
    """If-convert forward from ``seed`` (default: hottest block).

    At each conditional branch: if its bias is at least ``bias_threshold``
    only the hot side is followed (superblock-like); otherwise both sides
    are folded in under predication.  Back edges terminate growth; blocks
    outside ``allowed`` (when given, e.g. a loop body) are skipped.
    """
    numbering = BallLarusNumbering(fn)
    if seed is None:
        seed = max(fn.blocks, key=lambda b: edge_profile.block_counts.get(b, 0))

    included: List[BasicBlock] = []
    included_set: Set[BasicBlock] = set()
    work = [seed]
    while work and len(included) < max_blocks:
        block = work.pop()
        if block in included_set:
            continue
        if allowed is not None and block not in allowed:
            continue
        included.append(block)
        included_set.add(block)

        term = block.terminator
        succs = [
            s
            for s in block.successors
            if not numbering.is_back_edge(block, s)
        ]
        if not succs:
            continue
        if isinstance(term, CondBranch) and len(succs) == 2:
            bias = edge_profile.branch_bias(block)
            if bias is not None and bias >= bias_threshold:
                hot = edge_profile.hottest_successor(block)
                if hot is not None and hot in succs:
                    work.append(hot)
                else:
                    work.extend(succs)
            else:
                work.extend(succs)  # fold both sides in (if-conversion)
        else:
            work.extend(succs)

    ordered = order_blocks_topologically(fn, included)
    return Region(
        kind="hyperblock",
        function=fn,
        blocks=ordered,
        entry=seed,
        exit=ordered[-1] if ordered else seed,
        frequency=edge_profile.block_counts.get(seed, 0),
    )


def build_loop_hyperblock(
    fn: Function,
    loop: Loop,
    edge_profile: EdgeProfile,
    bias_threshold: float = 0.9,
) -> Region:
    """Hyperblock of one (innermost) loop body, seeded at the header."""
    return build_hyperblock(
        fn,
        edge_profile,
        seed=loop.header,
        bias_threshold=bias_threshold,
        allowed=set(loop.blocks),
    )


@dataclass
class HyperblockColdStats:
    """Fig. 5 data point: wasted (cold) operations in a hyperblock."""

    function: str
    total_ops: int
    cold_ops: int
    predication_branches: int
    tail_duplication_blocks: int

    @property
    def cold_fraction(self) -> float:
        return self.cold_ops / self.total_ops if self.total_ops else 0.0


def hyperblock_cold_stats(
    region: Region,
    edge_profile: EdgeProfile,
    cold_threshold: float = 0.5,
) -> HyperblockColdStats:
    """Count ops in hyperblock blocks executed less than ``cold_threshold``
    times per region entry — operations folded in by if-conversion that
    mostly waste fabric resources (Fig. 5).
    """
    entry_count = edge_profile.block_counts.get(region.entry, 0)
    total = 0
    cold = 0
    for block in region.blocks:
        ops = sum(1 for i in block.instructions if i.opcode != "phi")
        total += ops
        count = edge_profile.block_counts.get(block, 0)
        if entry_count and count < cold_threshold * entry_count:
            cold += ops

    # tail duplication: non-entry blocks entered from outside the region
    cfg = CFG(region.function)
    tail_dup = 0
    for block in region.blocks:
        if block is region.entry:
            continue
        if any(p not in region.block_set for p in cfg.preds(block)):
            tail_dup += 1

    return HyperblockColdStats(
        function=region.function.name,
        total_ops=total,
        cold_ops=cold,
        predication_branches=len(region.internal_branches())
        + len(region.guard_branches()),
        tail_duplication_blocks=tail_dup,
    )


def hottest_innermost_loop(fn: Function, edge_profile: EdgeProfile) -> Optional[Loop]:
    """The innermost loop whose header is hottest (Fig. 5 target)."""
    loops = LoopInfo.compute(fn).innermost_loops()
    if not loops:
        return None
    return max(loops, key=lambda l: edge_profile.block_counts.get(l.header, 0))
