"""Superblock construction from edge profiles (baseline, paper §II-B).

Superblocks are grown from a hot seed block along mutually-most-likely
edges, exactly the local decision procedure whose failure modes the paper
demonstrates: *infeasible* superblocks (the grown sequence never occurs as
an executed path) and superblocks that are not the hottest path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..profiling.ball_larus import BallLarusNumbering
from ..profiling.edge_profile import EdgeProfile
from ..profiling.path_profile import PathProfile
from ..profiling.ranking import RankedPath
from .region import Region


def build_superblock(
    fn: Function,
    edge_profile: EdgeProfile,
    seed: Optional[BasicBlock] = None,
    bias_threshold: float = 0.5,
    max_blocks: int = 64,
) -> Region:
    """Grow a superblock from ``seed`` (default: hottest block).

    Growth follows the mutually-most-likely heuristic: extend the trace from
    tail ``b`` to successor ``s`` only if ``s`` is ``b``'s most frequent
    successor, ``b`` is ``s``'s most frequent predecessor, the edge meets the
    bias threshold, and the extension keeps the trace acyclic.
    """
    numbering = BallLarusNumbering(fn)
    if seed is None:
        seed = max(
            fn.blocks,
            key=lambda b: edge_profile.block_counts.get(b, 0),
        )

    trace: List[BasicBlock] = [seed]
    in_trace = {seed}
    while len(trace) < max_blocks:
        tail = trace[-1]
        succs = tail.successors
        if not succs:
            break
        total_out = sum(edge_profile.edge_counts[(tail, s)] for s in succs)
        if total_out == 0:
            break
        best = max(succs, key=lambda s: edge_profile.edge_counts[(tail, s)])
        best_count = edge_profile.edge_counts[(tail, best)]
        if best_count / total_out < bias_threshold:
            break
        if best in in_trace or numbering.is_back_edge(tail, best):
            break
        # mutual check: is tail the most frequent predecessor of best?
        in_counts = [
            (p, edge_profile.edge_counts[(p, best)])
            for p in _predecessors(fn, best)
        ]
        if in_counts:
            hottest_pred = max(in_counts, key=lambda t: t[1])[0]
            if hottest_pred is not tail:
                break
        trace.append(best)
        in_trace.add(best)

    return Region(
        kind="superblock",
        function=fn,
        blocks=trace,
        entry=trace[0],
        exit=trace[-1],
        coverage=0.0,
        frequency=edge_profile.block_counts.get(seed, 0),
    )


def _predecessors(fn: Function, block: BasicBlock) -> List[BasicBlock]:
    return [b for b in fn.blocks if block in b.successors]


def superblock_is_feasible(
    superblock: Region, path_profile: PathProfile
) -> bool:
    """True if the superblock's block sequence occurs contiguously inside at
    least one *executed* BL path (paper §II-B infeasibility test)."""
    want = [b.name for b in superblock.blocks]
    n = len(want)
    if n == 0:
        return False
    for pid in path_profile.counts:
        names = [b.name for b in path_profile.decode(pid)]
        for i in range(len(names) - n + 1):
            if names[i : i + n] == want:
                return True
    return False


@dataclass
class SuperblockDiagnosis:
    """§II-B pathology report for one function."""

    function: str
    feasible: bool
    matches_hottest_path: bool
    superblock_blocks: List[str]
    hottest_path_blocks: List[str]


def diagnose_superblock(
    fn: Function,
    edge_profile: EdgeProfile,
    path_profile: PathProfile,
    ranked_paths: Sequence[RankedPath],
    **kwargs,
) -> SuperblockDiagnosis:
    """Build a superblock and compare it against the path profile."""
    sb = build_superblock(fn, edge_profile, **kwargs)
    feasible = superblock_is_feasible(sb, path_profile)
    hottest = ranked_paths[0].blocks if ranked_paths else []
    sb_names = [b.name for b in sb.blocks]
    hot_names = [b.name for b in hottest]
    # "matches" = the superblock covers the hottest path's block sequence
    matches = _is_contiguous_subsequence(hot_names, sb_names) or (
        _is_contiguous_subsequence(sb_names, hot_names)
    )
    return SuperblockDiagnosis(
        function=fn.name,
        feasible=feasible,
        matches_hottest_path=matches,
        superblock_blocks=sb_names,
        hottest_path_blocks=hot_names,
    )


def _is_contiguous_subsequence(needle: List[str], hay: List[str]) -> bool:
    if not needle:
        return False
    n = len(needle)
    return any(hay[i : i + n] == needle for i in range(len(hay) - n + 1))
