"""Offload-region abstraction shared by paths, Braids, Superblocks and
Hyperblocks.

A region is a set of basic blocks of one function with a designated entry
block, plus bookkeeping about which profiled paths it came from and how much
dynamic execution it covers.  BL-path regions and Braids are single-entry /
single-exit by construction; Superblocks are single-entry / multi-exit;
Hyperblocks may have several exits too — the :attr:`kind` tag records which
construction produced the region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..analysis.cfg import CFG
from ..analysis.liveness import region_live_values
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import CondBranch


@dataclass
class Region:
    """An accelerator offload candidate region."""

    kind: str  # "bl-path" | "braid" | "superblock" | "hyperblock" | "expanded"
    function: Function
    blocks: List[BasicBlock]  # topologically ordered within the region
    entry: BasicBlock
    exit: Optional[BasicBlock]
    coverage: float = 0.0  # fraction of the function's dynamic instructions
    source_paths: List[int] = field(default_factory=list)  # BL path ids
    frequency: int = 0  # combined execution count of the source paths

    def __post_init__(self):
        self._block_set: Set[BasicBlock] = set(self.blocks)

    # -- membership -----------------------------------------------------------

    def __contains__(self, block: BasicBlock) -> bool:
        return block in self._block_set

    @property
    def block_set(self) -> Set[BasicBlock]:
        return self._block_set

    # -- size metrics ----------------------------------------------------------

    @property
    def op_count(self) -> int:
        """Instructions in the region, φs excluded (Table II:C3 / IV:C4)."""
        return sum(
            1
            for b in self.blocks
            for i in b.instructions
            if i.opcode != "phi"
        )

    @property
    def memory_op_count(self) -> int:
        return sum(1 for b in self.blocks for i in b.instructions if i.is_memory)

    @property
    def phi_count(self) -> int:
        return sum(1 for b in self.blocks for i in b.instructions if i.opcode == "phi")

    @property
    def float_op_count(self) -> int:
        return sum(
            1
            for b in self.blocks
            for i in b.instructions
            if i.is_float and not i.is_terminator
        )

    # -- control structure -------------------------------------------------------

    def branch_blocks(self) -> List[BasicBlock]:
        """Blocks ending in a conditional branch."""
        return [
            b for b in self.blocks if isinstance(b.terminator, CondBranch)
        ]

    def guard_branches(self) -> List[BasicBlock]:
        """Branches with at least one successor *leaving* the region.

        These become guards when the region is framed (Table IV:C5).  The
        exit block's branch is excluded: by the time it executes, the frame
        has completed, so it merely tells the host where to resume.
        """
        out = []
        for b in self.branch_blocks():
            if b is self.exit:
                continue
            if any(s not in self._block_set for s in b.successors):
                out.append(b)
        return out

    def internal_branches(self) -> List[BasicBlock]:
        """Branches whose successors all stay inside the region — the IFs a
        Braid introduces when merging paths (Table IV:C6)."""
        return [
            b
            for b in self.branch_blocks()
            if all(s in self._block_set for s in b.successors)
        ]

    def exit_edges(self) -> List[Tuple[BasicBlock, BasicBlock]]:
        """Edges from region blocks to blocks outside the region."""
        out = []
        for b in self.blocks:
            for s in b.successors:
                if s not in self._block_set:
                    out.append((b, s))
        return out

    # -- data transfer --------------------------------------------------------------

    def live_values(self) -> Tuple[List, List]:
        """(live-ins, live-outs) of the region (Table II:C5 / IV:C7)."""
        return region_live_values(self.function, self.blocks)

    @property
    def coverage_per_op(self) -> float:
        """Coverage divided by region size (Table IV analysis §IV-B)."""
        ops = self.op_count
        return self.coverage / ops if ops else 0.0

    def __repr__(self) -> str:
        return "<Region %s %s: %d blocks, %d ops, cov=%.1f%%>" % (
            self.kind,
            self.function.name,
            len(self.blocks),
            self.op_count,
            self.coverage * 100,
        )


def order_blocks_topologically(
    fn: Function, blocks: Sequence[BasicBlock]
) -> List[BasicBlock]:
    """Order a block subset by the function's reverse post-order."""
    cfg = CFG(fn)
    index = {b: i for i, b in enumerate(cfg.rpo)}
    return sorted(blocks, key=lambda b: index.get(b, len(index)))
