"""Shared per-workload simulation memo (perf layer 3, second half).

Evaluating one workload runs :meth:`OffloadSimulator.simulate_offload`
three times — host-vs-path-oracle, path-history, braid — and every call
used to pay the full sub-simulation bill again: replay the memory stream
through both cache ports, OOO-simulate every path, and re-schedule the
frame.  None of those depend on the strategy.  :class:`SimulationMemo`
memoizes each expensive sub-simulation per (input, configuration) so the
three strategies share one calibration, one host-cost table and one
schedule pool, and DSE sweeps that vary only CGRA/offload knobs skip
memory replay and OOO simulation entirely.

Two keying tiers:

* **content keys** — when the pipeline knows the workload's artifact key
  (a hash of its IR text and run args), calibration records and path-cost
  tables are keyed by (artifact key, relevant config slice) and written
  through to the :class:`~repro.artifacts.ArtifactCache`.  The config
  slice is deliberately narrow: calibration keys only the memory
  hierarchy, path costs only the host core + load latency — which is what
  lets a CGRA design-space sweep reuse both.  Write-through also means a
  workload retried by :func:`~repro.resilience.runner.run_failsafe`
  (possibly in a fresh worker process) reuses the calibration its failed
  attempt already computed.
* **identity keys** — with no artifact cache the memo falls back to
  keying by object identity (the trace / profile / frame instance), which
  still gives full cross-strategy sharing within a pipeline.  The
  vectorized OOO walk keeps two identity-only tables of its own, both
  anchored on the profile: ``"ooo_columns"`` (compiled
  :class:`~repro.sim.ooo_columns.CompiledPath` programs, keyed by the
  host config and rounded fixed latency — rep counts deliberately
  excluded, programs are rep-count independent) and ``"lane_tier"``
  (the memoized walk-tier decision, so geometry heuristics are derived
  once per (workload, config) rather than per call).

The memo is picklable via :meth:`snapshot`/:meth:`merge` (content entries
only), and pool workers ship their snapshots back with each result the
same way obs registry snapshots travel, so the parent's memo warms up as
a sharded sweep progresses.

Kernel modes and keys: the ``trace_kernels`` mode ("rle", "events",
"array") is deliberately *absent* from every memo key.  All kernel tiers
produce bitwise-identical calibrations, path-cost tables and outcomes
(property-tested three ways), so entries computed under one mode are
valid under any other — a cache-served run therefore reports the mode it
*would* have used via the ``sim.kernel_mode`` gauge, while the numbers
themselves are mode-independent by construction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..obs import counter as _obs_counter, enabled as _obs_enabled


@dataclass
class Calibration:
    """Full memory-calibration record of one workload (both ports).

    The single public product of
    :meth:`~repro.sim.offload.OffloadSimulator.calibrate`: average load
    latencies plus the per-level access censuses of the replay, so no
    caller ever needs a second stream replay to get the level counts.
    """

    host_load_latency: float
    accel_load_latency: float
    host_levels: Dict[str, int] = field(default_factory=dict)
    accel_levels: Dict[str, int] = field(default_factory=dict)


def content_key(*parts) -> str:
    """Stable hash of heterogeneous key parts (reprs joined with NULs)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


class SimulationMemo:
    """Get-or-compute tables for calibration, path costs and schedules."""

    def __init__(self, cache=None):
        #: optional ArtifactCache backing the content-keyed tables
        self.cache = cache
        self._content: Dict[Tuple[str, str], object] = {}
        self._identity: Dict[tuple, Tuple[object, object]] = {}
        self._unsynced: set = set()
        self.hits = 0
        self.misses = 0

    # -- lookups -----------------------------------------------------------

    def content(self, kind: str, key: str, compute, persist: bool = True):
        """Memoize by content key, optionally persisted via the artifact
        cache (``kind`` doubles as the on-disk artifact kind)."""
        mem_key = (kind, key)
        if mem_key in self._content:
            self._note(kind, hit=True)
            return self._content[mem_key]
        if persist and self.cache is not None:
            stored = self.cache.get(kind, key)
            if stored is not None:
                self._content[mem_key] = stored
                self._unsynced.add(mem_key)
                self._note(kind, hit=True)
                return stored
        value = compute()
        self._content[mem_key] = value
        self._unsynced.add(mem_key)
        if persist and self.cache is not None:
            # write-through immediately: a later crash of this attempt
            # must not lose the sub-simulation for the retry
            self.cache.put(kind, key, value)
        self._note(kind, hit=False)
        return value

    def identity(self, kind: str, obj, extra, compute):
        """Memoize by object identity (plus a hashable discriminator).

        A strong reference to ``obj`` is kept with the entry so a reused
        ``id()`` after garbage collection can never alias a stale value.
        """
        key = (kind, id(obj), extra)
        entry = self._identity.get(key)
        if entry is not None and entry[0] is obj:
            self._note(kind, hit=True)
            return entry[1]
        value = compute()
        self._identity[key] = (obj, value)
        self._note(kind, hit=False)
        return value

    # -- stats -------------------------------------------------------------

    def _note(self, table: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if _obs_enabled():
            _obs_counter(
                "simcache.hits" if hit else "simcache.misses", 1,
                help="simulation-memo lookups served/computed",
                table=table,
            )

    # -- snapshots (ride back from pool workers, like obs registries) ------

    def snapshot(self) -> dict:
        """Picklable image of the content-keyed tables."""
        return {"content": dict(self._content)}

    def drain(self) -> Optional[dict]:
        """Content entries added since the last drain, or ``None``.

        The delta counterpart of :meth:`snapshot` for *warm* pool
        workers: the parent already merged everything this memo shipped
        with earlier results, so each new result only needs to carry the
        tables its own task added — O(new entries) transport instead of
        O(every entry this worker ever computed)."""
        if not self._unsynced:
            return None
        delta = {"content": {k: self._content[k] for k in self._unsynced
                             if k in self._content}}
        self._unsynced.clear()
        return delta

    def merge(self, snap: Optional[dict]) -> None:
        """Fold a worker's snapshot in (entries are deterministic per key,
        so last-write-wins merging cannot change any value)."""
        if not snap:
            return
        self._content.update(snap.get("content", {}))

    def __repr__(self) -> str:
        return "<SimulationMemo %d entries: %d hits, %d misses>" % (
            len(self._content) + len(self._identity), self.hits, self.misses,
        )


__all__ = ["Calibration", "SimulationMemo", "content_key"]
