"""Energy accounting (McPAT stand-in + Table V CGRA parameters).

Host energy is dominated by the front-end and OOO-window costs paid on every
instruction — exactly the overhead hardware acceleration elides (Hameed et
al. [19], cited in §III.A).  Accelerator energy is priced from the Table V
CGRA numbers: per-FU op energy, per-DFG-edge network energy, and a latch
charge per op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.dfg import DataflowGraph
from .config import CGRAConfig, EnergyConfig
from .core_ooo import OOOResult


@dataclass
class EnergyBreakdown:
    """Picojoule totals by component."""

    frontend_pj: float = 0.0
    window_pj: float = 0.0
    fu_pj: float = 0.0
    memory_pj: float = 0.0
    network_pj: float = 0.0
    latch_pj: float = 0.0
    transfer_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.frontend_pj
            + self.window_pj
            + self.fu_pj
            + self.memory_pj
            + self.network_pj
            + self.latch_pj
            + self.transfer_pj
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            frontend_pj=self.frontend_pj + other.frontend_pj,
            window_pj=self.window_pj + other.window_pj,
            fu_pj=self.fu_pj + other.fu_pj,
            memory_pj=self.memory_pj + other.memory_pj,
            network_pj=self.network_pj + other.network_pj,
            latch_pj=self.latch_pj + other.latch_pj,
            transfer_pj=self.transfer_pj + other.transfer_pj,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            **{k: v * factor for k, v in vars(self).items()}
        )


class EnergyModel:
    """Prices host traces and accelerator frames."""

    def __init__(self, energy: EnergyConfig, cgra: CGRAConfig):
        self.energy = energy
        self.cgra = cgra

    # -- host ------------------------------------------------------------------

    def host_energy(self, result: OOOResult) -> EnergyBreakdown:
        """Energy of an OOO trace segment from its event census."""
        e = self.energy
        n = result.instructions
        mem_pj = (
            result.mem_ops * e.l1_access_pj
            + result.l2_hits * e.l2_access_pj
            + result.dram_accesses * e.dram_access_pj
        )
        return EnergyBreakdown(
            frontend_pj=n * e.host_frontend_pj,
            window_pj=n * e.host_window_pj,
            fu_pj=result.int_ops * e.host_int_op_pj
            + result.fp_ops * e.host_fp_op_pj
            + result.branches * e.host_int_op_pj,
            memory_pj=mem_pj,
        )

    def host_memory_energy_levels(self, result: OOOResult) -> "Dict[str, float]":
        """Host memory energy split per hierarchy level (pJ).

        The per-level terms sum to :meth:`host_energy`'s ``memory_pj`` by
        construction — the attribution ledger uses this split to charge
        ``host.mem.l1``/``l2``/``dram`` classes exactly.
        """
        e = self.energy
        return {
            "l1": result.mem_ops * e.l1_access_pj,
            "l2": result.l2_hits * e.l2_access_pj,
            "dram": result.dram_accesses * e.dram_access_pj,
        }

    # -- accelerator -----------------------------------------------------------------

    def frame_energy(
        self,
        n_int_ops: int,
        n_fp_ops: int,
        n_mem_ops: int,
        n_edges: int,
        l2_accesses: int = 0,
        dram_accesses: int = 0,
    ) -> EnergyBreakdown:
        """Energy of one frame invocation on the CGRA.

        There is no front-end and no OOO window: ops pay their FU energy,
        each dataflow edge pays one switch+link traversal, and every op
        latches its result.  Memory ops additionally pay the L2/DRAM cost.
        """
        c = self.cgra
        e = self.energy
        total_ops = n_int_ops + n_fp_ops + n_mem_ops
        return EnergyBreakdown(
            fu_pj=n_int_ops * c.int_fu_pj + n_fp_ops * c.fp_fu_pj,
            network_pj=n_edges * c.network_pj,
            latch_pj=total_ops * c.latch_pj,
            memory_pj=l2_accesses * e.l2_access_pj
            + dram_accesses * e.dram_access_pj,
        )

    def frame_energy_from_dfg(self, dfg: DataflowGraph) -> EnergyBreakdown:
        """Convenience: price a frame's speculative DFG directly."""
        n_int = n_fp = n_mem = 0
        n_edges = 0
        l2 = 0
        for node in dfg.nodes:
            inst = node.inst
            n_edges += len(node.deps)
            if inst.is_memory:
                n_mem += 1
                l2 += 1
            elif inst.is_float:
                n_fp += 1
            else:
                n_int += 1
        return self.frame_energy(n_int, n_fp, n_mem, n_edges, l2_accesses=l2)

    def transfer_energy(self, n_values: int) -> EnergyBreakdown:
        """Live-in/out movement through the L2."""
        return EnergyBreakdown(
            transfer_pj=n_values * self.energy.transfer_per_value_pj
        )
