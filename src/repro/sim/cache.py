"""Set-associative cache models: host L1 and the banked NUCA L2.

The caches are trace-driven: :meth:`Cache.access` returns hit/miss and the
model charges latency accordingly.  :class:`MemorySystem` stacks L1 over the
banked L2 over DRAM for the host, while the accelerator port bypasses the L1
(the CGRA is uncore and cache-coherent at L2, per §VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import CacheConfig, MemoryHierarchyConfig


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative, write-back, write-allocate cache with LRU."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.sets: List[Dict[int, bool]] = [dict() for _ in range(config.sets)]
        # each set maps tag -> dirty flag; dict order gives LRU (oldest first)
        self.stats = CacheStats()

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.sets, line // self.config.sets

    def access(self, addr: int, is_write: bool) -> bool:
        """Touch ``addr``; returns True on hit.  Allocates on miss."""
        index, tag = self._locate(addr)
        ways = self.sets[index]
        if tag in ways:
            self.stats.hits += 1
            dirty = ways.pop(tag) or is_write
            ways[tag] = dirty  # re-insert as most recent
            return True
        self.stats.misses += 1
        if len(ways) >= self.config.associativity:
            victim_tag = next(iter(ways))
            victim_dirty = ways.pop(victim_tag)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
        ways[tag] = is_write
        return False

    def contains(self, addr: int) -> bool:
        index, tag = self._locate(addr)
        return tag in self.sets[index]

    def invalidate(self, addr: int) -> bool:
        """Drop the line; returns True if it was dirty (writeback needed)."""
        index, tag = self._locate(addr)
        ways = self.sets[index]
        if tag in ways:
            return ways.pop(tag)
        return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()


class BankedL2:
    """The NUCA L2: 8 banks selected by line address (Table V)."""

    def __init__(self, hierarchy: MemoryHierarchyConfig):
        self.hierarchy = hierarchy
        per_bank = CacheConfig(
            size_bytes=hierarchy.l2.size_bytes // hierarchy.l2_banks,
            associativity=hierarchy.l2.associativity,
            line_bytes=hierarchy.l2.line_bytes,
            latency=hierarchy.l2.latency,
        )
        self.banks = [Cache(per_bank) for _ in range(hierarchy.l2_banks)]

    def bank_for(self, addr: int) -> Cache:
        line = addr // self.hierarchy.l2.line_bytes
        return self.banks[line % len(self.banks)]

    def access(self, addr: int, is_write: bool) -> bool:
        return self.bank_for(addr).access(addr, is_write)

    @property
    def stats(self) -> CacheStats:
        total = CacheStats()
        for bank in self.banks:
            total.hits += bank.stats.hits
            total.misses += bank.stats.misses
            total.evictions += bank.stats.evictions
            total.writebacks += bank.stats.writebacks
        return total


@dataclass
class AccessResult:
    """Latency and level of one memory access."""

    latency: int
    level: str  # "l1" | "l2" | "dram"


class MemorySystem:
    """Host L1 backed by the banked L2 backed by DRAM.

    The accelerator port (:meth:`accel_access`) goes straight to the L2 and
    invalidates/downgrades the host L1 copy, the MESI-style behaviour the
    uncore CGRA relies on.
    """

    def __init__(self, hierarchy: Optional[MemoryHierarchyConfig] = None):
        self.hierarchy = hierarchy or MemoryHierarchyConfig()
        self.l1 = Cache(self.hierarchy.l1)
        self.l2 = BankedL2(self.hierarchy)
        self.dram_accesses = 0
        self.coherence_invalidations = 0

    # -- host port ------------------------------------------------------------

    def host_access(self, addr: int, is_write: bool) -> AccessResult:
        if self.l1.access(addr, is_write):
            return AccessResult(self.hierarchy.l1.latency, "l1")
        if self.l2.access(addr, is_write):
            return AccessResult(
                self.hierarchy.l1.latency + self.hierarchy.l2.latency, "l2"
            )
        self.dram_accesses += 1
        return AccessResult(
            self.hierarchy.l1.latency
            + self.hierarchy.l2.latency
            + self.hierarchy.dram_latency,
            "dram",
        )

    # -- accelerator port ----------------------------------------------------------

    def accel_access(self, addr: int, is_write: bool) -> AccessResult:
        extra = 0
        if is_write and self.l1.contains(addr):
            # MESI: the accelerator's write invalidates the host L1 copy
            dirty = self.l1.invalidate(addr)
            self.coherence_invalidations += 1
            if dirty:
                extra += self.hierarchy.l2.latency  # writeback to L2 first
        elif not is_write and self.l1.contains(addr):
            # read snoops a (possibly dirty) host copy: serve via L2
            extra += 2
        if self.l2.access(addr, is_write):
            return AccessResult(self.hierarchy.l2.latency + extra, "l2")
        self.dram_accesses += 1
        return AccessResult(
            self.hierarchy.l2.latency + self.hierarchy.dram_latency + extra,
            "dram",
        )

    # -- bulk profiling -----------------------------------------------------------

    def profile_stream(
        self, stream, port: str = "host"
    ) -> "StreamProfile":
        """Replay an (opcode, address) stream; returns average latencies."""
        access = self.host_access if port == "host" else self.accel_access
        load_lat = load_n = store_lat = store_n = 0
        levels = {"l1": 0, "l2": 0, "dram": 0}
        for opcode, addr in stream:
            res = access(addr, opcode == "store")
            levels[res.level] += 1
            if opcode == "store":
                store_lat += res.latency
                store_n += 1
            else:
                load_lat += res.latency
                load_n += 1
        return StreamProfile(
            avg_load_latency=(load_lat / load_n) if load_n else 0.0,
            avg_store_latency=(store_lat / store_n) if store_n else 0.0,
            loads=load_n,
            stores=store_n,
            level_counts=levels,
        )


@dataclass
class StreamProfile:
    """Aggregate result of replaying a memory trace."""

    avg_load_latency: float
    avg_store_latency: float
    loads: int
    stores: int
    level_counts: Dict[str, int] = field(default_factory=dict)
