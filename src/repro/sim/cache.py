"""Set-associative cache models: host L1 and the banked NUCA L2.

The caches are trace-driven: :meth:`Cache.access` returns hit/miss and the
model charges latency accordingly.  :class:`MemorySystem` stacks L1 over the
banked L2 over DRAM for the host, while the accelerator port bypasses the L1
(the CGRA is uncore and cache-coherent at L2, per §VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import CacheConfig, MemoryHierarchyConfig


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative, write-back, write-allocate cache with LRU."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.sets: List[Dict[int, bool]] = [dict() for _ in range(config.sets)]
        # each set maps tag -> dirty flag; dict order gives LRU (oldest first)
        self.stats = CacheStats()

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.sets, line // self.config.sets

    def access(self, addr: int, is_write: bool) -> bool:
        """Touch ``addr``; returns True on hit.  Allocates on miss."""
        index, tag = self._locate(addr)
        ways = self.sets[index]
        if tag in ways:
            self.stats.hits += 1
            dirty = ways.pop(tag) or is_write
            ways[tag] = dirty  # re-insert as most recent
            return True
        self.stats.misses += 1
        if len(ways) >= self.config.associativity:
            victim_tag = next(iter(ways))
            victim_dirty = ways.pop(victim_tag)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
        ways[tag] = is_write
        return False

    def contains(self, addr: int) -> bool:
        index, tag = self._locate(addr)
        return tag in self.sets[index]

    def invalidate(self, addr: int) -> bool:
        """Drop the line; returns True if it was dirty (writeback needed)."""
        index, tag = self._locate(addr)
        ways = self.sets[index]
        if tag in ways:
            return ways.pop(tag)
        return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()


class BankedL2:
    """The NUCA L2: 8 banks selected by line address (Table V)."""

    def __init__(self, hierarchy: MemoryHierarchyConfig):
        self.hierarchy = hierarchy
        per_bank = CacheConfig(
            size_bytes=hierarchy.l2.size_bytes // hierarchy.l2_banks,
            associativity=hierarchy.l2.associativity,
            line_bytes=hierarchy.l2.line_bytes,
            latency=hierarchy.l2.latency,
        )
        self.banks = [Cache(per_bank) for _ in range(hierarchy.l2_banks)]

    def bank_for(self, addr: int) -> Cache:
        line = addr // self.hierarchy.l2.line_bytes
        return self.banks[line % len(self.banks)]

    def access(self, addr: int, is_write: bool) -> bool:
        return self.bank_for(addr).access(addr, is_write)

    @property
    def stats(self) -> CacheStats:
        total = CacheStats()
        for bank in self.banks:
            total.hits += bank.stats.hits
            total.misses += bank.stats.misses
            total.evictions += bank.stats.evictions
            total.writebacks += bank.stats.writebacks
        return total


@dataclass
class AccessResult:
    """Latency and level of one memory access."""

    latency: int
    level: str  # "l1" | "l2" | "dram"


class MemorySystem:
    """Host L1 backed by the banked L2 backed by DRAM.

    The accelerator port (:meth:`accel_access`) goes straight to the L2 and
    invalidates/downgrades the host L1 copy, the MESI-style behaviour the
    uncore CGRA relies on.
    """

    def __init__(self, hierarchy: Optional[MemoryHierarchyConfig] = None):
        self.hierarchy = hierarchy or MemoryHierarchyConfig()
        self.l1 = Cache(self.hierarchy.l1)
        self.l2 = BankedL2(self.hierarchy)
        self.dram_accesses = 0
        self.coherence_invalidations = 0

    # -- host port ------------------------------------------------------------

    def host_access(self, addr: int, is_write: bool) -> AccessResult:
        if self.l1.access(addr, is_write):
            return AccessResult(self.hierarchy.l1.latency, "l1")
        if self.l2.access(addr, is_write):
            return AccessResult(
                self.hierarchy.l1.latency + self.hierarchy.l2.latency, "l2"
            )
        self.dram_accesses += 1
        return AccessResult(
            self.hierarchy.l1.latency
            + self.hierarchy.l2.latency
            + self.hierarchy.dram_latency,
            "dram",
        )

    # -- accelerator port ----------------------------------------------------------

    def accel_access(self, addr: int, is_write: bool) -> AccessResult:
        extra = 0
        if is_write and self.l1.contains(addr):
            # MESI: the accelerator's write invalidates the host L1 copy
            dirty = self.l1.invalidate(addr)
            self.coherence_invalidations += 1
            if dirty:
                extra += self.hierarchy.l2.latency  # writeback to L2 first
        elif not is_write and self.l1.contains(addr):
            # read snoops a (possibly dirty) host copy: serve via L2
            extra += 2
        if self.l2.access(addr, is_write):
            return AccessResult(self.hierarchy.l2.latency + extra, "l2")
        self.dram_accesses += 1
        return AccessResult(
            self.hierarchy.l2.latency + self.hierarchy.dram_latency + extra,
            "dram",
        )

    # -- bulk profiling -----------------------------------------------------------

    def _compile_port(self, port: str):
        """A replay closure for one port: ``access(addr, is_write) ->
        (latency, level_index)`` with every per-access attribute lookup
        hoisted into locals and no :class:`AccessResult` allocation.

        Level indices are 0=l1, 1=l2, 2=dram.  The closure mutates the
        same cache state as :meth:`host_access`/:meth:`accel_access` in
        the same order, except DRAM/coherence tallies which the caller
        folds back via the returned ``finish()`` hook — final
        :class:`MemorySystem` state is identical either way.
        """
        hier = self.hierarchy
        l1_lat = hier.l1.latency
        l2_lat = hier.l2.latency
        dram_lat = hier.dram_latency
        if port == "host":
            l1_access = self.l1.access
            l2_access = self.l2.access
            host_l12 = l1_lat + l2_lat
            host_dram = host_l12 + dram_lat
            counters = {"dram": 0}

            def access(addr: int, is_write: bool):
                if l1_access(addr, is_write):
                    return l1_lat, 0
                if l2_access(addr, is_write):
                    return host_l12, 1
                counters["dram"] += 1
                return host_dram, 2

            def finish() -> None:
                self.dram_accesses += counters["dram"]
                counters["dram"] = 0

            return access, finish

        l1_contains = self.l1.contains
        l1_invalidate = self.l1.invalidate
        l2_access = self.l2.access
        accel_dram = l2_lat + dram_lat
        counters = {"dram": 0, "inval": 0}

        def access(addr: int, is_write: bool):  # noqa: F811 - port variant
            extra = 0
            if l1_contains(addr):
                if is_write:
                    # MESI: the accelerator's write invalidates the host copy
                    dirty = l1_invalidate(addr)
                    counters["inval"] += 1
                    if dirty:
                        extra += l2_lat  # writeback to L2 first
                else:
                    # read snoops a (possibly dirty) host copy: serve via L2
                    extra += 2
            if l2_access(addr, is_write):
                return l2_lat + extra, 1
            counters["dram"] += 1
            return accel_dram + extra, 2

        def finish() -> None:  # noqa: F811 - port variant
            self.dram_accesses += counters["dram"]
            self.coherence_invalidations += counters["inval"]
            counters["dram"] = counters["inval"] = 0

        return access, finish

    def profile_stream(
        self, stream, port: str = "host"
    ) -> "StreamProfile":
        """Replay an (opcode, address) stream; returns average latencies."""
        access, finish = self._compile_port(port)
        load_lat = load_n = store_lat = store_n = 0
        l1_n = l2_n = dram_n = 0
        for opcode, addr in stream:
            is_store = opcode == "store"
            lat, level = access(addr, is_store)
            if level == 0:
                l1_n += 1
            elif level == 1:
                l2_n += 1
            else:
                dram_n += 1
            if is_store:
                store_lat += lat
                store_n += 1
            else:
                load_lat += lat
                load_n += 1
        finish()
        return StreamProfile(
            avg_load_latency=(load_lat / load_n) if load_n else 0.0,
            avg_store_latency=(store_lat / store_n) if store_n else 0.0,
            loads=load_n,
            stores=store_n,
            level_counts={"l1": l1_n, "l2": l2_n, "dram": dram_n},
        )


@dataclass
class StreamProfile:
    """Aggregate result of replaying a memory trace."""

    avg_load_latency: float
    avg_store_latency: float
    loads: int
    stores: int
    level_counts: Dict[str, int] = field(default_factory=dict)


def profile_stream_dual(
    hierarchy: Optional[MemoryHierarchyConfig], stream
) -> Tuple[StreamProfile, StreamProfile]:
    """Replay one (opcode, address) stream through a host-port and an
    accel-port :class:`MemorySystem` in a single pass.

    Each port owns its own MemorySystem, so their cache states are
    disjoint and the interleaved walk produces exactly the profiles two
    sequential :meth:`MemorySystem.profile_stream` replays would — the
    stream (usually the longest array in a profiled workload) is just
    traversed once instead of twice.
    """
    host = MemorySystem(hierarchy)
    accel = MemorySystem(hierarchy)
    h_access, h_finish = host._compile_port("host")
    a_access, a_finish = accel._compile_port("accel")
    h_load_lat = h_load_n = h_store_lat = h_store_n = 0
    a_load_lat = a_load_n = a_store_lat = a_store_n = 0
    h_levels = [0, 0, 0]
    a_levels = [0, 0, 0]
    for opcode, addr in stream:
        is_store = opcode == "store"
        lat, level = h_access(addr, is_store)
        h_levels[level] += 1
        a_lat, a_level = a_access(addr, is_store)
        a_levels[a_level] += 1
        if is_store:
            h_store_lat += lat
            h_store_n += 1
            a_store_lat += a_lat
            a_store_n += 1
        else:
            h_load_lat += lat
            h_load_n += 1
            a_load_lat += a_lat
            a_load_n += 1
    h_finish()
    a_finish()
    host_profile = StreamProfile(
        avg_load_latency=(h_load_lat / h_load_n) if h_load_n else 0.0,
        avg_store_latency=(h_store_lat / h_store_n) if h_store_n else 0.0,
        loads=h_load_n,
        stores=h_store_n,
        level_counts={"l1": h_levels[0], "l2": h_levels[1], "dram": h_levels[2]},
    )
    accel_profile = StreamProfile(
        avg_load_latency=(a_load_lat / a_load_n) if a_load_n else 0.0,
        avg_store_latency=(a_store_lat / a_store_n) if a_store_n else 0.0,
        loads=a_load_n,
        stores=a_store_n,
        level_counts={"l1": a_levels[0], "l2": a_levels[1], "dram": a_levels[2]},
    )
    return host_profile, accel_profile


def profile_stream_dual_array(
    hierarchy: Optional[MemoryHierarchyConfig], stream
) -> Tuple[StreamProfile, StreamProfile]:
    """Closed-form array replay of :func:`profile_stream_dual`.

    Exactness argument.  Both ports start from empty caches and share one
    line size, and an LRU set that sees at most ``associativity``
    *distinct* lines over the whole stream never evicts — so in that
    regime "hit" is exactly "not the first access to this line":

    * host port: L1 hit ⟺ the line was touched before.  L1 misses are
      first touches, so the L2 (and DRAM) see each distinct line exactly
      once — every L1 miss goes to DRAM regardless of L2 geometry.
    * accel port: its :class:`MemorySystem` L1 is never filled (nothing
      inserts through the accel port), so the coherence probe never
      fires and the port is a pure banked L2 — hit ⟺ not a first touch,
      provided no combined (bank, set) exceeds the L2 associativity.
    * dirty bits and writebacks change statistics only, never hit/miss
      or latency, so loads and stores classify identically.

    The per-set distinct-line counts are checked up front; any overflow
    (possible for adversarial streams, never observed on the suite)
    falls back to the exact sequential replay, as does the pure-Python
    backend — either way the returned profiles are bit-identical to
    :func:`profile_stream_dual` (integer latency sums, same divisions).
    """
    from .array_kernels import get_numpy

    np = get_numpy()
    hier = hierarchy or MemoryHierarchyConfig()
    if np is None or hier.l1.line_bytes != hier.l2.line_bytes:
        return profile_stream_dual(hierarchy, stream)
    if not isinstance(stream, (list, tuple)):
        stream = list(stream)
    n = len(stream)
    if n == 0:
        return profile_stream_dual(hierarchy, stream)

    addrs = np.fromiter((addr for _, addr in stream), np.int64, count=n)
    is_store = np.fromiter(
        (op == "store" for op, _ in stream), bool, count=n
    )
    lines = addrs // hier.l1.line_bytes
    _, first_idx = np.unique(lines, return_index=True)
    distinct = lines[first_idx]

    # closed form is valid only while no set can ever evict
    l1_per_set = np.bincount(distinct % hier.l1.sets)
    if l1_per_set.size and int(l1_per_set.max()) > hier.l1.associativity:
        return profile_stream_dual(hierarchy, stream)
    per_bank_sets = (hier.l2.size_bytes // hier.l2_banks) // (
        hier.l2.associativity * hier.l2.line_bytes
    )
    l2_set = (distinct % hier.l2_banks) * per_bank_sets + (
        distinct % per_bank_sets
    )
    l2_per_set = np.bincount(l2_set)
    if l2_per_set.size and int(l2_per_set.max()) > hier.l2.associativity:
        return profile_stream_dual(hierarchy, stream)

    first = np.zeros(n, dtype=bool)
    first[first_idx] = True
    l1_lat = hier.l1.latency
    l2_lat = hier.l2.latency
    host_lat = np.where(first, l1_lat + l2_lat + hier.dram_latency, l1_lat)
    accel_lat = np.where(first, l2_lat + hier.dram_latency, l2_lat)

    loads = ~is_store
    n_stores = int(is_store.sum())
    n_loads = n - n_stores
    n_distinct = int(first_idx.size)
    h_load_lat = int(host_lat[loads].sum())
    h_store_lat = int(host_lat[is_store].sum())
    a_load_lat = int(accel_lat[loads].sum())
    a_store_lat = int(accel_lat[is_store].sum())
    host_profile = StreamProfile(
        avg_load_latency=(h_load_lat / n_loads) if n_loads else 0.0,
        avg_store_latency=(h_store_lat / n_stores) if n_stores else 0.0,
        loads=n_loads,
        stores=n_stores,
        level_counts={"l1": n - n_distinct, "l2": 0, "dram": n_distinct},
    )
    accel_profile = StreamProfile(
        avg_load_latency=(a_load_lat / n_loads) if n_loads else 0.0,
        avg_store_latency=(a_store_lat / n_stores) if n_stores else 0.0,
        loads=n_loads,
        stores=n_stores,
        level_counts={"l1": 0, "l2": n - n_distinct, "dram": n_distinct},
    )
    return host_profile, accel_profile
