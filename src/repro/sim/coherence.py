"""MESI coherence directory over the shared L2 (paper Table V: "Shared NUCA
L2 (MESI)").

The directory tracks, per cache line, the MESI state at each agent (the host
core's L1 is agent 0, the accelerator is agent 1; more agents are allowed).
:meth:`MESIDirectory.read`/:meth:`write` apply the protocol transition and
return the coherence actions taken, which the memory system converts into
latency.  This is the substrate behind
:meth:`repro.sim.cache.MemorySystem.accel_access`'s invalidation behaviour,
kept separate so the protocol itself is unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

MODIFIED = "M"
EXCLUSIVE = "E"
SHARED = "S"
INVALID = "I"

STATES = (MODIFIED, EXCLUSIVE, SHARED, INVALID)


@dataclass
class CoherenceActions:
    """What the protocol did for one access."""

    new_state: str
    invalidated: List[int] = field(default_factory=list)  # agents invalidated
    writeback: bool = False  # a dirty copy was flushed to L2
    data_from: str = "l2"  # "l2" | "owner" | "none"


class CoherenceError(Exception):
    """Protocol invariant violation (indicates a model bug)."""


class MESIDirectory:
    """Directory-based MESI over an arbitrary number of caching agents."""

    def __init__(self, n_agents: int, line_bytes: int = 64):
        if n_agents < 1:
            raise CoherenceError("need at least one agent")
        self.n_agents = n_agents
        self.line_bytes = line_bytes
        self._state: Dict[int, List[str]] = {}
        self.invalidation_count = 0
        self.writeback_count = 0

    def _line(self, addr: int) -> int:
        return addr // self.line_bytes

    def _states_for(self, addr: int) -> List[str]:
        line = self._line(addr)
        states = self._state.get(line)
        if states is None:
            states = [INVALID] * self.n_agents
            self._state[line] = states
        return states

    def state(self, agent: int, addr: int) -> str:
        return self._states_for(addr)[agent]

    # -- protocol transitions -----------------------------------------------------

    def read(self, agent: int, addr: int) -> CoherenceActions:
        """Agent issues a read (PrRd / BusRd)."""
        states = self._states_for(addr)
        mine = states[agent]
        if mine in (MODIFIED, EXCLUSIVE, SHARED):
            return CoherenceActions(new_state=mine, data_from="none")

        # miss: look at the other agents
        owner = next(
            (a for a, s in enumerate(states) if s in (MODIFIED, EXCLUSIVE)), None
        )
        sharers = [a for a, s in enumerate(states) if s == SHARED]
        if owner is not None:
            writeback = states[owner] == MODIFIED
            if writeback:
                self.writeback_count += 1
            states[owner] = SHARED
            states[agent] = SHARED
            return CoherenceActions(
                new_state=SHARED, writeback=writeback, data_from="owner"
            )
        if sharers:
            states[agent] = SHARED
            return CoherenceActions(new_state=SHARED, data_from="l2")
        states[agent] = EXCLUSIVE
        return CoherenceActions(new_state=EXCLUSIVE, data_from="l2")

    def write(self, agent: int, addr: int) -> CoherenceActions:
        """Agent issues a write (PrWr / BusRdX or BusUpgr)."""
        states = self._states_for(addr)
        mine = states[agent]
        if mine == MODIFIED:
            return CoherenceActions(new_state=MODIFIED, data_from="none")

        invalidated: List[int] = []
        writeback = False
        for other, s in enumerate(states):
            if other == agent or s == INVALID:
                continue
            if s == MODIFIED:
                writeback = True
                self.writeback_count += 1
            states[other] = INVALID
            invalidated.append(other)
            self.invalidation_count += 1
        states[agent] = MODIFIED
        return CoherenceActions(
            new_state=MODIFIED,
            invalidated=invalidated,
            writeback=writeback,
            data_from="owner" if writeback else ("none" if mine != INVALID else "l2"),
        )

    def evict(self, agent: int, addr: int) -> bool:
        """Agent drops its copy; returns True if a writeback was needed."""
        states = self._states_for(addr)
        dirty = states[agent] == MODIFIED
        if dirty:
            self.writeback_count += 1
        states[agent] = INVALID
        return dirty

    # -- invariants -----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Single-writer / multiple-reader: raise if MESI is violated."""
        for line, states in self._state.items():
            owners = [s for s in states if s in (MODIFIED, EXCLUSIVE)]
            sharers = [s for s in states if s == SHARED]
            if len(owners) > 1:
                raise CoherenceError(
                    "line %#x has %d owners" % (line, len(owners))
                )
            if owners and sharers:
                raise CoherenceError(
                    "line %#x has owner and sharers simultaneously" % line
                )
