"""Vectorized max-plus OOO timing walk (perf layer 6).

The out-of-order replay of a repeated path is a *max-plus recurrence*:
every micro-op's issue time is a ``max`` over operand finish times, pool
free times and the allocation front, followed by constant additions.
After the array kernel tier landed, this walk was the Amdahl bottleneck
of the simulate stage (~80% of the array-tier residual): the trace
accounting had become columnar while every path cost still came from
the sequential per-micro-op Python loop in
:func:`~repro.sim.core_ooo.simulate_path_reps`.

This module compiles each profiled path **once** into dense micro-op
columns and replays many paths ("lanes") through the recurrence at once:

* **compilation** (:func:`compile_path`) resolves every operand — φs
  included, chained φs included — to a definition slot in a
  two-repetition space: ``0`` = the never-written ground (finish time
  0.0), ``1..stride`` = the previous repetition's real-uop position,
  ``stride+1..2·stride`` = the current repetition's.  A slot is
  directly an index into the walk's finish buffer.  Because every
  repetition
  of a path writes the same values, repetition ``r ≥ 2`` is repetition
  2 with slots shifted — so the *wraparound* program (φs of the first
  block bound to the last block) covers any repetition, and a two-rep
  finish buffer ``[ground | previous rep | current rep]`` carries all
  live values.  The first repetition needs no program of its own: its
  previous-rep region starts out all zeros, and 0.0 *is* the ground
  finish time, so a previous-rep slot read during repetition 1 yields
  exactly the ground value the entry-resolved program would have used.
  Back-edge φ chains can reach **two or more** repetitions back (the
  per-event walk resolves φs sequentially, so a φ reading a later φ
  sees its previous-repetition value); such paths have no slot in the
  window, compilation declines them (``None``), and the walk replays
  those lanes through the scalar record walk — bitwise, just not
  columnar (``fallback`` in the walk stats).
* **the vectorized walk** (:func:`simulate_paths_vectorized`) holds
  fetch slots, the ROB ring, the retire ring, the ALU/FPU pools and the
  finish buffer as per-lane columns and advances all active lanes one
  micro-op position per step as whole-column numpy operations: a
  finish-time gather plus max-reduce per operand column, argmin-replace
  pool allocation (which preserves the free-time multiset the scalar
  heaps maintain — only the minimum is ever observable), and per-lane
  ring gathers for retire/ROB state.  All times are integers carried in
  float64, so every max/+ is IEEE-exact and the walk is **bitwise
  identical** to :meth:`OOOModel.simulate` — the scalar loop stays the
  oracle, property-tested against this tier.
* **steady-state closure composes on top**: at each repetition boundary
  the walk snapshots every candidate lane's machine state relative to
  its retire front (dead values clamped to a ``-inf`` sentinel, exactly
  the :func:`simulate_path_reps` canonicalisation), closes lanes whose
  two consecutive boundary snapshots match by exact extrapolation, and
  compacts the closed/finished lanes away.  The ROB ring's filling
  phase stays explicit per lane: a lane whose ring can fill is not
  comparable until the ring has been full at two consecutive boundaries
  — the 458.sjeng transient that defeats periodicity inside the
  production ``amortise_reps=4`` window is thereby walked explicitly,
  bit for bit, while every periodic lane still closes early.

numpy is optional and plans can be tiny: :func:`select_lane_tier` picks
per (workload, config) — once, memoized in ``SimulationMemo`` — between
the numpy lane-lockstep walk (enough effective lanes to amortise the
per-step dispatch), the compiled per-lane pure-Python walk
(:func:`_walk_lane_python`, same columns, same closure, list-indexed
state — faster than the record walk and the no-numpy parity tier), the
legacy lockstep batch, and the scalar record walk.  The decision and
its rejection reason feed the ``sim.lane_tier`` obs counter.  Compiled
column programs are memoized identity-keyed on the profile (like
schedules and RLE views), so the three strategies and fail-safe retries
share one compilation.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from heapq import heapify, heapreplace
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import Instruction
from .array_kernels import (
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    get_numpy,
    ragged_to_matrix,
)
from .core_ooo import (
    _UOP_BRANCH,
    _UOP_FP,
    _UOP_INT,
    _UOP_LOAD,
    _UOP_PHI,
    _UOP_STORE,
    OOOModel,
    OOOResult,
    _batch_geometry,
    _path_records,
    resolve_wraparound_slots,
    simulate_path_reps,
    simulate_paths_batch,
)

log = logging.getLogger(__name__)

#: lane-tier labels (the ``sim.lane_tier`` counter's ``tier`` values)
LANE_TIER_SCALAR = "scalar"
LANE_TIER_BATCH = "batch"
LANE_TIER_VECTOR = "vector"
LANE_TIERS = (LANE_TIER_SCALAR, LANE_TIER_BATCH, LANE_TIER_VECTOR)

#: environment override forcing one tier (test/bench hook; the forced
#: tier still falls back bit-identically when numpy is unavailable)
LANE_TIER_ENV = "REPRO_LANE_TIER"

#: minimum effective lane parallelism (total micro-ops / longest lane)
#: for the numpy lockstep recurrence to beat the compiled per-lane
#: walk: each step costs a fixed ~15 numpy dispatches regardless of
#: width, so the recurrence only wins on wide plans.  Measured on the
#: 29-workload suite (see docs/performance.md layer 6): at ~60
#: effective lanes (186.crafty) the per-lane walk still wins, at ~200
#: (458.sjeng) the lockstep walk does — the threshold sits between.
VECTOR_MIN_EFFECTIVE_LANES = 100

#: below this many total micro-ops the whole plan is too small for any
#: compiled tier to matter; the scalar record walk keeps the code path
#: trivially warm (and is what a one-path probe costs anyway)
VECTOR_MIN_UOPS = 64

_STALE = float("-inf")


# -- columnar path programs ---------------------------------------------------


@dataclass
class CompiledPath:
    """One path compiled to rep-relative micro-op columns.

    ``srcs`` holds one slot tuple per real micro-op position, resolved
    for the wraparound repetition over a two-repetition slot space:
    ``0`` is ground, ``1..stride`` the previous repetition's real
    micro-op (1-based), ``stride+1..2·stride`` the current
    repetition's.  A slot is therefore *directly* an index into the
    walk's ``[ground | prev | cur]`` finish buffer — no per-element
    decode anywhere.  The same program is exact for the **first**
    repetition too, because the previous-rep finish region starts out
    all zeros and 0.0 is the ground finish time — a previous-rep read
    during repetition 1 yields precisely the ground value that
    entry-resolved slots would have named.  ``counts`` is the per-kind
    census of
    **one** repetition — repetitions are structurally identical, so any
    census is ``counts × reps`` with no accumulation during the walk.
    """

    stride: int  # real micro-ops per repetition
    width: int  # maximum operand fan-in
    kinds: Tuple[int, ...]
    lats: Tuple[int, ...]
    srcs: Tuple[Tuple[int, ...], ...]
    counts: Tuple[int, ...]  # per _UOP_* kind, one repetition
    _np_cols: Optional[tuple] = field(default=None, repr=False)
    _py_progs: Optional[dict] = field(default=None, repr=False)

    def census(self, reps: int) -> OOOResult:
        c = self.counts
        return OOOResult(
            instructions=self.stride * reps,
            int_ops=c[_UOP_INT] * reps,
            fp_ops=c[_UOP_FP] * reps,
            loads=c[_UOP_LOAD] * reps,
            stores=c[_UOP_STORE] * reps,
            branches=c[_UOP_BRANCH] * reps,
            phis=c[_UOP_PHI] * reps,
        )

    def np_columns(self, np) -> tuple:
        """(kinds int8, lats float64, rel-slot matrix)."""
        if self._np_cols is None:
            self._np_cols = (
                np.asarray(self.kinds, dtype=np.int8),
                np.asarray(self.lats, dtype=np.float64),
                ragged_to_matrix(self.srcs, np),
            )
        return self._np_cols

    def py_program(self, rob_entries: int, retire_width: int) -> tuple:
        """Step list for the per-lane Python walk.

        Each step is ``(kind, latency, buffer indices, write index,
        ROB column, retire column)``.  The source slots need no
        remapping at all: a raw slot *is* its index into the lane's
        ``[ground | prev 1..S | cur S+1..2S]`` finish buffer, and the
        write index of position ``k`` is its own slot ``S+1+k``.  Only
        the physical ring columns are computed here, baked in under the
        boundary-rolled ring convention (position ``k`` always lands on
        column ``k mod size`` — see :func:`_walk_lane_python`).  Cached
        per ring geometry.
        """
        if self._py_progs is None:
            self._py_progs = {}
        cached = self._py_progs.get((rob_entries, retire_width))
        if cached is None:
            S = self.stride
            cached = tuple(zip(
                self.kinds,
                [float(lat) for lat in self.lats],  # float+float fast path
                self.srcs,
                range(S + 1, 2 * S + 1),
                [k % rob_entries for k in range(S)],
                [k % retire_width for k in range(S)],
            ))
            self._py_progs[(rob_entries, retire_width)] = cached
        return cached


_NO_SRCS = ()


def _block_fragment(model: OOOModel, block) -> tuple:
    """Path-independent compile fragment of one block, memoized.

    ``(kinds, lats, counts)``: the kind/latency columns and the
    per-kind census of the block's real micro-ops — identical in every
    path and repetition, so they concatenate per path at C speed.
    Operand resolution is path-dependent and lives in
    :func:`~repro.sim.core_ooo.resolve_wraparound_slots`.
    """
    cache = model.__dict__.setdefault("_ooo_fragment_cache", {})
    frag = cache.get(block)
    if frag is None:
        recs, _phi_slots, _n_real = _path_records(model, block)
        kinds: List[int] = []
        lats: List[int] = []
        counts = [0] * 6
        for rec in recs:
            if rec[0] == _UOP_PHI:
                counts[_UOP_PHI] += 1
            else:
                kind, _inst, latency, _writes, _ops = rec
                counts[kind] += 1
                kinds.append(kind)
                lats.append(latency)
        frag = (tuple(kinds), tuple(lats), tuple(counts))
        cache[block] = frag
    return frag


def compile_path(model: OOOModel, blocks) -> Optional[CompiledPath]:
    """Compile ``blocks`` (one path body) into rep-relative columns.

    The kind/latency columns and the per-kind census concatenate from
    memoized per-block fragments; the operand columns come from
    :func:`~repro.sim.core_ooo.resolve_wraparound_slots`, which resolves
    every operand — φs included, chained φs included — into the
    two-repetition slot space :class:`CompiledPath` documents.  The
    single wraparound program is exact for the first repetition too
    (see :class:`CompiledPath`), so no first-rep operand resolution
    happens at all.

    Returns ``None`` when the path cannot be expressed in the
    two-repetition window: a back-edge φ chain whose dependency reaches
    two or more repetitions back (the per-event walk resolves φs
    sequentially, so a φ reading a later φ sees its previous-repetition
    value), or a path revisiting a block.  Callers replay such lanes
    with the scalar record walk, which carries the finish map
    explicitly and is the bitwise oracle.
    """
    blocks = tuple(blocks)
    rows = resolve_wraparound_slots(model, blocks)
    if rows is None:
        return None
    frags = [_block_fragment(model, b) for b in blocks]
    kinds: List[int] = []
    lats: List[int] = []
    counts = [0] * 6
    for frag in frags:
        kinds.extend(frag[0])
        lats.extend(frag[1])
        cc = frag[2]
        for kind in range(6):
            counts[kind] += cc[kind]
    width = 0
    srcs: List[Tuple[int, ...]] = []
    for row in rows:
        if row:
            srcs.append(row)
            if len(row) > width:
                width = len(row)
        else:
            srcs.append(_NO_SRCS)
    return CompiledPath(
        stride=len(kinds),
        width=width,
        kinds=tuple(kinds),
        lats=tuple(lats),
        srcs=tuple(srcs),
        counts=tuple(counts),
    )


def compile_paths(
    model: OOOModel, traces, memo=None, anchor=None, anchor_extra=None
) -> Dict[object, Optional[CompiledPath]]:
    """Compiled programs for a ``(key, blocks, reps)`` plan, memoized.

    With a :class:`~repro.sim.memo.SimulationMemo` and an anchor object
    (the profile), the compiled table is identity-keyed like schedules
    and RLE views — the three strategies, retries and repeated
    ``amortise_reps`` sweeps share one compilation.  ``anchor_extra``
    must carry everything the columns depend on besides the profile:
    the host config and the rounded fixed latencies (repetition counts
    deliberately excluded — programs are rep-count independent).
    ``None`` entries (paths :func:`compile_path` declined) are memoized
    like any program: the scalar-walk fallback decision is as stable
    across strategies and retries as a compilation.
    """

    def compute() -> Dict[object, Optional[CompiledPath]]:
        return {
            key: compile_path(model, blocks) for key, blocks, _reps in traces
        }

    if memo is None or anchor is None:
        return compute()
    table = memo.identity("ooo_columns", anchor, anchor_extra, compute)
    missing = [t for t in traces if t[0] not in table]
    for key, blocks, _reps in missing:  # pragma: no cover - defensive
        table[key] = compile_path(model, blocks)
    return table


# -- per-lane compiled Python walk (no-numpy parity + narrow plans) -----------


def _lane_boundary_equal(
    S, rob_can_fill,
    ai, ac, lr, alu, fpu, ring, rob, buf,
    p_ai, p_ac, p_lr, p_alu, p_fpu, p_ring, p_rob,
) -> bool:
    """Compare two rep-boundary machine states, canonicalised.

    Semantically identical to comparing two
    :func:`simulate_path_reps`-style snapshots — times relative to each
    boundary's ``last_retire``, dead values (at or below the boundary's
    ``alloc_cycle``; retire-ring slots below ``last_retire``) treated as
    one stale class, pools as sorted multisets, rings head-aligned — but
    computed by early-exit comparison against saved raw state instead of
    materialising canonical tuples, which keeps the per-boundary cost
    far below one repetition's walk.  Rings arrive already head-aligned
    (the boundary roll parks both heads at index 0), and the previous
    boundary's finish column needs no save at all: the buffer rotation
    already parked it in the ``prev`` region, which the walk only reads.
    """
    if ai != p_ai or ac - lr != p_ac - p_lr:
        return False
    for a, b in zip(sorted(alu), p_alu):
        al = a > ac
        if al != (b > p_ac) or (al and a - lr != b - p_lr):
            return False
    for a, b in zip(sorted(fpu), p_fpu):
        al = a > ac
        if al != (b > p_ac) or (al and a - lr != b - p_lr):
            return False
    for a, b in zip(ring, p_ring):
        al = a >= lr
        if al != (b >= p_lr) or (al and a - lr != b - p_lr):
            return False
    if rob_can_fill:
        for a, b in zip(rob, p_rob):
            al = a > ac
            if al != (b > p_ac) or (al and a - lr != b - p_lr):
                return False
    for i in range(1, S + 1):
        a = buf[S + i]  # this boundary's finish column
        b = buf[i]  # previous boundary's, parked by the rotation
        al = a > ac
        if al != (b > p_ac) or (al and a - lr != b - p_lr):
            return False
    return True


def _walk_lane_python(cfg, cp: CompiledPath, reps: int) -> Tuple[float, bool]:
    """Replay one compiled lane; returns ``(last_retire, closed)``.

    The same arithmetic as :func:`simulate_path_reps` step for step —
    max/+ on integer-valued floats, heap pools, rings — but driven by
    the φ-free compiled program (list-indexed finish buffer instead of
    the finish dict), with the identical rep-boundary closure rules.
    Bitwise-identical by construction; property-tested.

    Two structural tricks strip per-micro-op bookkeeping out of the hot
    loop.  The ROB/retire rings are *rolled* left by ``stride mod size``
    at every repetition boundary, so the physical ring column of
    position ``k`` is always ``k mod size`` — baked into the program
    steps — and both ring heads sit at index 0 at every boundary.  And
    each repetition is walked as two segments split at the position
    where the ROB ring fills (``max(0, rob_entries - rep·stride)``): the
    first segment needs no occupancy check at all, the second always
    stalls on the ring slot it is about to overwrite.
    """
    S = cp.stride
    E = cfg.rob_entries
    W = cfg.retire_width
    fw = cfg.fetch_width
    steps = cp.py_program(E, W)
    buf = [0.0] * (2 * S + 1)
    rob = [0.0] * E
    ring = [0.0] * W
    alu = [0.0] * cfg.int_alus
    fpu = [0.0] * cfg.fp_units
    heapify(alu)
    heapify(fpu)
    heapreplace_ = heapreplace
    ac = 0.0  # alloc cycle
    ai = 0  # allocs in cycle
    lr = 0.0  # last retire
    roll_e = S % E
    roll_w = S % W
    rob_can_fill = reps * S > E
    check = reps >= 3
    p_valid = False
    p_ai = p_ac = p_lr = 0.0
    p_alu = p_fpu = p_ring = p_rob = ()
    for rep in range(reps):
        # ROB fills at this position (clamped); before it no occupancy
        # check can fire, from it the ring is full every step
        split = E - rep * S
        if split < 0:
            split = 0
        elif split > S:
            split = S
        for seg, stalls in ((steps[:split], False), (steps[split:], True)):
            for kind, lat, srcs, wi, ce, cw in seg:
                if ai >= fw:
                    ac += 1.0
                    ai = 0
                if stalls:
                    t = rob[ce]
                    if t > ac:
                        ac = t
                        ai = 0
                ai += 1
                ready = ac
                for i in srcs:
                    t = buf[i]
                    if t > ready:
                        ready = t
                if kind == 4:  # _UOP_INT
                    u = alu[0]
                    if ready > u:
                        u = ready
                    heapreplace_(alu, u + 1.0)
                    done = u + lat
                elif kind == 5:  # _UOP_FP
                    u = fpu[0]
                    if ready > u:
                        u = ready
                    heapreplace_(fpu, u + 1.0)
                    done = u + lat
                else:  # load / store / branch: no pool, fixed latency
                    done = ready + lat
                buf[wi] = done
                t = ring[cw] + 1.0
                if done > t:
                    t = done
                if lr > t:
                    t = lr
                ring[cw] = lr = rob[ce] = t
        if rep + 1 == reps:
            break
        # roll the rings: next repetition's physical column for position
        # k stays k mod size, and both heads land at index 0
        if roll_e:
            rob = rob[roll_e:] + rob[:roll_e]
        if roll_w:
            ring = ring[roll_w:] + ring[:roll_w]
        if check:
            comparable = not rob_can_fill or (rep + 1) * S >= E
            if (
                comparable
                and p_valid
                and _lane_boundary_equal(
                    S, rob_can_fill,
                    ai, ac, lr, alu, fpu, ring, rob, buf,
                    p_ai, p_ac, p_lr, p_alu, p_fpu, p_ring, p_rob,
                )
            ):
                remaining = reps - (rep + 1)
                return lr + remaining * (lr - p_lr), True
            p_valid = comparable
            if comparable:
                p_ai = ai
                p_ac = ac
                p_lr = lr
                p_alu = sorted(alu)
                p_fpu = sorted(fpu)
                p_ring = ring.copy()
                if rob_can_fill:
                    p_rob = rob.copy()
        buf[1 : S + 1] = buf[S + 1 :]
    return lr, False


# -- numpy lane-lockstep walk -------------------------------------------------


def _walk_lanes_numpy(cfg, lanes, out, stats, np) -> None:
    """Advance all lanes through the recurrence, one position per step.

    ``lanes`` is a list of ``(key, cp, reps)`` with ``stride > 0``.
    Lanes are sorted longest-stride first so the set still running at
    position ``k`` of a repetition is always an array prefix; finished
    and closed lanes are compacted away at repetition boundaries (which
    preserves the ordering invariant).

    Per-lane ring phases (``kt = rep·stride + k`` differs across lanes
    from the second repetition on) are handled by **rolling**: at every
    repetition boundary each lane's ROB and retire ring rotate left by
    ``stride mod size``, so that (a) inside a repetition the physical
    column for position ``k`` is the same scalar ``k mod size`` for
    every lane — basic column views instead of per-lane index gathers
    in the hot loop — and (b) every ring's head sits at physical index
    0 at every boundary, so the closure snapshot clamps the rolled
    arrays directly.  ROB-full detection is likewise structural: with
    strides sorted descending, the lanes whose ring is already full at
    position ``k`` always form a lane prefix, precomputed per
    repetition as one ``searchsorted``.
    """
    lanes.sort(key=lambda lane: lane[1].stride, reverse=True)
    P = len(lanes)
    Smax = lanes[0][1].stride
    M = max(lane[1].width for lane in lanes)
    Wbuf = 2 * Smax + 1
    E = cfg.rob_entries
    Wd = cfg.retire_width
    fw = cfg.fetch_width

    KIND = np.full((Smax, P), -1, dtype=np.int8)
    LAT = np.zeros((Smax, P))
    SRC = np.zeros((Smax, M, P), dtype=np.int64)
    LEN = np.zeros((Smax, P), dtype=np.int32)
    strides = np.empty(P, dtype=np.int64)
    reps_arr = np.empty(P, dtype=np.int64)
    keys: List[object] = []
    for i, (key, cp, reps) in enumerate(lanes):
        keys.append(key)
        n = cp.stride
        strides[i] = n
        reps_arr[i] = reps
        kc, lc, sw = cp.np_columns(np)
        KIND[:n, i] = kc
        LAT[:n, i] = lc
        if cp.width:
            # map the lane's 2·stride slot space onto the shared
            # [ground|prev|cur] layout: current-rep slots (> stride)
            # shift up so the cur region starts at Smax+1 for every
            # lane; previous-rep and ground slots are already indices
            SRC[:n, : sw.shape[1], i] = np.where(sw > n, sw + (Smax - n), sw)
            LEN[:n, i] = np.fromiter(map(len, cp.srcs), np.int32, n)

    ac = np.zeros(P)
    ai = np.zeros(P, dtype=np.int64)
    lr = np.zeros(P)
    rob = np.zeros((P, E))
    ring = np.zeros((P, Wd))
    alu = np.zeros((P, cfg.int_alus))
    fpu = np.zeros((P, cfg.fp_units))
    FIN = np.zeros((P, Wbuf))

    maximum = np.maximum
    where = np.where
    copyto = np.copyto
    ar_S = np.arange(Smax, dtype=np.int64)
    ar_E = np.arange(E, dtype=np.int64)
    ar_W = np.arange(Wd, dtype=np.int64)

    # per-phase constants: recomputed whenever the lane set compacts
    rows = flat = SRC_b = EROLL = WROLL = None
    IS_INT = IS_FP = ANY_INT = ANY_FP = None
    top = 0
    j_list = cols_e = cols_w = MW = None

    def phase_setup():
        nonlocal rows, flat, SRC_b, EROLL, WROLL
        nonlocal IS_INT, IS_FP, ANY_INT, ANY_FP
        nonlocal top, j_list, cols_e, cols_w, MW
        rows = np.arange(P)
        flat = FIN.reshape(-1)  # FIN is contiguous: reshape is a view
        base = rows * Wbuf
        # bake each lane's row offset into its source slots: operand
        # gathers against the flat finish buffer become single take()s
        SRC_b = SRC + base[None, None, :]
        top = int(strides[0])
        # active-lane prefix, physical ring columns and effective
        # operand fan-in per position — plain ints, hoisted out of the
        # hot loop
        j_list = np.searchsorted(
            -strides, -ar_S[:top], side="left"
        ).tolist()
        cols_e = (ar_S[:top] % E).tolist()
        cols_w = (ar_S[:top] % Wd).tolist()
        MW = LEN.max(axis=1).tolist()
        IS_INT = KIND == _UOP_INT
        IS_FP = KIND == _UOP_FP
        ANY_INT = IS_INT.any(axis=1)
        ANY_FP = IS_FP.any(axis=1)
        # boundary ring rolls: left by stride mod size, accumulated
        EROLL = (strides[:, None] + ar_E[None, :]) % E
        WROLL = (strides[:, None] + ar_W[None, :]) % Wd

    phase_setup()
    prev_snap = None
    prev_comparable = np.zeros(P, dtype=bool)
    prev_lr = lr.copy()
    rep = 0
    while True:
        # ROB-full lane prefix per position for this repetition: lane i
        # is full at position k iff rep·stride_i + k ≥ E
        thresh = np.maximum(E - rep * strides, 0)
        jf_list = np.searchsorted(thresh, ar_S[:top], side="right").tolist()
        for k in range(top):
            j = j_list[k]
            col_e = cols_e[k]
            acv = ac[:j]
            aiv = ai[:j]

            # -- allocate (fetch bandwidth, then ROB occupancy) ------------
            over = aiv >= fw
            acv += over
            aiv *= ~over
            jj = jf_list[k]
            if jj > j:
                jj = j
            if jj:
                oldest = rob[:jj, col_e]
                bump = oldest > ac[:jj]
                copyto(ac[:jj], oldest, where=bump)
                ai[:jj] *= ~bump
            aiv += 1

            # -- operand readiness -----------------------------------------
            ready = acv.copy()
            src = SRC_b[k]
            for m in range(MW[k]):
                maximum(ready, flat.take(src[m, :j]), out=ready)

            # -- issue / execute -------------------------------------------
            start = ready
            if ANY_INT[k]:
                is_int = IS_INT[k, :j]
                rj = rows[:j]
                av = alu[:j]
                ia = av.argmin(axis=1)
                iu = av[rj, ia]
                int_start = maximum(ready, iu)
                av[rj, ia] = where(is_int, int_start + 1.0, iu)
                start = where(is_int, int_start, start)
            if ANY_FP[k]:
                is_fp = IS_FP[k, :j]
                rj = rows[:j]
                fv = fpu[:j]
                fa = fv.argmin(axis=1)
                fu = fv[rj, fa]
                fp_start = maximum(ready, fu)
                fv[rj, fa] = where(is_fp, fp_start + 1.0, fu)
                start = where(is_fp, fp_start, start)
            done = start + LAT[k, :j]
            FIN[:j, Smax + 1 + k] = done

            # -- retire (in order, retire_width per cycle) -----------------
            slot = ring[:j, cols_w[k]]
            slot += 1.0
            retire = maximum(done, lr[:j], out=done)
            maximum(retire, slot, out=retire)
            copyto(slot, retire)
            lr[:j] = retire
            rob[:j, col_e] = retire

        # -- repetition boundary: roll / finalize / close / compact --------
        rep += 1
        # roll the rings: next repetition's physical column for position
        # k is k mod size for every lane, and both heads land at 0
        rob = rob[rows[:, None], EROLL]
        ring = ring[rows[:, None], WROLL]
        finished = reps_arr == rep
        candidates = (reps_arr > rep) & (reps_arr >= 3)
        close = np.zeros(P, dtype=bool)
        comparable = np.zeros(P, dtype=bool)
        snap = None
        if candidates.any():
            can_fill = reps_arr * strides > E
            # a fillable ROB ring is only comparable once full — the
            # filling-phase transient (458.sjeng) stays explicit; a ring
            # that can never fill is never read, so it compares trivially
            comparable = (~can_fill) | (rep * strides >= E)
            acl = ac[:, None]
            lrl = lr[:, None]
            alu_s = np.sort(where(alu > acl, alu - lrl, _STALE), axis=1)
            fpu_s = np.sort(where(fpu > acl, fpu - lrl, _STALE), axis=1)
            ring_s = where(ring >= lrl, ring - lrl, _STALE)
            rob_s = where(rob > acl, rob - lrl, _STALE)
            rob_s[~can_fill] = 0.0  # never read: exclude from comparison
            cur = FIN[:, Smax + 1 :]
            fin_s = where(cur > acl, cur - lrl, _STALE)
            snap = (ai.copy(), ac - lr, alu_s, fpu_s, ring_s, rob_s, fin_s)
            if prev_snap is not None:
                eq = candidates & comparable & prev_comparable
                eq &= snap[0] == prev_snap[0]
                eq &= snap[1] == prev_snap[1]
                for a, b in zip(snap[2:], prev_snap[2:]):
                    eq &= (a == b).all(axis=1)
                close = eq
        if finished.any():
            for i in np.flatnonzero(finished):
                out[keys[i]].cycles = int(lr[i])
        if close.any():
            d = lr - prev_lr
            for i in np.flatnonzero(close):
                remaining = int(reps_arr[i]) - rep
                out[keys[i]].cycles = int(lr[i] + remaining * d[i])
            stats["closed"] += int(close.sum())
        keep = ~finished & ~close
        if not keep.all():
            idx = np.flatnonzero(keep)
            P = len(idx)
            if not P:
                return
            keys = [keys[i] for i in idx]
            strides = strides[idx]
            reps_arr = reps_arr[idx]
            ac = ac[idx]
            ai = ai[idx]
            lr = lr[idx]
            rob = rob[idx]
            ring = ring[idx]
            alu = alu[idx]
            fpu = fpu[idx]
            FIN = FIN[idx]
            KIND = KIND[:, idx]
            LAT = LAT[:, idx]
            SRC = SRC[:, :, idx]
            LEN = LEN[:, idx]
            comparable = comparable[idx]
            if snap is not None:
                snap = tuple(a[idx] for a in snap)
            phase_setup()
        prev_snap = snap
        prev_comparable = comparable
        prev_lr = lr.copy()
        # rotate: this repetition's finishes become the previous rep's
        FIN[:, 1 : Smax + 1] = FIN[:, Smax + 1 :]


def simulate_paths_vectorized(
    model: OOOModel,
    traces,
    memo=None,
    anchor=None,
    anchor_extra=None,
    stats: Optional[dict] = None,
    backend: Optional[str] = None,
) -> Dict[object, OOOResult]:
    """Columnar replay of a ``(key, blocks, reps)`` plan.

    Bitwise-equal to ``{key: model.simulate(list(blocks) × reps)}`` for
    fixed-latency models.  Uses the numpy lane-lockstep walk when numpy
    is available, the compiled per-lane Python walk otherwise — both
    driven by the same memoized :class:`CompiledPath` programs.
    ``backend`` (a :data:`BACKEND_NUMPY`/:data:`BACKEND_PYTHON` label,
    normally :attr:`LaneTierDecision.backend`) pins the walker:
    narrow plans run the per-lane walk even when numpy is importable,
    because numpy's fixed per-step dispatch cost needs lane width to
    amortise.  ``stats`` (optional dict) receives ``lanes``/``closed``/
    ``fallback`` counts for the obs layer — ``fallback`` lanes are paths
    :func:`compile_path` declined (window-escaping φ chains), replayed
    through the scalar record walk instead.
    """
    if model.memory_system is not None:
        raise ValueError(
            "simulate_paths_vectorized requires a fixed-latency model"
        )
    traces = list(traces)
    if stats is None:
        stats = {}
    stats.setdefault("lanes", len(traces))
    stats.setdefault("closed", 0)
    stats.setdefault("fallback", 0)
    programs = compile_paths(
        model, traces, memo=memo, anchor=anchor, anchor_extra=anchor_extra
    )
    out: Dict[object, OOOResult] = {}
    lanes = []
    for key, blocks, reps in traces:
        cp = programs[key]
        if cp is None:
            # the path escapes the two-repetition slot window (deep
            # back-edge φ chain or revisited block): the scalar record
            # walk carries the finish map explicitly and stays bitwise
            out[key] = simulate_path_reps(model, blocks, reps)
            stats["fallback"] += 1
            continue
        out[key] = cp.census(reps)
        if cp.stride and reps > 0:
            lanes.append((key, cp, reps))
    if not lanes:
        return out
    np = None if backend == BACKEND_PYTHON else get_numpy()
    if np is None:
        cfg = model.config
        for key, cp, reps in lanes:
            last_retire, closed = _walk_lane_python(cfg, cp, reps)
            out[key].cycles = int(last_retire)
            stats["closed"] += closed
        return out
    _walk_lanes_numpy(model.config, lanes, out, stats, np)
    return out


# -- tier selection -----------------------------------------------------------


@dataclass(frozen=True)
class LaneTierDecision:
    """One memoized (workload, config) lane-tier choice.

    ``backend`` names the backend that will actually execute the walk
    (``few-lanes`` plans run the compiled per-lane Python walk even when
    numpy is importable).  ``reason`` explains heuristic fallbacks
    (``"ok"`` when the preferred tier was taken): ``few-lanes`` (not
    enough effective lanes for the numpy lockstep), ``tiny-plan`` (plan
    below :data:`VECTOR_MIN_UOPS`), ``no-numpy`` (python backend
    pinned/absent), ``empty-plan``, or ``forced-env``
    (:data:`LANE_TIER_ENV`).
    """

    tier: str
    backend: str
    reason: str
    lanes: int
    total_uops: int
    effective_lanes: int


def select_lane_tier(
    model: OOOModel, traces, memo=None, anchor=None, anchor_extra=None
) -> LaneTierDecision:
    """Pick the walk tier for a plan — once per (workload, config).

    The geometry thresholds (:data:`VECTOR_MIN_EFFECTIVE_LANES`,
    :data:`VECTOR_MIN_UOPS`) are measured constants, not per-call
    heuristics: with a memo and anchor the decision is identity-keyed on
    the profile plus the config slice, so repeated ``path_costs`` calls
    (three strategies, retries, sweeps) reuse it instead of re-deriving
    the geometry, and the chosen thresholds are logged once at debug
    level.  Every tier is bitwise-identical — this is a speed choice.
    """

    def compute() -> LaneTierDecision:
        plan = list(traces)
        total, longest, _walked = _batch_geometry(plan)
        eff = total // longest if longest else 0
        np = get_numpy()
        backend = BACKEND_NUMPY if np is not None else BACKEND_PYTHON
        forced = os.environ.get(LANE_TIER_ENV, "")
        if forced in LANE_TIERS:
            tier, reason = forced, "forced-env"
            if tier == LANE_TIER_SCALAR:
                backend = BACKEND_PYTHON  # the record walk is pure Python
        elif not plan or longest == 0:
            tier, backend, reason = LANE_TIER_SCALAR, BACKEND_PYTHON, (
                "empty-plan"
            )
        elif total < VECTOR_MIN_UOPS:
            # too small for any compiled tier to matter, numpy or not
            tier, backend, reason = LANE_TIER_SCALAR, BACKEND_PYTHON, (
                "tiny-plan"
            )
        elif np is None:
            # compiled per-lane walk: still beats the record walk, and
            # it keeps the compile/closure path exercised without numpy
            tier, reason = LANE_TIER_VECTOR, "no-numpy"
        elif eff < VECTOR_MIN_EFFECTIVE_LANES:
            # numpy's fixed per-step dispatch outweighs the lane
            # parallelism: run the compiled walk per lane instead
            tier, backend, reason = LANE_TIER_VECTOR, BACKEND_PYTHON, (
                "few-lanes"
            )
        else:
            tier, reason = LANE_TIER_VECTOR, "ok"
        decision = LaneTierDecision(
            tier=tier,
            backend=backend,
            reason=reason,
            lanes=len(plan),
            total_uops=total,
            effective_lanes=eff,
        )
        log.debug(
            "lane tier %s (backend=%s, reason=%s): %d lanes, %d uops, "
            "%d effective lanes; thresholds: effective_lanes>=%d, "
            "total_uops>=%d",
            tier, backend, reason, decision.lanes, total, eff,
            VECTOR_MIN_EFFECTIVE_LANES, VECTOR_MIN_UOPS,
        )
        return decision

    if memo is None or anchor is None:
        return compute()
    return memo.identity("lane_tier", anchor, anchor_extra, compute)


def simulate_paths_tiered(
    model: OOOModel,
    traces,
    decision: Optional[LaneTierDecision] = None,
    memo=None,
    anchor=None,
    anchor_extra=None,
    stats: Optional[dict] = None,
) -> Dict[object, OOOResult]:
    """Replay a plan through the tier :func:`select_lane_tier` picked.

    The single dispatch point :meth:`OffloadSimulator.path_costs` calls:
    every tier returns the same bits, so the decision only moves time.
    """
    traces = list(traces)
    if decision is None:
        decision = select_lane_tier(
            model, traces, memo=memo, anchor=anchor, anchor_extra=anchor_extra
        )
    if stats is not None:
        stats["decision"] = decision
    if decision.tier == LANE_TIER_VECTOR:
        return simulate_paths_vectorized(
            model, traces, memo=memo, anchor=anchor,
            anchor_extra=anchor_extra, stats=stats,
            backend=decision.backend,
        )
    if decision.tier == LANE_TIER_BATCH:
        return simulate_paths_batch(model, traces, gate=False)
    return {
        key: simulate_path_reps(model, blocks, reps)
        for key, blocks, reps in traces
    }


__all__ = [
    "CompiledPath",
    "LANE_TIERS",
    "LANE_TIER_BATCH",
    "LANE_TIER_ENV",
    "LANE_TIER_SCALAR",
    "LANE_TIER_VECTOR",
    "LaneTierDecision",
    "VECTOR_MIN_EFFECTIVE_LANES",
    "VECTOR_MIN_UOPS",
    "compile_path",
    "compile_paths",
    "select_lane_tier",
    "simulate_paths_tiered",
    "simulate_paths_vectorized",
]
