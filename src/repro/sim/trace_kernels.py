"""Run-length trace kernels for the offload simulator (perf layer 3).

The path trace a profiled workload produces is extremely repetitive: a hot
loop flushes the same Ball–Larus path id thousands of times in a row, so
the trace is long but its *run-length encoding* is short.  Everything the
offload accounting needs per event is a function of (path id, was the
previous event part of the same accelerator run) — which means the whole
event stream can be folded run by run instead of event by event, O(#runs)
instead of O(#events), with no change in what is charged.

Bit-identity between the fast and reference paths is guaranteed by
construction, not by hope: both paths reduce the trace to the same
integer :class:`ChargeCensus` (how many events of each charge class hit
each path id), and a single shared fold (:meth:`ChargeCensus` consumers
in :mod:`repro.sim.offload`) turns the census into cycles and energy with
one deterministic summation order.  Equal censuses therefore give
bitwise-equal floats; the property tests in
``tests/sim/test_trace_kernels.py`` enforce census equality across the
suite and under seeded fault plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import groupby
from typing import Dict, Iterable, List, Sequence, Set, Tuple

#: kernel mode names (selectable via PipelineOptions.trace_kernels)
KERNELS_RLE = "rle"
KERNELS_EVENTS = "events"
KERNELS_ARRAY = "array"
KERNEL_MODES = (KERNELS_RLE, KERNELS_EVENTS, KERNELS_ARRAY)

#: mode -> label for the ``sim.kernel_mode`` gauge (the RLE tier reports
#: as "runs": the gauge names what iterates, not the encoding)
KERNEL_MODE_LABELS = {
    KERNELS_RLE: "runs",
    KERNELS_EVENTS: "events",
    KERNELS_ARRAY: "array",
}


@dataclass(frozen=True)
class RLETrace:
    """Run-length view of a path trace: runs of identical path ids."""

    #: (path id, run length) in trace order
    runs: Tuple[Tuple[int, int], ...]
    n_events: int

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def rle_ratio(self) -> float:
        """#runs / #events — lower means the run fold saves more work."""
        return self.n_runs / self.n_events if self.n_events else 1.0

    def expand(self) -> List[int]:
        """The original event stream (reference/testing only)."""
        out: List[int] = []
        for pid, length in self.runs:
            out.extend([pid] * length)
        return out

    def per_pid_run_stats(self) -> Dict[int, Tuple[int, int, int]]:
        """pid -> (runs, events, longest run) summary statistics."""
        stats: Dict[int, Tuple[int, int, int]] = {}
        for pid, length in self.runs:
            n_runs, n_events, longest = stats.get(pid, (0, 0, 0))
            stats[pid] = (n_runs + 1, n_events + length, max(longest, length))
        return stats

    def columns(self):
        """(pids, lengths) int64 columns of the run list, or ``None``
        under the pure-Python backend.

        Cached per backend on the instance (the trace is memoized and
        shared across the three offload strategies, so the conversion
        happens once per workload, not once per kernel call).  The cache
        is keyed by backend name because the kernel-equality tests flip
        backends on one process via ``FORCE_PYTHON_ENV``.
        """
        from .array_kernels import backend_name, runs_to_columns

        key = backend_name()
        cached = self.__dict__.get("_columns_cache")
        if cached is not None and cached[0] == key:
            return cached[1]
        cols = runs_to_columns(self.runs)
        # frozen dataclass: write the cache through __dict__ directly
        self.__dict__["_columns_cache"] = (key, cols)
        return cols


def run_length_encode(trace: Sequence[int]) -> RLETrace:
    """RLE of a path trace; computed once per workload and memoized by
    :class:`~repro.sim.memo.SimulationMemo`."""
    runs = tuple(
        (pid, sum(1 for _ in group)) for pid, group in groupby(trace)
    )
    return RLETrace(runs=runs, n_events=len(trace))


@dataclass
class ChargeCensus:
    """Integer census of what the offload accounting must charge.

    Each trace event lands in exactly one class:

    ``run_starts[pid]``  successful invocations that begin an accelerator
                         run (full makespan + live-value transfer);
    ``pipelined[pid]``   successful invocations pipelined behind the
                         previous one (one initiation interval);
    ``failures[pid]``    invocations whose guard failed (frame + rollback
                         + host re-execution of the actual path);
    ``host[pid]``        events the predictor declined (host path cost).

    The census is pure integers, so the events path and the RLE path can
    be compared for *exact* equality, and the shared cycles/energy fold
    downstream sees identical inputs.
    """

    run_starts: Dict[int, int] = field(default_factory=dict)
    pipelined: Dict[int, int] = field(default_factory=dict)
    failures: Dict[int, int] = field(default_factory=dict)
    host: Dict[int, int] = field(default_factory=dict)

    @property
    def invocations(self) -> int:
        return (
            sum(self.run_starts.values())
            + sum(self.pipelined.values())
            + sum(self.failures.values())
        )

    @property
    def failed(self) -> int:
        return sum(self.failures.values())


def _bump(table: Dict[int, int], pid: int, n: int = 1) -> None:
    table[pid] = table.get(pid, 0) + n


def census_from_events(
    trace: Sequence[int],
    decisions: Sequence[bool],
    targets: Set[int],
    pipelined: bool,
) -> ChargeCensus:
    """Reference kernel: classify the trace one event at a time.

    This is the exact control flow of the original accounting loop in
    ``OffloadSimulator._simulate_offload`` with the float accumulation
    factored out; kept as the ``trace_kernels="events"`` reference
    implementation the property tests cross-check against.
    """
    census = ChargeCensus()
    in_run = False
    for pid, invoke in zip(trace, decisions):
        if invoke:
            if pid in targets:
                if in_run and pipelined:
                    _bump(census.pipelined, pid)
                else:
                    _bump(census.run_starts, pid)
                in_run = True
            else:
                _bump(census.failures, pid)
                in_run = False
        else:
            _bump(census.host, pid)
            in_run = False
    return census


@dataclass(frozen=True)
class SegmentCharge:
    """Closed-form census increments of one decision segment.

    Exactly one of the four charge groups is non-zero per segment (a
    segment has a constant (pid, decision)); ``run_starts + pipelined``
    together cover a successful segment that begins or extends an
    accelerator run.
    """

    pid: int
    run_starts: int = 0
    pipelined: int = 0
    failures: int = 0
    host: int = 0


def iter_segment_charges(
    segments: Iterable[Tuple[int, bool, int]],
    targets: Set[int],
    pipelined: bool,
) -> "Iterable[SegmentCharge]":
    """Classify (pid, invoke, length) decision segments one at a time.

    This generator is the *single* statement of the run-accounting
    semantics: :func:`census_from_segments` sums its yields into the
    integer census the attribution fold consumes, and the simulated
    timeline (:meth:`~repro.sim.offload.OffloadSimulator.
    invocation_timeline`) replays the same yields as duration events —
    so the timeline can never drift from what was charged.  Only the
    one-bit ``in_run`` state crosses segment boundaries.
    """
    in_run = False
    for pid, invoke, length in segments:
        if length <= 0:
            continue
        if invoke:
            if pid in targets:
                if pipelined:
                    if in_run:
                        yield SegmentCharge(pid, pipelined=length)
                    else:
                        yield SegmentCharge(
                            pid, run_starts=1, pipelined=length - 1
                        )
                else:
                    yield SegmentCharge(pid, run_starts=length)
                in_run = True
            else:
                yield SegmentCharge(pid, failures=length)
                in_run = False
        else:
            yield SegmentCharge(pid, host=length)
            in_run = False


def census_from_segments(
    segments: Iterable[Tuple[int, bool, int]],
    targets: Set[int],
    pipelined: bool,
) -> ChargeCensus:
    """Fast kernel: fold (pid, invoke, length) decision segments.

    Segments partition the trace in order with a constant (pid, decision)
    per segment (see
    :func:`~repro.accel.invocation.evaluate_predictor_runs`), so each
    segment collapses to the closed-form increments
    :func:`iter_segment_charges` yields.
    """
    census = ChargeCensus()
    for charge in iter_segment_charges(segments, targets, pipelined):
        if charge.run_starts:
            _bump(census.run_starts, charge.pid, charge.run_starts)
        if charge.pipelined:
            _bump(census.pipelined, charge.pid, charge.pipelined)
        if charge.failures:
            _bump(census.failures, charge.pid, charge.failures)
        if charge.host:
            _bump(census.host, charge.pid, charge.host)
    return census


__all__ = [
    "ChargeCensus",
    "KERNELS_ARRAY",
    "KERNELS_EVENTS",
    "KERNELS_RLE",
    "KERNEL_MODES",
    "KERNEL_MODE_LABELS",
    "RLETrace",
    "SegmentCharge",
    "census_from_events",
    "census_from_segments",
    "iter_segment_charges",
    "run_length_encode",
]
