"""Whole-workload offload simulation (paper §VI, Figs. 9 and 10).

The simulator reasons at *path granularity*: the profiled path trace is the
exact sequence of region-sized execution units.  For every unit it charges
either the host OOO cost of that path, or — when the invocation predictor
fires and the unit matches the offloaded region — the CGRA frame cost plus
live-value transfer.  Mispredicted invocations charge the full frame (guard
failure is detected at frame end, the paper's conservative assumption), the
undo-log rollback, and the host re-execution of the actual path.

Host path costs come from the OOO model with loop-carried pipelining
captured by amortising over repeated executions; memory latencies for both
sides come from replaying the recorded address stream through the cache
hierarchy (host port vs. uncore accelerator port).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..frames.frame import Frame
from ..obs import span as _obs_span
from ..profiling.ranking import count_ops
from ..interp.events import FunctionTrace
from ..profiling.path_profile import PathProfile
from .cache import MemorySystem
from .config import DEFAULT_CONFIG, SystemConfig
from .core_ooo import OOOModel, OOOResult
from .energy import EnergyModel


@dataclass
class PathCost:
    """Amortised host cost of executing one path once."""

    cycles: float
    census: OOOResult  # per-execution averages stored as totals / reps


@dataclass
class OffloadOutcome:
    """Result of simulating one offload strategy on one workload."""

    workload: str
    strategy: str  # "host" | "bl-path-oracle" | "bl-path-predictor" | "braid"
    baseline_cycles: float
    needle_cycles: float
    baseline_energy_pj: float
    needle_energy_pj: float
    coverage: float = 0.0
    invocations: int = 0
    failures: int = 0
    predictor_precision: float = 1.0
    frame_ops: int = 0
    schedule_cycles: int = 0
    #: accesses served per hierarchy level ("l1"/"l2"/"dram") when the
    #: recorded address stream replays through each port — carried on the
    #: record so the obs layer reports identical simulated-cache counters
    #: for cold, parallel and cache-served evaluations
    host_mem_levels: Dict[str, int] = field(default_factory=dict)
    accel_mem_levels: Dict[str, int] = field(default_factory=dict)

    @property
    def performance_improvement(self) -> float:
        """Fractional cycle reduction (Fig. 9's y-axis)."""
        if self.baseline_cycles == 0:
            return 0.0
        return 1.0 - self.needle_cycles / self.baseline_cycles

    @property
    def energy_reduction(self) -> float:
        """Fractional net energy reduction (Fig. 10's y-axis)."""
        if self.baseline_energy_pj == 0:
            return 0.0
        return 1.0 - self.needle_energy_pj / self.baseline_energy_pj


class OffloadSimulator:
    """Simulates host-only and Needle-offloaded execution of one workload."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or DEFAULT_CONFIG
        self.energy_model = EnergyModel(self.config.energy, self.config.cgra)

    # -- memory latency calibration ------------------------------------------------

    def calibrate_memory(
        self, trace: Optional[FunctionTrace]
    ) -> Tuple[float, float]:
        """(host avg load latency, accel avg load latency) from the recorded
        address stream; L1/L2 hit latencies when there is no stream."""
        host_lat, accel_lat, _host_levels, _accel_levels = self._calibrate(trace)
        return host_lat, accel_lat

    def _calibrate(
        self, trace: Optional[FunctionTrace]
    ) -> Tuple[float, float, Dict[str, int], Dict[str, int]]:
        """Latency calibration plus the per-level access census of the
        replay (the simulated cache hit/miss numbers the obs layer reports)."""
        hier = self.config.memory
        host_lat = float(hier.l1.latency)
        accel_lat = float(hier.l2.latency)
        host_levels: Dict[str, int] = {}
        accel_levels: Dict[str, int] = {}
        if trace is not None and trace.memory:
            host_mem = MemorySystem(hier)
            prof = host_mem.profile_stream(trace.memory, port="host")
            host_levels = dict(prof.level_counts)
            if prof.loads:
                host_lat = prof.avg_load_latency
            accel_mem = MemorySystem(hier)
            prof_a = accel_mem.profile_stream(trace.memory, port="accel")
            accel_levels = dict(prof_a.level_counts)
            if prof_a.loads:
                accel_lat = prof_a.avg_load_latency
        return host_lat, accel_lat, host_levels, accel_levels

    # -- host path costs ---------------------------------------------------------------

    def path_costs(
        self,
        profile: PathProfile,
        host_load_latency: float,
        amortise_reps: int = 4,
    ) -> Dict[int, PathCost]:
        """Per-execution host cost of each profiled path.

        Paths that repeat are simulated ``amortise_reps`` times back-to-back
        so the OOO window can overlap iterations (loop pipelining), then
        averaged.
        """
        model = OOOModel(
            self.config.host,
            fixed_load_latency=max(1, int(round(host_load_latency))),
        )
        costs: Dict[int, PathCost] = {}
        for pid, count in profile.counts.items():
            blocks = profile.decode(pid)
            reps = amortise_reps if count >= amortise_reps else 1
            stream: List = []
            for r in range(reps):
                stream.extend(blocks)
            res = model.simulate(stream)
            per_exec = OOOResult()
            for name in vars(per_exec):
                setattr(per_exec, name, getattr(res, name) / reps)
            costs[pid] = PathCost(cycles=res.cycles / reps, census=per_exec)
        return costs

    # -- baseline --------------------------------------------------------------------------

    def baseline(
        self, profile: PathProfile, costs: Dict[int, PathCost]
    ) -> Tuple[float, float]:
        """(cycles, energy_pj) of host-only execution of the whole trace."""
        cycles = 0.0
        energy = 0.0
        for pid, count in profile.counts.items():
            c = costs[pid]
            cycles += count * c.cycles
            energy += count * self.energy_model.host_energy(c.census).total_pj
        return cycles, energy

    # -- offload ----------------------------------------------------------------------------

    def _effective_ii(self, frame: Frame, sched, profile: PathProfile, scheduler) -> float:
        """Initiation interval for pipelined invocations.

        For a braid, the whole-region recurrence is pessimistic: dataflow
        predication gates untaken arms, so an iteration flowing down the hot
        (short-chain) arm does not serialise behind the cold arm's chain.
        We weight each constituent path's recurrence by its frequency.
        """
        if frame.region.kind != "braid" or len(frame.region.source_paths) < 2:
            return float(sched.initiation_interval)
        from ..frames.frame import build_frame as _build_frame
        from ..regions.path_region import path_to_region as _path_to_region
        from ..profiling.ranking import RankedPath as _RankedPath

        total_freq = 0
        weighted = 0.0
        for pid in frame.region.source_paths:
            freq = profile.counts.get(pid, 0)
            if freq <= 0:
                continue
            try:
                blocks = profile.decode(pid)
                rp = _RankedPath(
                    path_id=pid, blocks=blocks, freq=freq,
                    ops=count_ops(blocks), weight=0, coverage=0.0,
                )
                pframe = _build_frame(_path_to_region(frame.region.function, rp))
                psched = scheduler.schedule(
                    pframe, loop_carried=self._loop_carried(pframe)
                )
                weighted += freq * psched.recurrence_ii
                total_freq += freq
            except Exception:
                continue
        if total_freq == 0:
            return float(sched.initiation_interval)
        avg_recurrence = weighted / total_freq
        return float(max(sched.resource_ii, avg_recurrence))

    @staticmethod
    def _loop_carried(frame: Frame):
        """(entry φ, back-edge definition) pairs for the recurrence II.

        When the region is a loop iteration, its final block feeds the entry
        block's φs over the back edge; those defs bound the pipelined II.
        """
        pairs = []
        region = frame.region
        if not region.blocks:
            return pairs
        last = region.blocks[-1]
        for phi in region.entry.phis:
            val = phi.incoming_for(last)
            if val is not None:
                pairs.append((phi, val))
        return pairs

    def simulate_offload(
        self,
        workload: str,
        profile: PathProfile,
        frame: Frame,
        predictor_kind: str = "oracle",
        trace: Optional[FunctionTrace] = None,
        coverage: Optional[float] = None,
    ) -> OffloadOutcome:
        """Simulate offloading ``frame`` with the given invocation predictor.

        ``predictor_kind``: "oracle" or "history".
        """
        # local import: repro.accel depends on repro.sim.config, so the
        # accel package cannot be imported at sim module-load time
        from ..accel.cgra import CGRAScheduler
        from ..accel.invocation import (
            HistoryPredictor,
            OraclePredictor,
            evaluate_predictor,
        )

        with _obs_span("simulate_offload", workload=workload,
                       kind=frame.region.kind, predictor=predictor_kind):
            return self._simulate_offload(
                workload, profile, frame, predictor_kind, trace, coverage,
                CGRAScheduler, HistoryPredictor, OraclePredictor,
                evaluate_predictor,
            )

    def _simulate_offload(
        self,
        workload: str,
        profile: PathProfile,
        frame: Frame,
        predictor_kind,
        trace,
        coverage,
        CGRAScheduler,
        HistoryPredictor,
        OraclePredictor,
        evaluate_predictor,
    ) -> OffloadOutcome:
        host_lat, accel_lat, host_levels, accel_levels = self._calibrate(trace)
        costs = self.path_costs(profile, host_lat)
        base_cycles, base_energy = self.baseline(profile, costs)

        # Frames stream array data through the banked L2: bank pipelining and
        # the memory-port-limited schedule hide most of the raw L2 latency,
        # so the per-load critical-path charge is a fraction of it.
        effective_load = max(4.0, accel_lat * 0.4)
        scheduler = CGRAScheduler(
            self.config.cgra,
            load_latency=effective_load,
            store_latency=max(1.0, effective_load / 3),
        )
        sched = scheduler.schedule(frame, loop_carried=self._loop_carried(frame))
        pipeline_ii = self._effective_ii(frame, sched, profile, scheduler)
        frame_energy = self.energy_model.frame_energy(
            n_int_ops=sched.int_ops + sched.guard_ops,
            n_fp_ops=sched.fp_ops,
            n_mem_ops=sched.mem_ops,
            n_edges=sched.edges,
            l2_accesses=sched.mem_ops,
        ).total_pj
        # Dataflow predication gates tokens on untaken braid arms, so an
        # invocation burns energy proportional to the ops its actual path
        # touches, not the whole fabric mapping.
        frame_ops_total = max(1, frame.region.op_count)
        exec_fraction: Dict[int, float] = {}
        for pid in frame.region.source_paths:
            path_ops = count_ops(profile.decode(pid))
            exec_fraction[pid] = min(1.0, path_ops / frame_ops_total)
        n_transfer = len(frame.live_ins) + len(frame.live_outs)
        transfer_cycles = (
            n_transfer * self.config.offload.transfer_cycles_per_value
            + self.config.offload.invocation_overhead_cycles
        )
        transfer_energy = self.energy_model.transfer_energy(n_transfer).total_pj
        rollback_cycles = (
            frame.store_count * self.config.offload.rollback_cycles_per_store
        )
        # Conservative (paper) mode detects guard failure only at frame end,
        # wasting the whole schedule; eager mode aborts around the mean guard
        # position (§V's guard-placement trade-off).
        if self.config.offload.detect_failure_at_end or not frame.guards:
            failure_exec_cycles = sched.cycles
        else:
            mean_pos = sum(g.position for g in frame.guards) / len(frame.guards)
            fraction = (mean_pos + 1) / max(1, frame.op_count)
            failure_exec_cycles = max(1.0, sched.cycles * fraction)

        targets: Set[int] = set(frame.region.source_paths)
        if predictor_kind == "oracle":
            predictor = OraclePredictor(targets)
        else:
            predictor = HistoryPredictor()
        evaluation = evaluate_predictor(profile.trace, targets, predictor)

        # Run-based accounting: the first invocation in a run of back-to-back
        # successful invocations pays pipeline fill (full makespan) plus the
        # live-value transfer; each further iteration of the run initiates
        # after the frame's II (dataflow pipelining).  The configuration
        # stays resident on the fabric across the workload (only one frame
        # is offloaded), so reconfiguration is a one-time cost, charged once.
        run_start_cycles = sched.cycles + transfer_cycles
        needle_cycles = float(
            self.config.cgra.reconfig_cycles * sched.n_configs
        )
        needle_energy = 0.0
        invocations = failures = 0
        in_run = False
        for pid, invoke in zip(profile.trace, evaluation.decisions):
            if invoke:
                invocations += 1
                hit = pid in targets
                if hit and in_run and self.config.offload.pipelined_invocations:
                    needle_cycles += pipeline_ii
                    needle_energy += frame_energy * exec_fraction.get(pid, 1.0)
                elif hit:
                    needle_cycles += run_start_cycles
                    needle_energy += (
                        frame_energy * exec_fraction.get(pid, 1.0) + transfer_energy
                    )
                    in_run = True
                else:
                    failures += 1
                    needle_cycles += (
                        failure_exec_cycles
                        + transfer_cycles
                        + rollback_cycles
                        + costs[pid].cycles
                    )
                    needle_energy += (
                        frame_energy
                        + transfer_energy
                        + self.energy_model.host_energy(costs[pid].census).total_pj
                    )
                    in_run = False
            else:
                needle_cycles += costs[pid].cycles
                needle_energy += self.energy_model.host_energy(
                    costs[pid].census
                ).total_pj
                in_run = False

        return OffloadOutcome(
            workload=workload,
            strategy=(
                "braid"
                if frame.region.kind == "braid"
                else "bl-path-%s" % predictor_kind
            ),
            baseline_cycles=base_cycles,
            needle_cycles=needle_cycles,
            baseline_energy_pj=base_energy,
            needle_energy_pj=needle_energy,
            coverage=coverage if coverage is not None else frame.region.coverage,
            invocations=invocations,
            failures=failures,
            predictor_precision=evaluation.precision,
            frame_ops=frame.op_count,
            schedule_cycles=sched.cycles,
            host_mem_levels=host_levels,
            accel_mem_levels=accel_levels,
        )


__all__ = ["OffloadOutcome", "OffloadSimulator", "PathCost"]
