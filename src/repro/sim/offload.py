"""Whole-workload offload simulation (paper §VI, Figs. 9 and 10).

The simulator reasons at *path granularity*: the profiled path trace is the
exact sequence of region-sized execution units.  For every unit it charges
either the host OOO cost of that path, or — when the invocation predictor
fires and the unit matches the offloaded region — the CGRA frame cost plus
live-value transfer.  Mispredicted invocations charge the full frame (guard
failure is detected at frame end, the paper's conservative assumption), the
undo-log rollback, and the host re-execution of the actual path.

Host path costs come from the OOO model with loop-carried pipelining
captured by amortising over repeated executions; memory latencies for both
sides come from replaying the recorded address stream through the cache
hierarchy (host port vs. uncore accelerator port) in one dual-port pass.

Two performance layers keep whole-suite sweeps cheap without changing a
single simulated number:

* **run-length trace kernels** — the trace accounting folds an integer
  :class:`~repro.sim.trace_kernels.ChargeCensus` instead of walking the
  event stream, and the census comes from either the O(#runs) RLE kernel
  (default) or the O(#events) reference kernel
  (``trace_kernels="events"``); both produce the same census, so the
  shared census→cycles/energy fold is bitwise-identical by construction;
* **simulation memo** — calibration, per-path host costs, CGRA schedules
  and the braid's effective II are memoized per (input, config slice) in
  a :class:`~repro.sim.memo.SimulationMemo`, so the three strategies the
  pipeline evaluates (and DSE sweeps varying only CGRA/offload knobs)
  share one replay, one OOO table and one schedule pool.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..artifacts import CALIBRATION_KIND, PATH_COSTS_KIND
from ..frames.frame import Frame
from ..obs import (
    counter as _obs_counter,
    enabled as _obs_enabled,
    gauge as _obs_gauge,
    span as _obs_span,
)
from ..obs.ledger import (
    CHARGE_ABORT_FRAME,
    CHARGE_ABORT_REEXEC,
    CHARGE_ABORT_ROLLBACK,
    CHARGE_FRAME_COMPUTE,
    CHARGE_FRAME_GUARD,
    CHARGE_FRAME_MEM,
    CHARGE_FRAME_PSI,
    CHARGE_HOST_COMPUTE,
    CHARGE_HOST_FALLBACK,
    CHARGE_HOST_MEM_DRAM,
    CHARGE_HOST_MEM_L1,
    CHARGE_HOST_MEM_L2,
    CHARGE_RECONFIG,
    CHARGE_TRANSFER,
    fold_attribution,
)
from ..obs.timeline import TimelineEvent
from ..profiling.ranking import count_ops
from ..interp.events import FunctionTrace
from ..profiling.path_profile import PathProfile
from .array_kernels import backend_name, census_from_segments_array
from .cache import profile_stream_dual, profile_stream_dual_array
from .config import DEFAULT_CONFIG, SystemConfig
from .core_ooo import OOOModel, OOOResult
from .ooo_columns import simulate_paths_tiered
from .energy import EnergyModel
from .memo import Calibration, SimulationMemo, content_key
from .trace_kernels import (
    KERNEL_MODE_LABELS,
    KERNEL_MODES,
    KERNELS_ARRAY,
    KERNELS_EVENTS,
    KERNELS_RLE,
    census_from_events,
    census_from_segments,
    iter_segment_charges,
    run_length_encode,
)

logger = logging.getLogger(__name__)


@dataclass
class PathCost:
    """Amortised host cost of executing one path once."""

    cycles: float
    census: OOOResult  # per-execution averages stored as totals / reps


@dataclass
class OffloadOutcome:
    """Result of simulating one offload strategy on one workload."""

    workload: str
    strategy: str  # "host" | "bl-path-oracle" | "bl-path-predictor" | "braid"
    baseline_cycles: float
    needle_cycles: float
    baseline_energy_pj: float
    needle_energy_pj: float
    coverage: float = 0.0
    invocations: int = 0
    failures: int = 0
    predictor_precision: float = 1.0
    frame_ops: int = 0
    schedule_cycles: int = 0
    #: accesses served per hierarchy level ("l1"/"l2"/"dram") when the
    #: recorded address stream replays through each port — carried on the
    #: record so the obs layer reports identical simulated-cache counters
    #: for cold, parallel and cache-served evaluations
    host_mem_levels: Dict[str, int] = field(default_factory=dict)
    accel_mem_levels: Dict[str, int] = field(default_factory=dict)
    #: charge class -> (cycles, energy_pj) decomposition of the needle
    #: totals; ``fold_attribution(attribution)`` reproduces
    #: (needle_cycles, needle_energy_pj) bit for bit — the attribution
    #: ledger's conservation contract
    attribution: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: same decomposition for the host-only baseline totals
    baseline_attribution: Dict[str, Tuple[float, float]] = field(
        default_factory=dict
    )

    @property
    def performance_improvement(self) -> float:
        """Fractional cycle reduction (Fig. 9's y-axis)."""
        if self.baseline_cycles == 0:
            return 0.0
        return 1.0 - self.needle_cycles / self.baseline_cycles

    @property
    def energy_reduction(self) -> float:
        """Fractional net energy reduction (Fig. 10's y-axis)."""
        if self.baseline_energy_pj == 0:
            return 0.0
        return 1.0 - self.needle_energy_pj / self.baseline_energy_pj


def _charge(attr: Dict[str, List[float]], cls: str,
            cycles: float = 0.0, energy: float = 0.0) -> None:
    """Accumulate one (cycles, energy) charge into an attribution dict."""
    slot = attr.get(cls)
    if slot is None:
        attr[cls] = [float(cycles), float(energy)]
    else:
        slot[0] += cycles
        slot[1] += energy


def _freeze(attr: Dict[str, List[float]]) -> Dict[str, Tuple[float, float]]:
    return {cls: (v[0], v[1]) for cls, v in attr.items()}


@dataclass
class _FrameCostModel:
    """Per-(workload, frame) cost constants shared by the attribution
    fold and the simulated-cycle timeline — one derivation, two
    consumers, so the timeline never drifts from the accounting."""

    sched: object  # CGRA ScheduleResult
    pipeline_ii: float
    run_start_cycles: float  # makespan + live-value transfer (run fill)
    transfer_cycles: float
    transfer_energy_pj: float
    rollback_cycles: float
    failure_exec_cycles: float
    reconfig_cycles: float
    frame_total_pj: float  # whole-frame invocation energy
    compute_pj: float  # frame energy minus guard/ψ FU shares, minus memory
    guard_fu_pj: float
    psi_fu_pj: float
    frame_mem_pj: float
    guard_frac: float  # guard-op share of the scheduled ops
    psi_frac: float  # ψ-op share of the scheduled ops
    exec_fraction: Dict[int, float]
    targets: Set[int]


class OffloadSimulator:
    """Simulates host-only and Needle-offloaded execution of one workload.

    ``memo``           a shared :class:`~repro.sim.memo.SimulationMemo`
                       (``None`` = a fresh private one; ``False`` =
                       disable memoization — every call recomputes).
    ``trace_kernels``  ``"rle"`` (closed-form run folds, the default),
                       ``"events"`` (the event-by-event reference path)
                       or ``"array"`` (columnar batch kernels — numpy
                       when available, batched pure Python otherwise).
                       All three produce bitwise-identical outcomes;
                       memo entries are therefore shared across modes.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        memo: "Optional[SimulationMemo | bool]" = None,
        trace_kernels: str = KERNELS_RLE,
    ):
        self.config = config or DEFAULT_CONFIG
        self.energy_model = EnergyModel(self.config.energy, self.config.cgra)
        if memo is False:
            self.memo: Optional[SimulationMemo] = None
        elif memo is None or memo is True:
            self.memo = SimulationMemo()
        else:
            self.memo = memo
        if trace_kernels not in KERNEL_MODES:
            raise ValueError(
                "trace_kernels must be one of %r, got %r"
                % (KERNEL_MODES, trace_kernels)
            )
        self.trace_kernels = trace_kernels

    # -- memory latency calibration ------------------------------------------------

    def calibrate(
        self,
        trace: Optional[FunctionTrace],
        artifact_key: Optional[str] = None,
    ) -> Calibration:
        """Memory calibration of one workload, both ports at once.

        A single dual-port pass over the recorded address stream yields
        average load latencies *and* the per-level access censuses (the
        simulated cache hit/miss numbers the obs layer reports); L1/L2
        hit latencies when there is no stream.  Memoized per (workload,
        memory config) — persistently through the artifact cache when
        ``artifact_key`` pins the workload's content — so the three
        offload strategies and any sweep point that keeps the memory
        hierarchy fixed share one replay.
        """

        def compute() -> Calibration:
            hier = self.config.memory
            host_lat = float(hier.l1.latency)
            accel_lat = float(hier.l2.latency)
            host_levels: Dict[str, int] = {}
            accel_levels: Dict[str, int] = {}
            if trace is not None and trace.memory:
                profiler = (
                    profile_stream_dual_array
                    if self.trace_kernels == KERNELS_ARRAY
                    else profile_stream_dual
                )
                host_prof, accel_prof = profiler(hier, trace.memory)
                host_levels = dict(host_prof.level_counts)
                accel_levels = dict(accel_prof.level_counts)
                if host_prof.loads:
                    host_lat = host_prof.avg_load_latency
                if accel_prof.loads:
                    accel_lat = accel_prof.avg_load_latency
            return Calibration(
                host_load_latency=host_lat,
                accel_load_latency=accel_lat,
                host_levels=host_levels,
                accel_levels=accel_levels,
            )

        if self.memo is None:
            return compute()
        mem_cfg = repr(self.config.memory)
        if artifact_key:
            return self.memo.content(
                CALIBRATION_KIND, content_key(artifact_key, mem_cfg), compute
            )
        return self.memo.identity("calibration", trace, mem_cfg, compute)

    # -- host path costs ---------------------------------------------------------------

    def path_costs(
        self,
        profile: PathProfile,
        host_load_latency: float,
        amortise_reps: int = 4,
        artifact_key: Optional[str] = None,
    ) -> Dict[int, PathCost]:
        """Per-execution host cost of each profiled path.

        Paths that repeat are simulated ``amortise_reps`` times back-to-back
        so the OOO window can overlap iterations (loop pipelining), then
        averaged.  Memoized per (profile, host config, rounded load
        latency) — the OOO model only sees the rounded integer latency,
        so sweep points that round alike share one table.

        Under the array kernel tier the replay dispatches through
        :func:`~repro.sim.ooo_columns.simulate_paths_tiered`: the
        vectorized columnar walk, the lockstep batch or the scalar
        record walk, picked once per (profile, config) by
        :func:`~repro.sim.ooo_columns.select_lane_tier` and recorded in
        the ``sim.lane_tier`` obs counter (per simulated path, with the
        tier, executing backend and heuristic rejection reason).  Every
        tier returns the same bits, so the choice only moves time.
        """
        fixed_latency = max(1, int(round(host_load_latency)))
        host_cfg = repr(self.config.host)

        def compute() -> Dict[int, PathCost]:
            model = OOOModel(self.config.host, fixed_load_latency=fixed_latency)
            plan = [
                (
                    pid,
                    tuple(profile.decode(pid)),
                    amortise_reps if count >= amortise_reps else 1,
                )
                for pid, count in profile.counts.items()
            ]
            if self.trace_kernels == KERNELS_ARRAY:
                stats: Dict[str, object] = {}
                results = simulate_paths_tiered(
                    model, plan,
                    memo=self.memo, anchor=profile,
                    anchor_extra=(host_cfg, fixed_latency),
                    stats=stats,
                )
                decision = stats.get("decision")
                if decision is not None and _obs_enabled():
                    _obs_counter(
                        "sim.lane_tier", max(len(plan), 1),
                        help="simulated paths per OOO walk tier "
                             "(vector/batch/scalar), labelled with the "
                             "executing backend and the heuristic "
                             "rejection reason",
                        tier=decision.tier,
                        backend=decision.backend,
                        reason=decision.reason,
                    )
            else:
                results = {
                    pid: model.simulate(list(blocks) * reps)
                    for pid, blocks, reps in plan
                }
            costs: Dict[int, PathCost] = {}
            for pid, _blocks, reps in plan:
                res = results[pid]
                per_exec = OOOResult()
                for name in vars(per_exec):
                    setattr(per_exec, name, getattr(res, name) / reps)
                costs[pid] = PathCost(cycles=res.cycles / reps, census=per_exec)
            return costs

        if self.memo is None:
            return compute()
        if artifact_key:
            key = content_key(
                artifact_key, host_cfg, fixed_latency, amortise_reps
            )
            return self.memo.content(PATH_COSTS_KIND, key, compute)
        return self.memo.identity(
            "pathcosts", profile, (host_cfg, fixed_latency, amortise_reps),
            compute,
        )

    # -- baseline --------------------------------------------------------------------------

    def baseline(
        self, profile: PathProfile, costs: Dict[int, PathCost]
    ) -> Tuple[float, float]:
        """(cycles, energy_pj) of host-only execution of the whole trace."""
        cycles, energy, _attr = self.baseline_attributed(profile, costs)
        return cycles, energy

    def baseline_attributed(
        self, profile: PathProfile, costs: Dict[int, PathCost]
    ) -> Tuple[float, float, Dict[str, Tuple[float, float]]]:
        """Baseline totals plus their charge-class decomposition.

        All cycles are ``host.compute``; energy splits into the OOO
        front-end/window/FU share (``host.compute``) and the per-level
        memory hierarchy shares (``host.mem.*``).  The returned totals
        are the canonical fold of the attribution, so the ledger's
        ``host`` strategy conserves exactly against ``baseline_cycles``.
        """
        attr: Dict[str, List[float]] = {}
        for pid, count in profile.counts.items():
            c = costs[pid]
            eb = self.energy_model.host_energy(c.census)
            levels = self.energy_model.host_memory_energy_levels(c.census)
            _charge(attr, CHARGE_HOST_COMPUTE,
                    cycles=count * c.cycles,
                    energy=count * (eb.frontend_pj + eb.window_pj + eb.fu_pj))
            _charge(attr, CHARGE_HOST_MEM_L1, energy=count * levels["l1"])
            _charge(attr, CHARGE_HOST_MEM_L2, energy=count * levels["l2"])
            _charge(attr, CHARGE_HOST_MEM_DRAM, energy=count * levels["dram"])
        cycles, energy = fold_attribution(attr)
        return cycles, energy, _freeze(attr)

    # -- offload ----------------------------------------------------------------------------

    def _scheduler_fingerprint(self, scheduler) -> tuple:
        """The config slice a CGRA schedule depends on (memo key part)."""
        return (
            repr(self.config.cgra),
            scheduler.load_latency,
            scheduler.store_latency,
        )

    def _schedule(self, scheduler, frame: Frame):
        """Memoized CGRA schedule of ``frame`` under this configuration."""

        def compute():
            return scheduler.schedule(
                frame, loop_carried=self._loop_carried(frame)
            )

        if self.memo is None:
            return compute()
        return self.memo.identity(
            "schedule", frame, self._scheduler_fingerprint(scheduler), compute
        )

    def _effective_ii(self, frame: Frame, sched, profile: PathProfile, scheduler) -> float:
        """Initiation interval for pipelined invocations.

        For a braid, the whole-region recurrence is pessimistic: dataflow
        predication gates untaken arms, so an iteration flowing down the hot
        (short-chain) arm does not serialise behind the cold arm's chain.
        We weight each constituent path's recurrence by its frequency.
        Memoized per (frame, CGRA config): the constituent-path schedules
        this rebuilds are the most expensive part of a braid evaluation.
        """
        if frame.region.kind != "braid" or len(frame.region.source_paths) < 2:
            return float(sched.initiation_interval)

        def compute() -> float:
            from ..frames.frame import build_frame as _build_frame
            from ..regions.path_region import path_to_region as _path_to_region
            from ..profiling.ranking import RankedPath as _RankedPath

            total_freq = 0
            weighted = 0.0
            for pid in frame.region.source_paths:
                freq = profile.counts.get(pid, 0)
                if freq <= 0:
                    continue
                try:
                    blocks = profile.decode(pid)
                    rp = _RankedPath(
                        path_id=pid, blocks=blocks, freq=freq,
                        ops=count_ops(blocks), weight=0, coverage=0.0,
                    )
                    pframe = _build_frame(
                        _path_to_region(frame.region.function, rp)
                    )
                    psched = scheduler.schedule(
                        pframe, loop_carried=self._loop_carried(pframe)
                    )
                    weighted += freq * psched.recurrence_ii
                    total_freq += freq
                except Exception as exc:
                    # constituent falls back to the whole-region II — count
                    # it so schedule regressions are visible, not silent
                    if _obs_enabled():
                        _obs_counter(
                            "sim.effective_ii_fallbacks", 1,
                            help="braid constituent paths that failed to "
                                 "re-schedule for the pipelined II",
                            error=type(exc).__name__,
                        )
                    logger.debug(
                        "effective-II fallback: constituent path %d of %s "
                        "failed to schedule: %s",
                        pid, frame.region.function.name, exc,
                    )
                    continue
            if total_freq == 0:
                return float(sched.initiation_interval)
            avg_recurrence = weighted / total_freq
            return float(max(sched.resource_ii, avg_recurrence))

        if self.memo is None:
            return compute()
        return self.memo.identity(
            "effective_ii", frame, self._scheduler_fingerprint(scheduler),
            compute,
        )

    @staticmethod
    def _loop_carried(frame: Frame):
        """(entry φ, back-edge definition) pairs for the recurrence II.

        When the region is a loop iteration, its final block feeds the entry
        block's φs over the back edge; those defs bound the pipelined II.
        """
        pairs = []
        region = frame.region
        if not region.blocks:
            return pairs
        last = region.blocks[-1]
        for phi in region.entry.phis:
            val = phi.incoming_for(last)
            if val is not None:
                pairs.append((phi, val))
        return pairs

    def _rle(self, profile: PathProfile):
        """RLE view of the profile's trace, computed once per profile."""
        if self.memo is None:
            return run_length_encode(profile.trace)
        return self.memo.identity(
            "rle", profile, None, lambda: run_length_encode(profile.trace)
        )

    def _cost_model(
        self,
        profile: PathProfile,
        frame: Frame,
        cal: Calibration,
        CGRAScheduler,
    ) -> _FrameCostModel:
        """Derive the per-frame cost constants every accounting consumer
        (attribution fold, timeline replay) shares."""
        # Frames stream array data through the banked L2: bank pipelining
        # and the memory-port-limited schedule hide most of the raw L2
        # latency, so the per-load critical-path charge is a fraction of it.
        effective_load = max(4.0, cal.accel_load_latency * 0.4)
        scheduler = CGRAScheduler(
            self.config.cgra,
            load_latency=effective_load,
            store_latency=max(1.0, effective_load / 3),
        )
        sched = self._schedule(scheduler, frame)
        pipeline_ii = self._effective_ii(frame, sched, profile, scheduler)
        frame_eb = self.energy_model.frame_energy(
            n_int_ops=sched.int_ops + sched.guard_ops,
            n_fp_ops=sched.fp_ops,
            n_mem_ops=sched.mem_ops,
            n_edges=sched.edges,
            l2_accesses=sched.mem_ops,
        )
        # Guard and ψ shares of one frame invocation.  Guards are integer
        # compare ops the scheduler tracks separately; ψ-merges map to
        # integer selects, bounded by the schedule's int-op budget.  The
        # remainder (plus network/latch) is productive frame compute.
        cgra = self.config.cgra
        psi_ops = min(len(frame.psis), sched.int_ops)
        guard_fu_pj = sched.guard_ops * cgra.int_fu_pj
        psi_fu_pj = psi_ops * cgra.int_fu_pj
        compute_pj = (
            frame_eb.fu_pj - guard_fu_pj - psi_fu_pj
            + frame_eb.network_pj + frame_eb.latch_pj
        )
        total_sched_ops = max(
            1, sched.int_ops + sched.fp_ops + sched.mem_ops + sched.guard_ops
        )
        # Dataflow predication gates tokens on untaken braid arms, so an
        # invocation burns energy proportional to the ops its actual path
        # touches, not the whole fabric mapping.
        frame_ops_total = max(1, frame.region.op_count)
        exec_fraction: Dict[int, float] = {}
        for pid in frame.region.source_paths:
            path_ops = count_ops(profile.decode(pid))
            exec_fraction[pid] = min(1.0, path_ops / frame_ops_total)
        n_transfer = len(frame.live_ins) + len(frame.live_outs)
        transfer_cycles = (
            n_transfer * self.config.offload.transfer_cycles_per_value
            + self.config.offload.invocation_overhead_cycles
        )
        transfer_energy = self.energy_model.transfer_energy(n_transfer).total_pj
        rollback_cycles = (
            frame.store_count * self.config.offload.rollback_cycles_per_store
        )
        # Conservative (paper) mode detects guard failure only at frame end,
        # wasting the whole schedule; eager mode aborts around the mean guard
        # position (§V's guard-placement trade-off).
        if self.config.offload.detect_failure_at_end or not frame.guards:
            failure_exec_cycles = sched.cycles
        else:
            mean_pos = sum(g.position for g in frame.guards) / len(frame.guards)
            fraction = (mean_pos + 1) / max(1, frame.op_count)
            failure_exec_cycles = max(1.0, sched.cycles * fraction)
        return _FrameCostModel(
            sched=sched,
            pipeline_ii=pipeline_ii,
            run_start_cycles=sched.cycles + transfer_cycles,
            transfer_cycles=transfer_cycles,
            transfer_energy_pj=transfer_energy,
            rollback_cycles=rollback_cycles,
            failure_exec_cycles=failure_exec_cycles,
            reconfig_cycles=float(cgra.reconfig_cycles * sched.n_configs),
            frame_total_pj=frame_eb.total_pj,
            compute_pj=compute_pj,
            guard_fu_pj=guard_fu_pj,
            psi_fu_pj=psi_fu_pj,
            frame_mem_pj=frame_eb.memory_pj,
            guard_frac=sched.guard_ops / total_sched_ops,
            psi_frac=psi_ops / total_sched_ops,
            exec_fraction=exec_fraction,
            targets=set(frame.region.source_paths),
        )

    def _host_side_charges(
        self,
        attr: Dict[str, List[float]],
        compute_class: str,
        n: int,
        cost: PathCost,
    ) -> None:
        """Charge ``n`` host executions of a path: OOO front-end/window/FU
        cycles+energy to ``compute_class``, memory energy per level."""
        eb = self.energy_model.host_energy(cost.census)
        levels = self.energy_model.host_memory_energy_levels(cost.census)
        _charge(attr, compute_class,
                cycles=n * cost.cycles,
                energy=n * (eb.frontend_pj + eb.window_pj + eb.fu_pj))
        _charge(attr, CHARGE_HOST_MEM_L1, energy=n * levels["l1"])
        _charge(attr, CHARGE_HOST_MEM_L2, energy=n * levels["l2"])
        _charge(attr, CHARGE_HOST_MEM_DRAM, energy=n * levels["dram"])

    def _attribute(self, census, cm: _FrameCostModel,
                   costs: Dict[int, PathCost]) -> Dict[str, Tuple[float, float]]:
        """Fold a :class:`ChargeCensus` into the charge-class attribution.

        This is the *only* place simulated floats accumulate: the
        reported ``needle_cycles``/``needle_energy_pj`` are defined as
        ``fold_attribution`` of the returned dict, so the ledger's
        per-class sums conserve against the totals bit for bit.

        Run-based accounting: the first invocation in a run of
        back-to-back successful invocations pays pipeline fill (full
        makespan) plus the live-value transfer; each further iteration
        initiates after the frame's II (dataflow pipelining).  The
        configuration stays resident on the fabric across the workload
        (only one frame is offloaded), so reconfiguration is a one-time
        cost, charged once.
        """
        attr: Dict[str, List[float]] = {}
        _charge(attr, CHARGE_RECONFIG, cycles=cm.reconfig_cycles)

        def frame_exec(pid: int, frame_cycles: float, n: int) -> None:
            # split one successful frame-execution term into its
            # guard/ψ/compute shares (cycles by op fraction, energy by
            # FU component), scaled by the path's predication fraction
            scale = cm.exec_fraction.get(pid, 1.0)
            guard_c = frame_cycles * cm.guard_frac
            psi_c = frame_cycles * cm.psi_frac
            _charge(attr, CHARGE_FRAME_COMPUTE,
                    cycles=frame_cycles - guard_c - psi_c,
                    energy=n * scale * cm.compute_pj)
            _charge(attr, CHARGE_FRAME_GUARD,
                    cycles=guard_c, energy=n * scale * cm.guard_fu_pj)
            _charge(attr, CHARGE_FRAME_PSI,
                    cycles=psi_c, energy=n * scale * cm.psi_fu_pj)
            _charge(attr, CHARGE_FRAME_MEM,
                    energy=n * scale * cm.frame_mem_pj)

        for pid in sorted(census.run_starts):
            n = census.run_starts[pid]
            frame_exec(pid, n * cm.sched.cycles, n)
            _charge(attr, CHARGE_TRANSFER,
                    cycles=n * cm.transfer_cycles,
                    energy=n * cm.transfer_energy_pj)
        for pid in sorted(census.pipelined):
            n = census.pipelined[pid]
            frame_exec(pid, n * cm.pipeline_ii, n)
        for pid in sorted(census.failures):
            n = census.failures[pid]
            # the whole frame burns (unscaled: predication can't gate a
            # mispredicted path), then the undo log unwinds, then the
            # host re-executes the actual path
            _charge(attr, CHARGE_ABORT_FRAME,
                    cycles=n * cm.failure_exec_cycles,
                    energy=n * cm.frame_total_pj)
            _charge(attr, CHARGE_TRANSFER,
                    cycles=n * cm.transfer_cycles,
                    energy=n * cm.transfer_energy_pj)
            _charge(attr, CHARGE_ABORT_ROLLBACK, cycles=n * cm.rollback_cycles)
            self._host_side_charges(attr, CHARGE_ABORT_REEXEC, n, costs[pid])
        for pid in sorted(census.host):
            n = census.host[pid]
            self._host_side_charges(
                attr, CHARGE_HOST_FALLBACK, n, costs[pid]
            )
        return _freeze(attr)

    def simulate_offload(
        self,
        workload: str,
        profile: PathProfile,
        frame: Frame,
        predictor_kind: str = "oracle",
        trace: Optional[FunctionTrace] = None,
        coverage: Optional[float] = None,
        artifact_key: Optional[str] = None,
    ) -> OffloadOutcome:
        """Simulate offloading ``frame`` with the given invocation predictor.

        ``predictor_kind``: "oracle" or "history".  ``artifact_key`` (the
        workload's content hash, when known) upgrades the simulation
        memo's calibration/path-cost entries from in-memory identity keys
        to persistent content keys.
        """
        # local import: repro.accel depends on repro.sim.config, so the
        # accel package cannot be imported at sim module-load time
        from ..accel.cgra import CGRAScheduler
        from ..accel.invocation import (
            HistoryPredictor,
            OraclePredictor,
            evaluate_predictor,
            evaluate_predictor_runs,
            evaluate_predictor_runs_array,
        )

        with _obs_span("simulate_offload", workload=workload,
                       kind=frame.region.kind, predictor=predictor_kind):
            return self._simulate_offload(
                workload, profile, frame, predictor_kind, trace, coverage,
                artifact_key,
                CGRAScheduler, HistoryPredictor, OraclePredictor,
                evaluate_predictor, evaluate_predictor_runs,
                evaluate_predictor_runs_array,
            )

    def _simulate_offload(
        self,
        workload: str,
        profile: PathProfile,
        frame: Frame,
        predictor_kind,
        trace,
        coverage,
        artifact_key,
        CGRAScheduler,
        HistoryPredictor,
        OraclePredictor,
        evaluate_predictor,
        evaluate_predictor_runs,
        evaluate_predictor_runs_array,
    ) -> OffloadOutcome:
        if _obs_enabled():
            _obs_gauge(
                "sim.kernel_mode", 1.0,
                help="which trace-kernel tier and backend produced this "
                     "simulation (value is always 1; the labels carry "
                     "the information)",
                workload=workload,
                mode=KERNEL_MODE_LABELS[self.trace_kernels],
                backend=(
                    backend_name()
                    if self.trace_kernels == KERNELS_ARRAY
                    else "python"
                ),
            )
        cal = self.calibrate(trace, artifact_key=artifact_key)
        costs = self.path_costs(
            profile, cal.host_load_latency, artifact_key=artifact_key
        )
        base_cycles, base_energy, base_attr = self.baseline_attributed(
            profile, costs
        )
        cm = self._cost_model(profile, frame, cal, CGRAScheduler)

        targets = cm.targets
        if predictor_kind == "oracle":
            predictor = OraclePredictor(targets)
        else:
            predictor = HistoryPredictor()

        # Classify every trace event into an integer ChargeCensus, via the
        # O(#runs) RLE kernel, the columnar array kernels, or the
        # O(#events) reference kernel.  All produce the same census
        # (property-tested), and the shared fold below is the only place
        # floats accumulate — so every kernel mode yields bitwise-
        # identical outcomes by construction.
        pipelined_cfg = self.config.offload.pipelined_invocations
        if self.trace_kernels == KERNELS_EVENTS:
            evaluation = evaluate_predictor(profile.trace, targets, predictor)
            census = census_from_events(
                profile.trace, evaluation.decisions, targets, pipelined_cfg
            )
            precision = evaluation.precision
        else:
            rle = self._rle(profile)
            if _obs_enabled():
                _obs_gauge(
                    "trace.rle_ratio", rle.rle_ratio,
                    help="trace runs / trace events (lower = more "
                         "closed-form fold savings)",
                    workload=workload,
                )
            if self.trace_kernels == KERNELS_ARRAY:
                run_eval = evaluate_predictor_runs_array(
                    rle.runs, targets, predictor, columns=rle.columns()
                )
                census = census_from_segments_array(
                    run_eval.segments, targets, pipelined_cfg,
                    columns=run_eval.segment_columns,
                )
            else:
                run_eval = evaluate_predictor_runs(
                    rle.runs, targets, predictor
                )
                census = census_from_segments(
                    run_eval.segments, targets, pipelined_cfg
                )
            precision = run_eval.precision

        # The reported totals are *defined as* the canonical fold of the
        # attribution — conservation against the ledger by construction.
        attribution = self._attribute(census, cm, costs)
        needle_cycles, needle_energy = fold_attribution(attribution)

        return OffloadOutcome(
            workload=workload,
            strategy=(
                "braid"
                if frame.region.kind == "braid"
                else "bl-path-%s" % predictor_kind
            ),
            baseline_cycles=base_cycles,
            needle_cycles=needle_cycles,
            baseline_energy_pj=base_energy,
            needle_energy_pj=needle_energy,
            coverage=coverage if coverage is not None else frame.region.coverage,
            invocations=census.invocations,
            failures=census.failed,
            predictor_precision=precision,
            frame_ops=frame.op_count,
            schedule_cycles=cm.sched.cycles,
            host_mem_levels=dict(cal.host_levels),
            accel_mem_levels=dict(cal.accel_levels),
            attribution=attribution,
            baseline_attribution=base_attr,
        )

    # -- simulated timeline -----------------------------------------------------

    def invocation_timeline(
        self,
        workload: str,
        profile: PathProfile,
        frame: Frame,
        predictor_kind: str = "oracle",
        trace: Optional[FunctionTrace] = None,
        artifact_key: Optional[str] = None,
    ) -> List[TimelineEvent]:
        """Replay the trace as duration events on a simulated-cycle clock.

        One event per predictor-decision segment (a maximal run of
        same-path, same-decision trace events): successful invocation
        runs render as "frame" blocks (pipeline fill + II-spaced
        iterations), guard failures as "abort" blocks (wasted frame +
        rollback + host re-execution), declined events as "host" blocks.
        Durations come from the same :class:`_FrameCostModel` the
        attribution fold uses, so the timeline's total extent tracks the
        reported ``needle_cycles``.
        """
        from ..accel.cgra import CGRAScheduler
        from ..accel.invocation import (
            HistoryPredictor,
            OraclePredictor,
            evaluate_predictor_runs,
        )

        cal = self.calibrate(trace, artifact_key=artifact_key)
        costs = self.path_costs(
            profile, cal.host_load_latency, artifact_key=artifact_key
        )
        cm = self._cost_model(profile, frame, cal, CGRAScheduler)
        targets = cm.targets
        if predictor_kind == "oracle":
            predictor = OraclePredictor(targets)
        else:
            predictor = HistoryPredictor()
        rle = self._rle(profile)
        run_eval = evaluate_predictor_runs(rle.runs, targets, predictor)

        pipelined_cfg = self.config.offload.pipelined_invocations
        events: List[TimelineEvent] = []
        clock = 0.0
        if cm.reconfig_cycles > 0:
            events.append(TimelineEvent(
                name="reconfig", start_cycle=0.0,
                duration_cycles=cm.reconfig_cycles,
                args={"configs": cm.sched.n_configs},
            ))
            clock = cm.reconfig_cycles
        for sc in iter_segment_charges(
            run_eval.segments, targets, pipelined_cfg
        ):
            if sc.run_starts or sc.pipelined:
                dur = (
                    sc.run_starts * cm.run_start_cycles
                    + sc.pipelined * cm.pipeline_ii
                )
                events.append(TimelineEvent(
                    name="frame", start_cycle=clock, duration_cycles=dur,
                    args={"path": sc.pid,
                          "invocations": sc.run_starts + sc.pipelined,
                          "fill": sc.run_starts},
                ))
            elif sc.failures:
                dur = sc.failures * (
                    cm.failure_exec_cycles + cm.transfer_cycles
                    + cm.rollback_cycles + costs[sc.pid].cycles
                )
                events.append(TimelineEvent(
                    name="abort", start_cycle=clock, duration_cycles=dur,
                    args={"path": sc.pid, "failures": sc.failures},
                ))
            else:
                dur = sc.host * costs[sc.pid].cycles
                events.append(TimelineEvent(
                    name="host", start_cycle=clock, duration_cycles=dur,
                    args={"path": sc.pid, "events": sc.host},
                ))
            clock += dur
        return events


__all__ = ["Calibration", "OffloadOutcome", "OffloadSimulator", "PathCost"]
