"""System parameters (paper Table V) and energy constants.

The host is an embedded-class 1 GHz 4-way OOO core; the accelerator is an
uncore 16×8 CGRA that moves data through the shared L2.  CGRA energy numbers
come straight from Table V; the host per-event energies follow the paper's
McPAT ARM-template setup (front-end elision is the dominant saving, so the
host front-end + OOO-window costs dominate the per-instruction bill).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class HostConfig:
    """OOO host core (Table V, top half)."""

    frequency_ghz: float = 1.0
    fetch_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    rob_entries: int = 96
    int_alus: int = 6
    fp_units: int = 2
    int_rf_entries: int = 64
    fp_rf_entries: int = 64


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64
    latency: int = 1

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """L1 + NUCA L2 + DRAM (Table V, middle)."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=64 * 1024, associativity=4, latency=2
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=2 * 1024 * 1024, associativity=8, latency=20
        )
    )
    l2_banks: int = 8
    dram_latency: int = 120


@dataclass(frozen=True)
class CGRAConfig:
    """Coarse-grained reconfigurable array (Table V, bottom)."""

    rows: int = 16
    cols: int = 8
    reconfig_cycles: int = 16
    memory_ports: int = 4
    #: operand-network bandwidth: ops that can *fire* per cycle across the
    #: fabric (token routing — one per column — not FU count, bounds
    #: sustained throughput)
    issue_width: int = 8
    #: dynamic energy, picojoules (Table V)
    network_pj: float = 12.0  # per switch+link traversal (one per DFG edge)
    int_fu_pj: float = 8.0
    fp_fu_pj: float = 25.0
    latch_pj: float = 5.0

    @property
    def fu_count(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event host energies (picojoules), McPAT ARM-1GHz flavoured."""

    host_frontend_pj: float = 20.0  # fetch + decode + rename, per instruction
    host_window_pj: float = 15.0  # issue queue + ROB + bypass, per instruction
    host_int_op_pj: float = 8.0
    host_fp_op_pj: float = 25.0
    l1_access_pj: float = 10.0
    l2_access_pj: float = 28.0
    dram_access_pj: float = 120.0
    #: live value transfer between host and accelerator (via L2)
    transfer_per_value_pj: float = 28.0


@dataclass(frozen=True)
class OffloadConfig:
    """Offload mechanics: invocation and failure costs."""

    #: cycles to move one live value host<->accelerator through the L2
    transfer_cycles_per_value: int = 1
    #: fixed host-side cycles to launch/resume around an invocation
    invocation_overhead_cycles: int = 4
    #: cycles to replay one undo-log entry on rollback
    rollback_cycles_per_store: int = 4
    #: guard failures are detected only at frame end (paper's conservative
    #: assumption); set False to model eager detection at the guard position
    detect_failure_at_end: bool = True
    #: back-to-back invocations of the same frame pipeline at the frame's
    #: initiation interval (the §IV-A expansion benefit); set False to make
    #: every invocation pay the full schedule makespan
    pipelined_invocations: bool = True


@dataclass(frozen=True)
class SystemConfig:
    """Full Table V system."""

    host: HostConfig = field(default_factory=HostConfig)
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    cgra: CGRAConfig = field(default_factory=CGRAConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    offload: OffloadConfig = field(default_factory=OffloadConfig)


DEFAULT_CONFIG = SystemConfig()
