"""Trace-driven out-of-order host core model (macsim stand-in).

The model replays a dynamic basic-block trace and computes the cycle each
instruction allocates, issues, finishes and retires under the Table V
machine: 4-wide fetch/retire, 96-entry ROB, 6 ALUs + 2 FPUs (fully
pipelined), perfect branch prediction (the paper's deliberately generous
baseline assumption), and perfect memory disambiguation (loads wait only for
the youngest older store to the *same* address).

Complexity is O(n) in trace length with small constants, so whole-workload
traces simulate in well under a second.

The replay loop consumes pre-decoded micro-ops: the first time a block is
seen, each instruction is classified once into ``(kind, inst, latency,
writes_result)`` and the list is memoized on the model, so the per-dynamic-
instruction cost is an integer dispatch instead of an ``isinstance`` chain
plus latency-table lookups.  The decode cache lives on the
:class:`OOOModel` instance — models are cheap and short-lived, which keeps
the cache trivially coherent with any IR transformation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.instructions import (
    Branch,
    CondBranch,
    Instruction,
    Load,
    Phi,
    Ret,
    Store,
)
from ..ir.values import Value
from .cache import MemorySystem
from .config import HostConfig


@dataclass
class OOOResult:
    """Cycle count and event census of one simulated trace."""

    cycles: int = 0
    instructions: int = 0  # allocated (non-φ) instructions
    int_ops: int = 0
    fp_ops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    phis: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    dram_accesses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mem_ops(self) -> float:
        """Loads + stores — the L1-port traffic the energy model prices."""
        return self.loads + self.stores

    def merge(self, other: "OOOResult") -> "OOOResult":
        """Aggregate two disjoint trace segments (cycles add)."""
        out = OOOResult()
        for name in vars(out):
            setattr(out, name, getattr(self, name) + getattr(other, name))
        return out


#: micro-op kinds produced by block decode
_UOP_PHI = 0
_UOP_LOAD = 1
_UOP_STORE = 2
_UOP_BRANCH = 3
_UOP_INT = 4
_UOP_FP = 5


class OOOModel:
    """Replays block traces through the OOO timing model."""

    def __init__(
        self,
        config: Optional[HostConfig] = None,
        memory_system: Optional[MemorySystem] = None,
        fixed_load_latency: int = 2,
        fixed_store_latency: int = 1,
    ):
        self.config = config or HostConfig()
        self.memory_system = memory_system
        self.fixed_load_latency = fixed_load_latency
        self.fixed_store_latency = fixed_store_latency
        self._uops: Dict[BasicBlock, List[Tuple[int, Instruction, int, bool]]] = {}

    def _decode(self, block: BasicBlock) -> List[Tuple[int, Instruction, int, bool]]:
        """Classify each instruction once: (kind, inst, issue latency,
        writes_result).  Memoized per block on this model instance."""
        uops = []
        for inst in block.instructions:
            writes = not inst.type.is_void
            if isinstance(inst, Phi):
                uops.append((_UOP_PHI, inst, 0, writes))
            elif isinstance(inst, Load):
                uops.append((_UOP_LOAD, inst, self.fixed_load_latency, writes))
            elif isinstance(inst, Store):
                uops.append((_UOP_STORE, inst, self.fixed_store_latency, writes))
            elif isinstance(inst, (Branch, CondBranch, Ret)):
                uops.append((_UOP_BRANCH, inst, 1, writes))
            elif inst.is_float:
                uops.append((_UOP_FP, inst, max(1, inst.latency), writes))
            else:
                uops.append((_UOP_INT, inst, max(1, inst.latency), writes))
        return uops

    def simulate(
        self,
        block_trace: Iterable[Optional[BasicBlock]],
        memory_stream: Optional[Iterable[Tuple[str, int]]] = None,
    ) -> OOOResult:
        """Simulate a block trace (``None`` entries separate invocations).

        ``memory_stream`` supplies (opcode, address) pairs aligned with the
        loads/stores of the trace; when given together with a memory system,
        each access is charged its actual hierarchy latency.
        """
        cfg = self.config
        result = OOOResult()
        mem_iter: Optional[Iterator[Tuple[str, int]]] = (
            iter(memory_stream) if memory_stream is not None else None
        )

        finish: Dict[Value, float] = {}
        last_store_to: Dict[int, float] = {}
        last_store_any = 0.0

        rob: List[float] = []  # retire times of in-flight window (ring)
        rob_head = 0
        alloc_cycle = 0.0
        alloc_in_cycle = 0
        retire_times: List[float] = [0.0] * cfg.retire_width
        retire_idx = 0
        last_retire = 0.0

        alu_free = [0.0] * cfg.int_alus
        fpu_free = [0.0] * cfg.fp_units
        heapq.heapify(alu_free)
        heapq.heapify(fpu_free)

        uop_cache = self._uops
        fetch_width = cfg.fetch_width
        retire_width = cfg.retire_width
        rob_entries = cfg.rob_entries
        fast_memory = self.memory_system is None
        heappush = heapq.heappush
        heappop = heapq.heappop

        prev_block: Optional[BasicBlock] = None
        for block in block_trace:
            if block is None:
                prev_block = None
                continue
            uops = uop_cache.get(block)
            if uops is None:
                uops = self._decode(block)
                uop_cache[block] = uops
            for kind, inst, latency, writes in uops:
                if kind == _UOP_PHI:
                    # register rename: value forwards from the taken edge
                    result.phis += 1
                    if prev_block is not None:
                        src = inst.incoming_for(prev_block)
                        finish[inst] = finish.get(src, 0.0) if src is not None else 0.0
                    else:
                        finish[inst] = 0.0
                    continue

                # -- allocate (fetch/rename bandwidth + ROB occupancy) ------
                if alloc_in_cycle >= fetch_width:
                    alloc_cycle += 1
                    alloc_in_cycle = 0
                if len(rob) >= rob_entries:
                    oldest = rob[rob_head % rob_entries]
                    if oldest > alloc_cycle:
                        alloc_cycle = oldest
                        alloc_in_cycle = 0
                alloc_in_cycle += 1
                result.instructions += 1

                # -- operand readiness ---------------------------------------
                ready = alloc_cycle
                for op in inst.operands:
                    t = finish.get(op)
                    if t is not None and t > ready:
                        ready = t

                # -- issue / execute ------------------------------------------
                if kind == _UOP_INT:
                    unit = heappop(alu_free)
                    start = ready if ready > unit else unit
                    heappush(alu_free, start + 1)
                    result.int_ops += 1
                    done = start + latency
                elif kind == _UOP_FP:
                    unit = heappop(fpu_free)
                    start = ready if ready > unit else unit
                    heappush(fpu_free, start + 1)
                    result.fp_ops += 1
                    done = start + latency
                elif kind == _UOP_LOAD:
                    addr = self._next_mem(mem_iter, result)
                    if addr is not None:
                        dep = last_store_to.get(addr // 8, 0.0)
                        if dep > ready:
                            ready = dep
                    if not fast_memory or addr is None:
                        latency = self._mem_latency(addr, False, result)
                    done = ready + latency
                    result.loads += 1
                elif kind == _UOP_STORE:
                    addr = self._next_mem(mem_iter, result)
                    done = ready + latency
                    if not fast_memory:
                        self._mem_latency(addr, True, result)
                    if addr is not None:
                        last_store_to[addr // 8] = done
                        if done > last_store_any:
                            last_store_any = done
                    elif done > last_store_any:
                        last_store_any = done
                    result.stores += 1
                else:  # _UOP_BRANCH
                    done = ready + 1
                    result.branches += 1

                if writes:
                    finish[inst] = done

                # -- retire (in order, retire_width per cycle) -----------------
                width_slot = retire_times[retire_idx % retire_width]
                retire = max(done, last_retire, width_slot + 1)
                retire_times[retire_idx % retire_width] = retire
                retire_idx += 1
                last_retire = retire
                if len(rob) < rob_entries:
                    rob.append(retire)
                else:
                    rob[rob_head % rob_entries] = retire
                    rob_head += 1

            prev_block = block

        result.cycles = int(last_retire) if result.instructions else 0
        return result

    # -- helpers -----------------------------------------------------------------

    def _next_mem(self, mem_iter, result) -> Optional[int]:
        if mem_iter is None:
            return None
        try:
            _, addr = next(mem_iter)
            return addr
        except StopIteration:
            return None

    def _mem_latency(self, addr: Optional[int], is_write: bool, result: OOOResult) -> int:
        if self.memory_system is None or addr is None:
            return self.fixed_store_latency if is_write else self.fixed_load_latency
        res = self.memory_system.host_access(addr, is_write)
        if res.level == "l1":
            result.l1_hits += 1
        elif res.level == "l2":
            result.l2_hits += 1
        else:
            result.dram_accesses += 1
        return res.latency
