"""Trace-driven out-of-order host core model (macsim stand-in).

The model replays a dynamic basic-block trace and computes the cycle each
instruction allocates, issues, finishes and retires under the Table V
machine: 4-wide fetch/retire, 96-entry ROB, 6 ALUs + 2 FPUs (fully
pipelined), perfect branch prediction (the paper's deliberately generous
baseline assumption), and perfect memory disambiguation (loads wait only for
the youngest older store to the *same* address).

Complexity is O(n) in trace length with small constants, so whole-workload
traces simulate in well under a second.

The replay loop consumes pre-decoded micro-ops: the first time a block is
seen, each instruction is classified once into ``(kind, inst, latency,
writes_result)`` and the list is memoized on the model, so the per-dynamic-
instruction cost is an integer dispatch instead of an ``isinstance`` chain
plus latency-table lookups.  The decode cache lives on the
:class:`OOOModel` instance — models are cheap and short-lived, which keeps
the cache trivially coherent with any IR transformation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.instructions import (
    Branch,
    CondBranch,
    Instruction,
    Load,
    Phi,
    Ret,
    Store,
)
from ..ir.values import Value
from .cache import MemorySystem
from .config import HostConfig


@dataclass
class OOOResult:
    """Cycle count and event census of one simulated trace."""

    cycles: int = 0
    instructions: int = 0  # allocated (non-φ) instructions
    int_ops: int = 0
    fp_ops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    phis: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    dram_accesses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mem_ops(self) -> float:
        """Loads + stores — the L1-port traffic the energy model prices."""
        return self.loads + self.stores

    def merge(self, other: "OOOResult") -> "OOOResult":
        """Aggregate two disjoint trace segments (cycles add)."""
        out = OOOResult()
        for name in vars(out):
            setattr(out, name, getattr(self, name) + getattr(other, name))
        return out


#: micro-op kinds produced by block decode
_UOP_PHI = 0
_UOP_LOAD = 1
_UOP_STORE = 2
_UOP_BRANCH = 3
_UOP_INT = 4
_UOP_FP = 5


class OOOModel:
    """Replays block traces through the OOO timing model."""

    def __init__(
        self,
        config: Optional[HostConfig] = None,
        memory_system: Optional[MemorySystem] = None,
        fixed_load_latency: int = 2,
        fixed_store_latency: int = 1,
    ):
        self.config = config or HostConfig()
        self.memory_system = memory_system
        self.fixed_load_latency = fixed_load_latency
        self.fixed_store_latency = fixed_store_latency
        self._uops: Dict[BasicBlock, List[Tuple[int, Instruction, int, bool]]] = {}

    def _decode(self, block: BasicBlock) -> List[Tuple[int, Instruction, int, bool]]:
        """Classify each instruction once: (kind, inst, issue latency,
        writes_result).  Memoized per block on this model instance."""
        uops = []
        for inst in block.instructions:
            writes = not inst.type.is_void
            if isinstance(inst, Phi):
                uops.append((_UOP_PHI, inst, 0, writes))
            elif isinstance(inst, Load):
                uops.append((_UOP_LOAD, inst, self.fixed_load_latency, writes))
            elif isinstance(inst, Store):
                uops.append((_UOP_STORE, inst, self.fixed_store_latency, writes))
            elif isinstance(inst, (Branch, CondBranch, Ret)):
                uops.append((_UOP_BRANCH, inst, 1, writes))
            elif inst.is_float:
                uops.append((_UOP_FP, inst, max(1, inst.latency), writes))
            else:
                uops.append((_UOP_INT, inst, max(1, inst.latency), writes))
        return uops

    def simulate(
        self,
        block_trace: Iterable[Optional[BasicBlock]],
        memory_stream: Optional[Iterable[Tuple[str, int]]] = None,
    ) -> OOOResult:
        """Simulate a block trace (``None`` entries separate invocations).

        ``memory_stream`` supplies (opcode, address) pairs aligned with the
        loads/stores of the trace; when given together with a memory system,
        each access is charged its actual hierarchy latency.
        """
        cfg = self.config
        result = OOOResult()
        mem_iter: Optional[Iterator[Tuple[str, int]]] = (
            iter(memory_stream) if memory_stream is not None else None
        )

        finish: Dict[Value, float] = {}
        last_store_to: Dict[int, float] = {}
        last_store_any = 0.0

        rob: List[float] = []  # retire times of in-flight window (ring)
        rob_head = 0
        alloc_cycle = 0.0
        alloc_in_cycle = 0
        retire_times: List[float] = [0.0] * cfg.retire_width
        retire_idx = 0
        last_retire = 0.0

        alu_free = [0.0] * cfg.int_alus
        fpu_free = [0.0] * cfg.fp_units
        heapq.heapify(alu_free)
        heapq.heapify(fpu_free)

        uop_cache = self._uops
        fetch_width = cfg.fetch_width
        retire_width = cfg.retire_width
        rob_entries = cfg.rob_entries
        fast_memory = self.memory_system is None
        heappush = heapq.heappush
        heappop = heapq.heappop

        prev_block: Optional[BasicBlock] = None
        for block in block_trace:
            if block is None:
                prev_block = None
                continue
            uops = uop_cache.get(block)
            if uops is None:
                uops = self._decode(block)
                uop_cache[block] = uops
            for kind, inst, latency, writes in uops:
                if kind == _UOP_PHI:
                    # register rename: value forwards from the taken edge
                    result.phis += 1
                    if prev_block is not None:
                        src = inst.incoming_for(prev_block)
                        finish[inst] = finish.get(src, 0.0) if src is not None else 0.0
                    else:
                        finish[inst] = 0.0
                    continue

                # -- allocate (fetch/rename bandwidth + ROB occupancy) ------
                if alloc_in_cycle >= fetch_width:
                    alloc_cycle += 1
                    alloc_in_cycle = 0
                if len(rob) >= rob_entries:
                    oldest = rob[rob_head % rob_entries]
                    if oldest > alloc_cycle:
                        alloc_cycle = oldest
                        alloc_in_cycle = 0
                alloc_in_cycle += 1
                result.instructions += 1

                # -- operand readiness ---------------------------------------
                ready = alloc_cycle
                for op in inst.operands:
                    t = finish.get(op)
                    if t is not None and t > ready:
                        ready = t

                # -- issue / execute ------------------------------------------
                if kind == _UOP_INT:
                    unit = heappop(alu_free)
                    start = ready if ready > unit else unit
                    heappush(alu_free, start + 1)
                    result.int_ops += 1
                    done = start + latency
                elif kind == _UOP_FP:
                    unit = heappop(fpu_free)
                    start = ready if ready > unit else unit
                    heappush(fpu_free, start + 1)
                    result.fp_ops += 1
                    done = start + latency
                elif kind == _UOP_LOAD:
                    addr = self._next_mem(mem_iter, result)
                    if addr is not None:
                        dep = last_store_to.get(addr // 8, 0.0)
                        if dep > ready:
                            ready = dep
                    if not fast_memory or addr is None:
                        latency = self._mem_latency(addr, False, result)
                    done = ready + latency
                    result.loads += 1
                elif kind == _UOP_STORE:
                    addr = self._next_mem(mem_iter, result)
                    done = ready + latency
                    if not fast_memory:
                        self._mem_latency(addr, True, result)
                    if addr is not None:
                        last_store_to[addr // 8] = done
                        if done > last_store_any:
                            last_store_any = done
                    elif done > last_store_any:
                        last_store_any = done
                    result.stores += 1
                else:  # _UOP_BRANCH
                    done = ready + 1
                    result.branches += 1

                if writes:
                    finish[inst] = done

                # -- retire (in order, retire_width per cycle) -----------------
                width_slot = retire_times[retire_idx % retire_width]
                retire = max(done, last_retire, width_slot + 1)
                retire_times[retire_idx % retire_width] = retire
                retire_idx += 1
                last_retire = retire
                if len(rob) < rob_entries:
                    rob.append(retire)
                else:
                    rob[rob_head % rob_entries] = retire
                    rob_head += 1

            prev_block = block

        result.cycles = int(last_retire) if result.instructions else 0
        return result

    # -- helpers -----------------------------------------------------------------

    def _next_mem(self, mem_iter, result) -> Optional[int]:
        if mem_iter is None:
            return None
        try:
            _, addr = next(mem_iter)
            return addr
        except StopIteration:
            return None

    def _mem_latency(self, addr: Optional[int], is_write: bool, result: OOOResult) -> int:
        if self.memory_system is None or addr is None:
            return self.fixed_store_latency if is_write else self.fixed_load_latency
        res = self.memory_system.host_access(addr, is_write)
        if res.level == "l1":
            result.l1_hits += 1
        elif res.level == "l2":
            result.l2_hits += 1
        else:
            result.dram_accesses += 1
        return res.latency


# -- lane-batched replay (array kernels) -------------------------------------


#: minimum effective lane parallelism (total micro-ops / longest lane)
#: for the lockstep batch to beat the scalar loop; below it, numpy
#: per-step overhead exceeds the per-lane work it amortises.  Measured
#: on the 29-workload suite: at high rep counts the batch is 2.0–2.6×
#: for geometries with ≥ ~25 average active lanes and ≤ 1.2× below.
BATCH_MIN_EFFECTIVE_LANES = 25

#: minimum compile amortisation (total micro-ops / python-walked
#: micro-ops) for the batch to win.  Lane compilation walks
#: ``min(reps, 2)`` reps in Python at a per-uop cost comparable to the
#: scalar simulator's, so the batch only pays off when replication
#: covers most reps: measured break-even at ``reps = 4`` (amortisation
#: 2) and 2.0–2.6× at ``reps = 40`` (amortisation 20) on suite shapes.
BATCH_MIN_REP_AMORTISATION = 8


class _Lane:
    """One compiled trace: φ-free micro-op columns plus static census.

    In the fixed-latency regime (no memory system/stream) a φ never
    occupies a pipeline resource — it copies the finish time its taken
    edge's definition had *at that point in the trace*.  Both facts are
    static once the block sequence is known, so compilation resolves
    every operand (φs included, chained φs included) to the 1-based
    position of the last micro-op that wrote it before the consumer, or
    to slot 0 (the "never written" ground, finish time 0.0).  The
    batched replay then sees only real micro-ops: kind codes, latencies
    and operand source slots.

    Repetition folding: the trace is ``blocks × reps`` and every rep
    writes the same values, so from the second rep on each operand
    resolves either into its own rep or the one before — rep ``r ≥ 2``
    is rep 1 with every non-ground slot shifted by ``(r-1) × stride``.
    Only the first two reps are walked in Python; the rest replicate as
    column arithmetic.  That shift invariance is exactly what
    :func:`resolve_wraparound_slots` checks: back-edge φ chains whose
    dependency recedes two or more repetitions per instance are still
    *warming up* at rep 2 (their operands ground there but resolve to
    real slots later), so the caller routes such traces to the scalar
    walk instead of building a lane.
    """

    __slots__ = ("key", "kinds", "lats", "srcs", "n_real", "census")

    def __init__(self, key, model: "OOOModel", blocks, reps: int, np) -> None:
        self.key = key
        uop_cache = model._uops
        kinds: List[int] = []
        lats: List[int] = []
        srcs: List[Tuple[int, ...]] = []
        slot_of: Dict[Value, int] = {}
        counts = [0] * 6
        prev_block: Optional[BasicBlock] = None
        walked = min(reps, 2)
        for _ in range(walked):
            for block in blocks:
                uops = uop_cache.get(block)
                if uops is None:
                    uops = model._decode(block)
                    uop_cache[block] = uops
                for kind, inst, latency, writes in uops:
                    if kind == _UOP_PHI:
                        counts[_UOP_PHI] += 1
                        if prev_block is not None:
                            src = inst.incoming_for(prev_block)
                            slot_of[inst] = (
                                slot_of.get(src, 0) if src is not None else 0
                            )
                        else:
                            slot_of[inst] = 0
                        continue
                    counts[kind] += 1
                    kinds.append(kind)
                    lats.append(latency)
                    srcs.append(
                        tuple(slot_of.get(op, 0) for op in inst.operands)
                    )
                    if writes:
                        slot_of[inst] = len(kinds)  # 1-based finish slot
                prev_block = block
        from .array_kernels import ragged_to_matrix

        n_walked = len(kinds)
        width = max(map(len, srcs), default=0)
        kind_cols = np.asarray(kinds, dtype=np.int8)
        lat_cols = np.asarray(lats, dtype=np.float64)
        src_cols = ragged_to_matrix(srcs, np)
        if reps > walked:
            # replicate rep 1 for reps 2..reps-1, shifting real slots
            stride = n_walked // 2
            extra = reps - walked
            k1 = kind_cols[stride:]
            l1 = lat_cols[stride:]
            s1 = src_cols[stride:]
            shifts = stride * np.arange(1, extra + 1, dtype=np.int64)
            shifted = np.where(
                s1[None, :, :] > 0,
                s1[None, :, :] + shifts[:, None, None],
                0,
            ).reshape(extra * stride, width)
            kind_cols = np.concatenate([kind_cols, np.tile(k1, extra)])
            lat_cols = np.concatenate([lat_cols, np.tile(l1, extra)])
            src_cols = np.concatenate([src_cols, shifted])
            # reps are structurally identical, so the walked census scales
            counts = [c // walked * reps for c in counts]
        self.kinds = kind_cols
        self.lats = lat_cols
        self.srcs = src_cols
        self.n_real = len(kind_cols)
        census = OOOResult(
            instructions=self.n_real,
            int_ops=counts[_UOP_INT],
            fp_ops=counts[_UOP_FP],
            loads=counts[_UOP_LOAD],
            stores=counts[_UOP_STORE],
            branches=counts[_UOP_BRANCH],
            phis=counts[_UOP_PHI],
        )
        self.census = census


def _batch_geometry(traces) -> Tuple[int, int, int]:
    """(total, longest, python-walked) micro-op counts of the traces."""
    total = longest = walked = 0
    for _key, blocks, reps in traces:
        per_rep = sum(len(block.instructions) for block in blocks)
        n = reps * per_rep
        total += n
        walked += min(reps, 2) * per_rep
        longest = max(longest, n)
    return total, longest, walked


def _path_records(model: OOOModel, block: BasicBlock):
    """Walk records of one block: ``(records, φ slots, real-uop count)``.

    Records are ``(kind, inst, latency, writes, ops)`` for real micro-ops
    — ``ops`` pre-filtered to Instruction operands, deduplicated — and
    ``(kind, inst, None)`` placeholders for φs, whose source depends on
    the path position and is bound by the caller.  Memoized per model,
    like the decode cache it is derived from.
    """
    cache = model.__dict__.setdefault("_path_records_cache", {})
    entry = cache.get(block)
    if entry is None:
        uops = model._uops.get(block)
        if uops is None:
            uops = model._decode(block)
            model._uops[block] = uops
        recs = []
        phi_slots = []
        n_real = 0
        for kind, inst, latency, writes in uops:
            if kind == _UOP_PHI:
                phi_slots.append((len(recs), inst))
                recs.append((_UOP_PHI, inst, None))
            else:
                ops = tuple(dict.fromkeys(
                    op for op in inst.operands if isinstance(op, Instruction)
                ))
                recs.append((kind, inst, latency, writes, ops))
                n_real += 1
        entry = (recs, phi_slots, n_real)
        cache[block] = entry
    return entry


def resolved_path_steps(
    model: OOOModel, blocks
) -> Tuple[List[tuple], List[tuple], int]:
    """Bind one repetition of ``blocks`` into per-position walk records.

    Returns ``(steps_first, steps_wrap, real_per_rep)``.  Both step lists
    hold one record per micro-op position: real micro-ops as ``(kind,
    inst, latency, writes, ops)`` with operands pre-filtered to
    Instruction values (see :func:`_path_records`), φs as ``(_UOP_PHI,
    inst, src)`` with the source bound for this path position —
    ``steps_first`` resolves the first block's φs as path entry (no
    predecessor, ground), ``steps_wrap`` as the wraparound from the last
    block, which is what every repetition after the first sees.  Shared
    by the scalar steady-state walk (:func:`simulate_path_reps`) and the
    columnar path compiler (:mod:`repro.sim.ooo_columns`), so both tiers
    replay exactly the same resolved micro-op stream.
    """
    blocks = tuple(blocks)
    per_block = []  # (records-with-φ-placeholders, φ slots, real count)
    real_per_rep = 0
    for block in blocks:
        entry = _path_records(model, block)
        per_block.append(entry)
        real_per_rep += entry[2]

    def resolve(recs, phi_slots, prev):
        """Per-position copy of a block's records with φ sources bound."""
        if not phi_slots:
            return recs
        out = list(recs)
        for idx, inst in phi_slots:
            src = inst.incoming_for(prev) if prev is not None else None
            if not isinstance(src, Instruction):
                src = None  # non-Instruction sources always miss: ground
            out[idx] = (_UOP_PHI, inst, src)
        return out

    steps_wrap: List[tuple] = []
    for i, block in enumerate(blocks):
        recs, phi_slots, _ = per_block[i]
        steps_wrap.extend(
            resolve(recs, phi_slots, blocks[i - 1] if i else blocks[-1])
        )
    recs0, phi_slots0, _ = per_block[0]
    if phi_slots0:
        steps_first = (
            resolve(recs0, phi_slots0, None) + steps_wrap[len(recs0):]
        )
    else:
        steps_first = steps_wrap
    return steps_first, steps_wrap, real_per_rep


class _WindowEscape(Exception):
    """A resolved operand reaches past the two-repetition slot window."""


def resolve_wraparound_slots(model: OOOModel, blocks):
    """Exact two-repetition operand slots for one wraparound repetition.

    Returns one slot tuple per real micro-op position — ``0`` the
    never-written ground, ``1..stride`` the previous repetition's real
    micro-op (1-based), ``stride+1..2·stride`` the current
    repetition's — or ``None`` when the path cannot be expressed in
    that window.  The subtlety is φ resolution: the per-event walk
    resolves φs *sequentially*, so a φ reading a φ defined at or after
    it in path order sees that φ's **previous-repetition** value, and
    chained back-edge φs recede one repetition per hop.  A chain that
    bottoms out two or more repetitions back has no slot here —
    compiled tiers must replay such paths with the scalar walk, which
    carries the finish map explicitly.  Pure-φ cycles ground (their
    values recede to the trace head, where every φ reads 0.0), and a
    path revisiting a block is declined outright (definition positions
    are ambiguous).
    """
    blocks = tuple(blocks)
    _first, steps_wrap, stride = resolved_path_steps(model, blocks)
    # definition geometry: path-order ordinal of every defined value,
    # 1-based real-uop positions, each φ's bound wraparound source
    ordinal: Dict[Value, int] = {}
    real_pos: Dict[Value, int] = {}
    phi_src: Dict[Value, Optional[Instruction]] = {}
    pos = 0
    for o, rec in enumerate(steps_wrap):
        if rec[0] == _UOP_PHI:
            inst = rec[1]
            if inst in ordinal:
                return None  # revisited block
            ordinal[inst] = o
            phi_src[inst] = rec[2]
        else:
            pos += 1
            if rec[3]:  # writes
                inst = rec[1]
                if inst in ordinal:
                    return None
                ordinal[inst] = o
                real_pos[inst] = pos

    phi_slot: Dict[Value, int] = {}  # φ value slot, own-instance coords
    chasing: set = set()

    def value_slot(inst, at_ord: int) -> int:
        """Slot of ``inst``'s value as visible to a reader at ``at_ord``."""
        o_def = ordinal.get(inst)
        if o_def is None:
            return 0  # defined outside the path: ground
        p = real_pos.get(inst)
        if p is not None:
            # defined earlier in path order: this repetition's instance;
            # otherwise the previous one (use before def via the back edge)
            return stride + p if o_def < at_ord else p
        slot = phi_slot.get(inst)
        if slot is None:
            if inst in chasing:
                return 0  # pure-φ cycle: grounds at the trace head
            src = phi_src[inst]
            if src is None:
                slot = 0
            else:
                chasing.add(inst)
                slot = value_slot(src, o_def)
                chasing.discard(inst)
            phi_slot[inst] = slot
        if o_def < at_ord:
            return slot
        # the previous repetition's instance of this φ: one more rep back
        if slot == 0:
            return 0
        if slot <= stride:
            raise _WindowEscape  # two or more repetitions back
        return slot - stride

    rows = []
    append = rows.append
    try:
        for o, rec in enumerate(steps_wrap):
            if rec[0] == _UOP_PHI:
                continue
            ops = rec[4]
            append(tuple([value_slot(op, o) for op in ops]) if ops else ())
    except _WindowEscape:
        return None
    return rows


def simulate_path_reps(model: OOOModel, blocks, reps: int) -> OOOResult:
    """``model.simulate(list(blocks) × reps)`` with steady-state closure.

    In the fixed-latency regime every quantity the replay computes is an
    integer carried in a float (latencies are ints, allocation and
    retirement advance by +1, everything else is max), and the update
    rules are invariant under shifting all times by a constant.  So once
    the machine state at the end of rep ``r+1`` equals the state at the
    end of rep ``r`` shifted by ``d = Δ last_retire`` — same fetch-slot
    phase, same relative ROB/retire rings, same relative functional-unit
    heaps, same relative finish times — every later rep repeats the same
    schedule shifted by another ``d``, *exactly*.  The remaining reps
    then close in O(1): integer census fields scale by reps, and the
    final retire time extends by ``remaining × d`` with no float drift
    (all values stay integral, so the additions are exact).

    State comparison details that keep this bit-identical:

    * the ALU/FPU pools are compared as heap *arrays*, not multisets —
      tie-breaking on equal free times depends on heap layout;
    * the ROB ring is compared aligned to its head; while it is still
      filling it is only ignorable when it can never fill (total
      micro-ops ≤ rob_entries), otherwise the reps stay explicit until
      the ring is full at two consecutive rep boundaries;
    * the retire ring is compared aligned to the retire index, and the
      fetch-slot phase (``alloc_in_cycle``) absolutely.

    When no periodic boundary appears the loop just runs all ``reps``
    explicitly — which *is* the oracle computation, so the fallback is
    trivially exact.
    """
    if model.memory_system is not None:
        raise ValueError("simulate_path_reps requires a fixed-latency model")
    blocks = tuple(blocks)
    if not blocks:
        return model.simulate(list(blocks) * reps)

    cfg = model.config
    result = OOOResult()
    finish: Dict[Value, float] = {}
    rob: List[float] = []
    rob_head = 0
    alloc_cycle = 0.0
    alloc_in_cycle = 0
    retire_times: List[float] = [0.0] * cfg.retire_width
    retire_idx = 0
    last_retire = 0.0
    alu_free = [0.0] * cfg.int_alus
    fpu_free = [0.0] * cfg.fp_units
    heapq.heapify(alu_free)
    heapq.heapify(fpu_free)

    fetch_width = cfg.fetch_width
    retire_width = cfg.retire_width
    rob_entries = cfg.rob_entries
    heappush = heapq.heappush
    heappop = heapq.heappop

    # -- compile the path into walk records ----------------------------------
    # Real micro-ops carry their operand list pre-filtered to Instruction
    # operands: the finish dict is only ever keyed by Instructions, so
    # constants/arguments/globals can never hit — and Constant's
    # value-based __hash__ is the single hottest call in the plain walk.
    # φ records carry their source pre-resolved for this path position
    # (``None`` ⇒ ground, finish time 0.0).  Both rewrites change no
    # lookup's outcome, only skip lookups that always miss.
    steps_first, steps_wrap, real_per_rep = resolved_path_steps(model, blocks)
    rob_can_fill = reps * real_per_rep > rob_entries

    stale = float("-inf")

    def snapshot():
        """Rep-boundary machine state, shifted so it is rep-invariant.

        Times are recorded relative to ``last_retire`` so two boundaries
        of identical shape compare equal.  Values at or below the current
        ``alloc_cycle`` are canonicalised to a ``-inf`` sentinel: every
        future use is a max against a quantity ≥ the (monotone)
        allocation cycle, so such values are semantically dead — without
        the clamp a φ grounded outside the path (absolute 0.0 forever)
        or an idle functional unit would drift relative to
        ``last_retire`` and mask real periodicity.  The unit pools
        compare as sorted multisets: a binary heap pops the minimum, so
        its observable behaviour depends only on the value multiset.
        """
        if rob_can_fill:
            if len(rob) < rob_entries:
                return None  # ring still filling: boundary not comparable
            rob_view = tuple(
                rob[(rob_head + i) % rob_entries] - last_retire
                if rob[(rob_head + i) % rob_entries] > alloc_cycle
                else stale
                for i in range(rob_entries)
            )
        else:
            rob_view = ()  # ring can never fill, so it is never read
        return (
            alloc_in_cycle,
            alloc_cycle - last_retire,
            tuple(sorted(
                x - last_retire if x > alloc_cycle else stale
                for x in alu_free
            )),
            tuple(sorted(
                x - last_retire if x > alloc_cycle else stale
                for x in fpu_free
            )),
            tuple(
                # a slot only matters while slot + 1 can exceed a future
                # (monotone) last_retire, i.e. while slot == last_retire
                retire_times[(retire_idx + i) % retire_width] - last_retire
                if retire_times[(retire_idx + i) % retire_width]
                >= last_retire
                else stale
                for i in range(retire_width)
            ),
            rob_view,
            {
                k: (v - last_retire if v > alloc_cycle else stale)
                for k, v in finish.items()
            },
        )

    prev_snap = None
    prev_retire = 0.0
    for rep in range(reps):
        for rec in steps_first if rep == 0 else steps_wrap:
            kind = rec[0]
            if kind == _UOP_PHI:
                result.phis += 1
                src = rec[2]
                finish[rec[1]] = finish.get(src, 0.0) if src is not None else 0.0
                continue
            _, inst, latency, writes, ops = rec

            if alloc_in_cycle >= fetch_width:
                alloc_cycle += 1
                alloc_in_cycle = 0
            if len(rob) >= rob_entries:
                oldest = rob[rob_head % rob_entries]
                if oldest > alloc_cycle:
                    alloc_cycle = oldest
                    alloc_in_cycle = 0
            alloc_in_cycle += 1
            result.instructions += 1

            ready = alloc_cycle
            for op in ops:
                t = finish.get(op)
                if t is not None and t > ready:
                    ready = t

            if kind == _UOP_INT:
                unit = heappop(alu_free)
                start = ready if ready > unit else unit
                heappush(alu_free, start + 1)
                result.int_ops += 1
                done = start + latency
            elif kind == _UOP_FP:
                unit = heappop(fpu_free)
                start = ready if ready > unit else unit
                heappush(fpu_free, start + 1)
                result.fp_ops += 1
                done = start + latency
            elif kind == _UOP_LOAD:
                done = ready + latency
                result.loads += 1
            elif kind == _UOP_STORE:
                done = ready + latency
                result.stores += 1
            else:  # _UOP_BRANCH
                done = ready + 1
                result.branches += 1

            if writes:
                finish[inst] = done

            width_slot = retire_times[retire_idx % retire_width]
            retire = max(done, last_retire, width_slot + 1)
            retire_times[retire_idx % retire_width] = retire
            retire_idx += 1
            last_retire = retire
            if len(rob) < rob_entries:
                rob.append(retire)
            else:
                rob[rob_head % rob_entries] = retire
                rob_head += 1

        if rep + 1 == reps:
            break  # no reps left to extrapolate; snapshot would be wasted
        if reps < 3:
            continue  # a snapshot could never be compared before the end
        snap = snapshot()
        if snap is not None and snap == prev_snap:
            explicit = rep + 1
            remaining = reps - explicit
            d = last_retire - prev_retire
            for name in vars(result):
                per_rep = getattr(result, name) // explicit
                setattr(
                    result, name, getattr(result, name) + remaining * per_rep
                )
            result.cycles = (
                int(last_retire + remaining * d) if result.instructions else 0
            )
            return result
        prev_snap = snap
        prev_retire = last_retire

    result.cycles = int(last_retire) if result.instructions else 0
    return result


def simulate_paths_batch(
    model: OOOModel, traces, gate: bool = True
) -> Dict[object, OOOResult]:
    """Replay many repeated block traces through the OOO model in lockstep.

    ``traces`` is an iterable of ``(key, blocks, reps)``; the result maps
    each key to the :class:`OOOResult` that ``model.simulate(blocks ×
    reps)`` returns.  Valid only for fixed-latency models (no memory
    system) — exactly the regime
    :meth:`~repro.sim.offload.OffloadSimulator.path_costs` runs in.

    With numpy and favourable geometry (many lanes relative to the
    longest lane, :data:`BATCH_MIN_EFFECTIVE_LANES`, *and* rep counts
    high enough that column replication amortises lane compilation,
    :data:`BATCH_MIN_REP_AMORTISATION`), lanes advance one
    micro-op per step with the machine state held as per-lane columns;
    lanes are sorted longest first so the active set is always a
    shrinking array prefix.  Because every active lane allocates exactly
    one micro-op per step, the ROB ring head and the retire-ring slot
    are *scalar* column indices, and the ALU/FPU pools update as
    argmin-replace — which preserves the free-time multiset the scalar
    heaps maintain (only the minimum is ever observable), so every
    max/+ float is IEEE-identical to the scalar loop.  Otherwise the
    scalar loop — already the per-event oracle — runs per lane.

    ``gate=False`` skips the geometry gate (the caller — normally the
    memoized tier selector in :mod:`repro.sim.ooo_columns` — has already
    decided this tier applies); the numpy-availability fallback remains.
    """
    if model.memory_system is not None:
        raise ValueError("simulate_paths_batch requires a fixed-latency model")
    from .array_kernels import get_numpy

    np = get_numpy()
    traces = list(traces)

    def scalar() -> Dict[object, OOOResult]:
        # the per-lane scalar tier still beats plain repetition: the
        # steady-state closure skips every rep after the schedule
        # becomes periodic
        return {
            key: simulate_path_reps(model, blocks, reps)
            for key, blocks, reps in traces
        }

    if np is None or not traces:
        return scalar()
    if gate:
        total_uops, longest, walked_uops = _batch_geometry(traces)
        if (
            longest == 0
            or total_uops // longest < BATCH_MIN_EFFECTIVE_LANES
            or total_uops // max(1, walked_uops) < BATCH_MIN_REP_AMORTISATION
        ):
            return scalar()

    cfg = model.config
    out: Dict[object, OOOResult] = {}
    lanes = []
    for key, blocks, reps in traces:
        if resolve_wraparound_slots(model, blocks) is None:
            # deep back-edge φ chain (or revisited block): the rep
            # replication below assumes every operand resolves within
            # one repetition back, which such paths violate — the
            # scalar walk carries the finish map explicitly instead
            out[key] = simulate_path_reps(model, blocks, reps)
        else:
            lanes.append(_Lane(key, model, blocks, reps, np))
    active = []
    for lane in lanes:
        if lane.n_real:
            active.append(lane)
        else:
            out[lane.key] = lane.census
    if not active:
        return out
    active.sort(key=lambda lane: lane.n_real, reverse=True)

    P = len(active)
    K = active[0].n_real
    M = max(lane.srcs.shape[1] for lane in active)
    KIND = np.zeros((P, K), dtype=np.int8)
    LAT = np.zeros((P, K), dtype=np.float64)
    SRC = np.zeros((P, K, M), dtype=np.int64)
    lens = np.empty(P, dtype=np.int64)
    for i, lane in enumerate(active):
        n = lane.n_real
        lens[i] = n
        KIND[i, :n] = lane.kinds
        LAT[i, :n] = lane.lats
        if lane.srcs.shape[1]:
            SRC[i, :n, : lane.srcs.shape[1]] = lane.srcs
    # bake each lane's row offset into its source slots: operand gathers
    # against the flattened finish matrix become single take() calls
    SRC += (np.arange(P) * (K + 1))[:, None, None]
    IS_INT = KIND == _UOP_INT
    IS_FP = KIND == _UOP_FP
    ANY_INT = IS_INT.any(axis=0)
    ANY_FP = IS_FP.any(axis=0)

    fetch_width = cfg.fetch_width
    retire_width = cfg.retire_width
    rob_entries = cfg.rob_entries
    rows = np.arange(P)
    alloc_cycle = np.zeros(P)
    alloc_in = np.zeros(P, dtype=np.int64)
    rob = np.zeros((P, rob_entries))
    retire_ring = np.zeros((P, retire_width))
    last_retire = np.zeros(P)
    alu_free = np.zeros((P, cfg.int_alus))
    fpu_free = np.zeros((P, cfg.fp_units))
    finish = np.zeros((P, K + 1))
    flat_finish = finish.reshape(-1)

    # lanes are length-sorted, so the lanes still running at step k are
    # exactly the first active_at[k] rows — every state slice is a view
    active_at = np.searchsorted(-lens, -np.arange(K), side="left")
    maximum = np.maximum
    where = np.where
    for k in range(K):
        j = int(active_at[k])
        r = rows[:j]
        ac = alloc_cycle[:j]
        ai = alloc_in[:j]

        # -- allocate (fetch bandwidth, then ROB occupancy) ----------------
        over = ai >= fetch_width
        ac += over
        ai *= ~over
        rob_col = k % rob_entries  # insert slot; == ring head once full
        if k >= rob_entries:
            oldest = rob[:j, rob_col]
            bump = oldest > ac
            np.copyto(ac, oldest, where=bump)
            ai *= ~bump
        ai += 1

        # -- operand readiness --------------------------------------------
        ready = ac.copy()
        src = SRC[:j, k]
        for m in range(M):
            maximum(ready, flat_finish.take(src[:, m]), out=ready)

        # -- issue / execute ----------------------------------------------
        start = ready
        if ANY_INT[k]:
            is_int = IS_INT[:j, k]
            ia = alu_free[:j].argmin(axis=1)
            iu = alu_free[r, ia]
            int_start = maximum(ready, iu)
            alu_free[r, ia] = where(is_int, int_start + 1, iu)
            start = where(is_int, int_start, start)
        if ANY_FP[k]:
            is_fp = IS_FP[:j, k]
            fa = fpu_free[:j].argmin(axis=1)
            fu = fpu_free[r, fa]
            fp_start = maximum(ready, fu)
            fpu_free[r, fa] = where(is_fp, fp_start + 1, fu)
            start = where(is_fp, fp_start, start)
        done = start + LAT[:j, k]
        finish[:j, k + 1] = done

        # -- retire (in order, retire_width per cycle) ---------------------
        ring_col = k % retire_width
        retire = maximum(
            maximum(done, last_retire[:j]), retire_ring[:j, ring_col] + 1
        )
        retire_ring[:j, ring_col] = retire
        last_retire[:j] = retire
        rob[:j, rob_col] = retire

    for i, lane in enumerate(active):
        lane.census.cycles = int(last_retire[i])
        out[lane.key] = lane.census
    return out
