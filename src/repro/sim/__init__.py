"""Cycle and energy simulation: OOO host model, cache hierarchy with MESI
coherence, CGRA offload execution, and the Table V system configuration."""

from .config import (
    CGRAConfig,
    CacheConfig,
    DEFAULT_CONFIG,
    EnergyConfig,
    HostConfig,
    MemoryHierarchyConfig,
    OffloadConfig,
    SystemConfig,
)
from .cache import (
    AccessResult,
    BankedL2,
    Cache,
    CacheStats,
    MemorySystem,
    StreamProfile,
)
from .coherence import (
    CoherenceActions,
    CoherenceError,
    EXCLUSIVE,
    INVALID,
    MESIDirectory,
    MODIFIED,
    SHARED,
)
from .core_ooo import OOOModel, OOOResult
from .energy import EnergyBreakdown, EnergyModel
from .offload import OffloadOutcome, OffloadSimulator, PathCost

__all__ = [
    "AccessResult",
    "BankedL2",
    "CGRAConfig",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "CoherenceActions",
    "CoherenceError",
    "DEFAULT_CONFIG",
    "EXCLUSIVE",
    "EnergyBreakdown",
    "EnergyConfig",
    "EnergyModel",
    "HostConfig",
    "INVALID",
    "MemoryHierarchyConfig",
    "MemorySystem",
    "MESIDirectory",
    "MODIFIED",
    "OffloadConfig",
    "OffloadOutcome",
    "OffloadSimulator",
    "OOOModel",
    "OOOResult",
    "PathCost",
    "SHARED",
    "StreamProfile",
    "SystemConfig",
]
