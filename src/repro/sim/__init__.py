"""Cycle and energy simulation: OOO host model, cache hierarchy with MESI
coherence, CGRA offload execution, and the Table V system configuration."""

from .config import (
    CGRAConfig,
    CacheConfig,
    DEFAULT_CONFIG,
    EnergyConfig,
    HostConfig,
    MemoryHierarchyConfig,
    OffloadConfig,
    SystemConfig,
)
from .cache import (
    AccessResult,
    BankedL2,
    Cache,
    CacheStats,
    MemorySystem,
    StreamProfile,
    profile_stream_dual,
)
from .coherence import (
    CoherenceActions,
    CoherenceError,
    EXCLUSIVE,
    INVALID,
    MESIDirectory,
    MODIFIED,
    SHARED,
)
from .core_ooo import OOOModel, OOOResult
from .energy import EnergyBreakdown, EnergyModel
from .memo import Calibration, SimulationMemo, content_key
from .offload import OffloadOutcome, OffloadSimulator, PathCost
from .trace_kernels import (
    ChargeCensus,
    KERNEL_MODES,
    KERNELS_EVENTS,
    KERNELS_RLE,
    RLETrace,
    census_from_events,
    census_from_segments,
    run_length_encode,
)

__all__ = [
    "AccessResult",
    "BankedL2",
    "CGRAConfig",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "Calibration",
    "ChargeCensus",
    "CoherenceActions",
    "CoherenceError",
    "DEFAULT_CONFIG",
    "EXCLUSIVE",
    "EnergyBreakdown",
    "EnergyConfig",
    "EnergyModel",
    "HostConfig",
    "INVALID",
    "KERNEL_MODES",
    "KERNELS_EVENTS",
    "KERNELS_RLE",
    "MemoryHierarchyConfig",
    "MemorySystem",
    "MESIDirectory",
    "MODIFIED",
    "OffloadConfig",
    "OffloadOutcome",
    "OffloadSimulator",
    "OOOModel",
    "OOOResult",
    "PathCost",
    "RLETrace",
    "SHARED",
    "SimulationMemo",
    "StreamProfile",
    "SystemConfig",
    "census_from_events",
    "census_from_segments",
    "content_key",
    "profile_stream_dual",
    "run_length_encode",
]
