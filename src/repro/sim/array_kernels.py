"""Columnar (array-backed) trace kernels (perf layer 4).

The RLE kernels of :mod:`repro.sim.trace_kernels` already fold the trace
run by run; this module goes one representation further and treats the
run list as *parallel integer columns* (path ids, run lengths), so the
charge census and the predictor accuracy census become a handful of
whole-column operations instead of a Python-level loop over runs.

numpy is the preferred backend but strictly optional: every kernel has a
pure-Python batched fallback that is selected automatically when numpy
is not importable (or when :data:`FORCE_PYTHON_ENV` is set, which is how
the kernel-equality tests and the no-numpy CI job pin the fallback on a
machine that *does* have numpy).  Both backends reduce to the same
integer censuses as the event-by-event reference, so bit-identity of the
downstream float fold is preserved by construction — the same contract
the RLE kernels established.

Backend selection is observable: :func:`backend_name` feeds the
``sim.kernel_mode`` gauge so every run records which kernel tier and
backend produced it.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Set, Tuple

from .trace_kernels import ChargeCensus, census_from_segments

try:  # numpy is an optional accelerator, never a requirement
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _numpy = None

#: environment switch forcing the pure-Python batched fallback even when
#: numpy is importable (set to anything but ""/"0")
FORCE_PYTHON_ENV = "REPRO_PURE_PYTHON_KERNELS"

#: backend label values for the ``sim.kernel_mode`` gauge
BACKEND_NUMPY = "numpy"
BACKEND_PYTHON = "python"


def get_numpy():
    """The numpy module, or ``None`` when absent or explicitly disabled."""
    if os.environ.get(FORCE_PYTHON_ENV, "") not in ("", "0"):
        return None
    return _numpy


def backend_name() -> str:
    """Which backend the array kernels would use right now."""
    return BACKEND_NUMPY if get_numpy() is not None else BACKEND_PYTHON


def runs_to_columns(runs: Iterable[Tuple[int, int]]):
    """(pids, lengths) int64 columns of an RLE run list, or ``None``
    when the pure-Python backend is active (columns buy nothing there).
    """
    np = get_numpy()
    if np is None:
        return None
    runs = tuple(runs)
    n = len(runs)
    flat = np.fromiter(
        (x for run in runs for x in run), dtype=np.int64, count=2 * n
    )
    cols = flat.reshape(n, 2)
    return cols[:, 0], cols[:, 1]


def ragged_to_matrix(rows, np, dtype=None):
    """Pad ragged integer rows into a dense zero-filled 2-D array.

    The shared substrate of the lane-batched OOO tiers: operand source
    slots per micro-op position have varying fan-in, and both the
    lockstep batch (:class:`repro.sim.core_ooo._Lane`) and the columnar
    path programs (:mod:`repro.sim.ooo_columns`) pad them to a dense
    ``rows × max-fan-in`` matrix whose zero padding is the ground slot.
    """
    rows = list(rows)
    width = max(map(len, rows), default=0)
    out = np.zeros((len(rows), width), dtype=dtype or np.int64)
    for i, row in enumerate(rows):
        if row:
            out[i, : len(row)] = row
    return out


def _targets_column(targets: Set[int], np):
    if not targets:
        return np.empty(0, dtype=np.int64)
    return np.fromiter(targets, dtype=np.int64, count=len(targets))


def census_from_segments_array(
    segments: Iterable[Tuple[int, bool, int]],
    targets: Set[int],
    pipelined: bool,
    columns=None,
) -> ChargeCensus:
    """Array kernel: fold (pid, invoke, length) segments as columns.

    Identical census to :func:`~repro.sim.trace_kernels.
    census_from_segments` (property-tested): the one-bit ``in_run`` state
    that crosses segment boundaries is just the previous segment's
    success flag, so it vectorizes as a shifted column.  Empty or
    zero-length segment lists short-circuit before any column is built —
    array kernels never index into empty columns.

    ``columns``, when given, is the segment list already in parallel
    (pids, invoke, lengths) form — arrays or plain lists — as produced
    by the predictor replay kernels (``segment_columns``).  Passing it
    skips the per-segment conversion loop, which otherwise costs as much
    as the fold itself; ``segments`` is still consulted by the
    pure-Python backend.
    """
    np = get_numpy()
    if np is None:
        # the segment fold *is* the batched pure-Python form: O(#segments)
        # closed-form increments, no per-event work
        return census_from_segments(segments, targets, pipelined)
    if columns is not None:
        pids = np.asarray(columns[0], dtype=np.int64)
        invoked = np.asarray(columns[1], dtype=bool)
        lens = np.asarray(columns[2], dtype=np.int64)
        if len(lens) == 0:
            return ChargeCensus()
        keep = lens > 0
        if not bool(keep.all()):
            pids, invoked, lens = pids[keep], invoked[keep], lens[keep]
            if len(lens) == 0:
                return ChargeCensus()
        n = len(lens)
    else:
        segs = [s for s in segments if s[2] > 0]
        if not segs:
            return ChargeCensus()
        n = len(segs)
        flat = np.fromiter(
            (x for s in segs for x in (s[0], 1 if s[1] else 0, s[2])),
            dtype=np.int64,
            count=3 * n,
        ).reshape(n, 3)
        pids = flat[:, 0]
        invoked = flat[:, 1].astype(bool)
        lens = flat[:, 2]

    offloadable = np.isin(pids, _targets_column(targets, np))
    success = invoked & offloadable
    failure = invoked & ~offloadable
    declined = ~invoked
    # in_run before segment i == success of segment i-1 (False before 0)
    prev_success = np.empty(n, dtype=bool)
    prev_success[0] = False
    prev_success[1:] = success[:-1]

    run_starts = np.zeros(n, dtype=np.int64)
    pipelined_col = np.zeros(n, dtype=np.int64)
    if pipelined:
        starts = success & ~prev_success
        run_starts[starts] = 1
        pipelined_col[success] = lens[success]
        pipelined_col[starts] -= 1
    else:
        run_starts[success] = lens[success]
    failures_col = np.where(failure, lens, 0)
    host_col = np.where(declined, lens, 0)

    census = ChargeCensus()
    for table, col in (
        (census.run_starts, run_starts),
        (census.pipelined, pipelined_col),
        (census.failures, failures_col),
        (census.host, host_col),
    ):
        charged = col != 0
        if not charged.any():
            continue
        charged_pids = pids[charged]
        unique_pids, inverse = np.unique(charged_pids, return_inverse=True)
        sums = np.zeros(len(unique_pids), dtype=np.int64)
        np.add.at(sums, inverse, col[charged])
        for pid, total in zip(unique_pids.tolist(), sums.tolist()):
            table[pid] = total
    return census


__all__ = [
    "BACKEND_NUMPY",
    "BACKEND_PYTHON",
    "FORCE_PYTHON_ENV",
    "backend_name",
    "census_from_segments_array",
    "get_numpy",
    "ragged_to_matrix",
    "runs_to_columns",
]
