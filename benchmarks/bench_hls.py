"""§VI HLS — Cyclone V synthesis feasibility of the Braid frames.

Paper: all but four workloads use < 20% of the ~85K ALMs; lbm peaks at 72%
(double precision); ModelSim power is 5-60mW for most, with namd 80mW,
lbm 175mW and swaptions 305mW at the top.
"""

from repro.reporting import format_table

from .conftest import save_result


def _compute(evaluations):
    rows = []
    for ev in evaluations:
        r = ev.hls
        rows.append(
            (ev.name, r.ops, r.alms, r.alm_fraction, r.total_power_mw)
        )
    return rows


def test_hls_area_and_power(benchmark, evaluations):
    rows = benchmark.pedantic(
        _compute, args=(evaluations,), rounds=1, iterations=1
    )
    table = format_table(
        ["workload", "frame ops", "ALMs", "ALM %", "power mW"],
        [(n, o, a, f * 100, p) for n, o, a, f, p in rows],
        title="HLS feasibility on Cyclone V (braid frames)",
    )
    save_result("hls", table)

    by_name = {r[0]: r for r in rows}
    fractions = {n: f for n, _, _, f, _ in rows}
    powers = {n: p for n, _, _, _, p in rows}

    # most workloads fit comfortably (paper: <20% for all but four)
    small = sum(1 for f in fractions.values() if f < 0.25)
    assert small >= 20
    # lbm is the area outlier thanks to double precision
    assert fractions["470.lbm"] == max(fractions.values())
    assert fractions["470.lbm"] > 0.5
    # the power ordering of the paper's three outliers holds
    assert powers["swaptions"] > powers["470.lbm"] * 0.8
    assert powers["470.lbm"] > powers["444.namd"] * 0.9
    assert powers["444.namd"] > 30
    # most of the suite sits in the paper's 5-60mW band
    in_band = sum(1 for p in powers.values() if 4 <= p <= 70)
    assert in_band >= 18
