"""Array-kernel speedups — the ``--trace-kernels array`` tier (layers 4+6).

Three protocols, all identity-checked against the slower tiers before a
single number is recorded (a perf figure must never come from a kernel
that diverged):

* **named kernels** — exactly the loops the array tier vectorizes: the
  dual-port memory-profiling replay (calibration), the predictor replay
  (oracle closed form + inlined history fold), and the charge-census
  segment fold, timed per workload as one pass under the RLE tier vs the
  array tier.  The suite median is recorded as ``array_speedup`` and
  gated at >= 5x.
* **cold single-workload simulation** — the full per-workload simulate
  stage (calibration + OOO path costs + RLE + replay + census), timed
  under all three kernel modes.  ``simulation_speedup`` keeps the
  historical RLE-vs-array protocol; ``simulation_speedup_vs_events``
  compares against the per-event tier the paper's tooling corresponds
  to.  Both are medians over the suite and Amdahl-limited by whatever
  the array tier has *not* vectorized — ``docs/performance.md`` has the
  decomposition.
* **OOO walk decomposition** (perf layer 6) — the path-cost inner loop
  in isolation: the per-event walk (``model.simulate`` on the decoded
  plan, what the events/RLE tiers run), the one-off columnar compile
  (cold, per fresh model), and the warm compiled walk (programs served
  from a :class:`~repro.sim.SimulationMemo`, the production shape — the
  three offload strategies share one memo, so compile is paid once).
  ``ooo_walk_speedup`` is the suite median of per-event walk over warm
  compiled walk, gated at >= 3x; the compile cost is reported
  separately as ``ooo_compile_seconds`` so the amortisation story stays
  visible instead of being folded into either side.

Timing hygiene: the garbage collector is disabled inside each timed
round (the 29 resident analyses otherwise make collector pauses the
largest term for sub-millisecond stages).
"""

import gc
import statistics
import time

from repro.accel.invocation import (
    HistoryPredictor,
    OraclePredictor,
    evaluate_predictor,
    evaluate_predictor_runs,
    evaluate_predictor_runs_array,
)
from repro.reporting import format_table
from repro.sim import OOOModel, SimulationMemo
from repro.sim.array_kernels import (
    backend_name,
    census_from_segments_array,
    runs_to_columns,
)
from repro.sim.cache import profile_stream_dual, profile_stream_dual_array
from repro.sim.offload import OffloadSimulator
from repro.sim.ooo_columns import simulate_paths_tiered
from repro.sim.trace_kernels import (
    census_from_events,
    census_from_segments,
    run_length_encode,
)

from .conftest import save_result, update_bench_json

#: gate on the suite-median named-kernel speedup (the ISSUE target)
ARRAY_SPEEDUP_GATE = 5.0
#: sanity floor for the Amdahl-limited end-to-end simulate stage
SIMULATION_SPEEDUP_FLOOR = 1.5
#: floor for the same stage against the per-event tier
SIMULATION_VS_EVENTS_FLOOR = 2.5
#: gate on the warm compiled walk vs the per-event walk (suite median).
#: The committed medians sit at ~3x (BENCH_sim.json); the hard gate
#: holds a CI-noise floor below them, and the perf-smoke baseline diff
#: (0.5x ratio threshold on every ``*speedup*`` key) gates drift from
#: the committed numbers on top
OOO_WALK_SPEEDUP_GATE = 2.5
#: mirrors the ``path_costs`` production default
AMORTISE_REPS = 4

_BEST_OF = 5


def _best_of(fn, rounds=_BEST_OF):
    best = float("inf")
    for _ in range(rounds):
        gc.disable()
        try:
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    return best


def _census_tables(census):
    return (census.run_starts, census.pipelined, census.failures, census.host)


def _named_kernel_pair(a, hier, pipelined):
    """(rle_seconds, array_seconds) of the vectorized loops, identity-checked."""
    targets = set(a.path_frame.region.source_paths)
    profile = a.profiled.paths
    mem = a.profiled.trace.memory
    rle = run_length_encode(profile.trace)

    def rle_tier():
        if mem:
            profile_stream_dual(hier, mem)
        orc = evaluate_predictor_runs(rle.runs, targets, OraclePredictor(targets))
        hist = evaluate_predictor_runs(rle.runs, targets, HistoryPredictor())
        return (
            census_from_segments(orc.segments, targets, pipelined),
            census_from_segments(hist.segments, targets, pipelined),
            orc,
            hist,
        )

    def array_tier():
        if mem:
            profile_stream_dual_array(hier, mem)
        cols = runs_to_columns(rle.runs)
        orc = evaluate_predictor_runs_array(
            rle.runs, targets, OraclePredictor(targets), columns=cols
        )
        hist = evaluate_predictor_runs_array(rle.runs, targets, HistoryPredictor())
        return (
            census_from_segments_array(
                orc.segments, targets, pipelined, columns=orc.segment_columns
            ),
            census_from_segments_array(
                hist.segments, targets, pipelined, columns=hist.segment_columns
            ),
            orc,
            hist,
        )

    ref_oc, ref_hc, ref_orc, ref_hist = rle_tier()
    got_oc, got_hc, got_orc, got_hist = array_tier()
    assert _census_tables(got_oc) == _census_tables(ref_oc), a.name
    assert _census_tables(got_hc) == _census_tables(ref_hc), a.name
    for ref, got in ((ref_orc, got_orc), (ref_hist, got_hist)):
        assert (got.true_positives, got.false_positives,
                got.true_negatives, got.false_negatives) == (
            ref.true_positives, ref.false_positives,
            ref.true_negatives, ref.false_negatives), a.name
    return _best_of(rle_tier), _best_of(array_tier)


def _simulate_stage_trio(a):
    """(events_s, rle_s, array_s) of the cold per-workload simulate stage."""
    targets = set(a.path_frame.region.source_paths)
    profile = a.profiled.paths
    trace = a.profiled.trace

    def stage(mode):
        sim = OffloadSimulator(memo=False, trace_kernels=mode)
        pipelined = sim.config.offload.pipelined_invocations
        cal = sim.calibrate(trace)
        costs = sim.path_costs(profile, cal.host_load_latency)
        if mode == "events":
            ev = evaluate_predictor(
                profile.trace, targets, OraclePredictor(targets)
            )
            census = census_from_events(
                profile.trace, ev.decisions, targets, pipelined
            )
            return costs, census
        rle = sim._rle(profile)
        if mode == "array":
            orc = evaluate_predictor_runs_array(
                rle.runs, targets, OraclePredictor(targets), columns=rle.columns()
            )
            census = census_from_segments_array(
                orc.segments, targets, pipelined, columns=orc.segment_columns
            )
        else:
            orc = evaluate_predictor_runs(
                rle.runs, targets, OraclePredictor(targets)
            )
            census = census_from_segments(orc.segments, targets, pipelined)
        return costs, census

    ref_costs, ref_census = stage("events")
    for mode in ("rle", "array"):
        got_costs, got_census = stage(mode)
        assert _census_tables(got_census) == _census_tables(ref_census), (
            a.name, mode,
        )
        assert {pid: c.cycles for pid, c in got_costs.items()} == {
            pid: c.cycles for pid, c in ref_costs.items()
        }, (a.name, mode)
    return (
        _best_of(lambda: stage("events")),
        _best_of(lambda: stage("rle")),
        _best_of(lambda: stage("array")),
    )


def _ooo_walk_triple(a):
    """(events_walk_s, compile_s, warm_walk_s) of the path-cost inner loop.

    The plan mirrors :meth:`OffloadSimulator.path_costs`: every profiled
    path, amortised to :data:`AMORTISE_REPS` repetitions when it repeats.
    The warm walk re-runs the tiered walk with compiled programs served
    from the memo — the production shape, where the three offload
    strategies share one memo and compile is paid once per workload.
    """
    profile = a.profiled.paths
    plan = [
        (pid, tuple(profile.decode(pid)),
         AMORTISE_REPS if count >= AMORTISE_REPS else 1)
        for pid, count in profile.counts.items()
    ]

    def events_walk():
        model = OOOModel()
        return {
            pid: model.simulate(list(blocks) * reps)
            for pid, blocks, reps in plan
        }

    def compile_cold():
        # a fresh model per round: fragment caches live on the model, so
        # this times the full one-off columnar compile
        simulate_paths_tiered(OOOModel(), plan)

    memo = SimulationMemo()
    warm_model = OOOModel()

    def warm_walk():
        return simulate_paths_tiered(
            warm_model, plan, memo=memo, anchor=profile,
            anchor_extra=("bench",),
        )

    oracle = events_walk()
    got = warm_walk()  # also primes the memo (compile + tier decision)
    for pid, _blocks, _reps in plan:
        assert vars(got[pid]) == vars(oracle[pid]), (a.name, pid)
    return (
        _best_of(events_walk),
        _best_of(compile_cold),
        _best_of(warm_walk),
    )


def _compute(analyses):
    hier = OffloadSimulator().config.memory
    pipelined = OffloadSimulator().config.offload.pipelined_invocations
    gc.collect()
    rows = []
    for a in analyses:
        k_rle, k_arr = _named_kernel_pair(a, hier, pipelined)
        s_ev, s_rle, s_arr = _simulate_stage_trio(a)
        w_ev, w_cmp, w_walk = _ooo_walk_triple(a)
        rows.append((
            a.name,
            round(k_rle * 1e3, 2), round(k_arr * 1e3, 2),
            round(k_rle / k_arr, 2),
            round(s_ev * 1e3, 2), round(s_rle * 1e3, 2),
            round(s_arr * 1e3, 2),
            round(s_ev / s_arr, 2), round(s_rle / s_arr, 2),
            round(w_ev * 1e3, 2), round(w_cmp * 1e3, 2),
            round(w_walk * 1e3, 2),
            round(w_ev / w_walk, 2),
        ))
    return rows


def test_array_kernel_speedup(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "kern rle ms", "kern array ms", "kern x",
         "sim ev ms", "sim rle ms", "sim array ms", "sim e/a", "sim r/a",
         "walk ev ms", "compile ms", "walk warm ms", "walk x"],
        rows,
        title="Array kernels (backend=%s): named loops, cold simulate stage, "
              "OOO walk decomposition" % backend_name(),
    )
    save_result("array_kernels", text)

    kernel_speedups = [r[3] for r in rows]
    sim_vs_events = [r[7] for r in rows]
    sim_speedups = [r[8] for r in rows]
    walk_speedups = [r[12] for r in rows]
    array_speedup = round(statistics.median(kernel_speedups), 2)
    simulation_speedup = round(statistics.median(sim_speedups), 2)
    simulation_speedup_vs_events = round(statistics.median(sim_vs_events), 2)
    ooo_walk_speedup = round(statistics.median(walk_speedups), 2)
    update_bench_json("array_kernels", {
        "backend": backend_name(),
        "workloads": len(rows),
        "array_speedup": array_speedup,
        "array_speedup_min": min(kernel_speedups),
        "workloads_at_5x": sum(s >= ARRAY_SPEEDUP_GATE for s in kernel_speedups),
        "simulation_speedup": simulation_speedup,
        "simulation_speedup_vs_events": simulation_speedup_vs_events,
        "ooo_walk_speedup": ooo_walk_speedup,
        "events_walk_seconds": round(sum(r[9] for r in rows) / 1e3, 4),
        "ooo_compile_seconds": round(sum(r[10] for r in rows) / 1e3, 4),
        "ooo_walk_seconds": round(sum(r[11] for r in rows) / 1e3, 4),
    })

    # the vectorized loops themselves must clear the 5x bar (suite median);
    # the gates only bind under numpy — the pure-Python backend is a
    # correctness fallback, not a speed tier
    if backend_name() == "numpy":
        assert array_speedup >= ARRAY_SPEEDUP_GATE, (
            "named-kernel median %.2fx below %.1fx gate"
            % (array_speedup, ARRAY_SPEEDUP_GATE)
        )
        assert simulation_speedup >= SIMULATION_SPEEDUP_FLOOR, (
            "simulate-stage median %.2fx below %.1fx floor"
            % (simulation_speedup, SIMULATION_SPEEDUP_FLOOR)
        )
        assert simulation_speedup_vs_events >= SIMULATION_VS_EVENTS_FLOOR, (
            "simulate-stage median %.2fx below %.1fx events floor"
            % (simulation_speedup_vs_events, SIMULATION_VS_EVENTS_FLOOR)
        )
        assert ooo_walk_speedup >= OOO_WALK_SPEEDUP_GATE, (
            "OOO walk median %.2fx below %.1fx gate"
            % (ooo_walk_speedup, OOO_WALK_SPEEDUP_GATE)
        )
